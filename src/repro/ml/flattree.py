"""Flat-array tree representation and the vectorized evaluation kernel.

Fitted CART trees are compiled into five contiguous numpy arrays
(``feature``, ``threshold``, ``left``, ``right``, ``value``) indexed by
node id.  Prediction then becomes an *iterative* traversal that advances
every row one level per step via fancy indexing — no Python recursion,
no per-node index bookkeeping — until all rows have landed on leaves.

The kernel is the single evaluation path for :class:`DecisionTreeClassifier`,
:class:`DecisionTreeRegressor` and, through them, the random forest and the
gradient-boosted ensembles.  Its contract is *bitwise* equivalence with the
recursive ``_route`` reference walk (property-tested in
``tests/ml/test_flattree.py``): both compare ``X[i, feature] <= threshold``
on the same float64 values and both copy the identical leaf-value vectors
into the output, so not even the last ulp may differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["FlatForest", "FlatTree"]


@dataclass
class _Node:
    """One tree node; leaves keep a class-probability (or value) vector.

    This is the *grow-time* (and introspection) representation; prediction
    goes through the compiled :class:`FlatTree` arrays.
    """

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: Optional[np.ndarray] = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left < 0


@dataclass(frozen=True)
class FlatTree:
    """One fitted tree as parallel arrays (the serialized form, too).

    ``feature[i] == -1`` marks node ``i`` as a leaf; interior nodes carry
    the split feature, threshold and both child ids.  ``value`` holds one
    row per node — the class-probability (or regression-value) vector the
    recursive representation keeps on ``_Node.value`` — and ``n_samples``
    the training rows that reached the node (used by importances).
    """

    feature: np.ndarray  # (n_nodes,) int64, -1 for leaves
    threshold: np.ndarray  # (n_nodes,) float64
    left: np.ndarray  # (n_nodes,) int64, -1 for leaves
    right: np.ndarray  # (n_nodes,) int64, -1 for leaves
    value: np.ndarray  # (n_nodes, value_width) float64
    n_samples: np.ndarray  # (n_nodes,) int64

    def __post_init__(self) -> None:
        n = self.feature.shape[0]
        for name in ("threshold", "left", "right", "n_samples"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} disagrees with feature on node count")
        if self.value.ndim != 2 or self.value.shape[0] != n:
            raise ValueError("value must be a (n_nodes, width) matrix")
        # navigation arrays: leaves self-loop (and gather feature 0, which
        # is harmless — both branches lead back to the leaf), so traversal
        # advances every row unconditionally with flat gathers and no
        # per-level row filtering.  Children are interleaved — right child
        # at 2i, left child at 2i+1 — so the step is one gather indexed by
        # ``2*node + go_left`` instead of two gathers plus a select.
        nodes = np.arange(n, dtype=np.int64)
        is_leaf = self.left < 0
        object.__setattr__(self, "_nav_feature", np.where(is_leaf, 0, self.feature))
        object.__setattr__(self, "_nav_left", np.where(is_leaf, nodes, self.left))
        object.__setattr__(self, "_nav_right", np.where(is_leaf, nodes, self.right))
        children = np.empty(2 * n, dtype=np.int64)
        children[0::2] = self._nav_right
        children[1::2] = self._nav_left
        object.__setattr__(self, "_nav_children", children)
        object.__setattr__(self, "_depth", self._compute_depth())

    def _compute_depth(self) -> int:
        """Levels below the root, via a breadth-first frontier sweep."""
        depth = 0
        frontier = np.array([0], dtype=np.int64)
        while True:
            children = np.concatenate(
                [self.left[frontier], self.right[frontier]]
            )
            children = children[children >= 0]
            if children.size == 0:
                return depth
            frontier = children
            depth += 1

    @property
    def n_nodes(self) -> int:
        return self.feature.shape[0]

    @property
    def value_width(self) -> int:
        return self.value.shape[1]

    @classmethod
    def from_nodes(cls, nodes: List) -> "FlatTree":
        """Compile a ``_Node`` list (ids are already list positions)."""
        if not nodes:
            raise ValueError("cannot compile an empty tree")
        n = len(nodes)
        feature = np.fromiter(
            (node.feature for node in nodes), dtype=np.int64, count=n
        )
        threshold = np.fromiter(
            (node.threshold for node in nodes), dtype=np.float64, count=n
        )
        left = np.fromiter((node.left for node in nodes), dtype=np.int64, count=n)
        right = np.fromiter(
            (node.right for node in nodes), dtype=np.int64, count=n
        )
        n_samples = np.fromiter(
            (node.n_samples for node in nodes), dtype=np.int64, count=n
        )
        width = max(len(node.value) for node in nodes)
        value = np.zeros((n, width))
        for i, node in enumerate(nodes):
            value[i, : len(node.value)] = node.value
        # leaves are exactly the nodes with no left child in the recursive
        # form; normalise their feature to -1 so apply() terminates on it
        feature = np.where(left < 0, -1, feature)
        return cls(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
            n_samples=n_samples,
        )

    @classmethod
    def from_arrays(
        cls,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        n_samples: np.ndarray,
    ) -> "FlatTree":
        """Adopt persisted arrays (the ``.npz`` payload) as a tree."""
        left = np.asarray(left, dtype=np.int64)
        return cls(
            feature=np.where(
                left < 0, -1, np.asarray(feature, dtype=np.int64)
            ),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=left,
            right=np.asarray(right, dtype=np.int64),
            value=np.asarray(value, dtype=np.float64),
            n_samples=np.asarray(n_samples, dtype=np.int64),
        )

    def to_nodes(self) -> List["_Node"]:
        """Rebuild the ``_Node`` list (introspection, depth/leaf queries)."""
        return [
            _Node(
                feature=int(self.feature[i]),
                threshold=float(self.threshold[i]),
                left=int(self.left[i]),
                right=int(self.right[i]),
                value=self.value[i].copy(),
                n_samples=int(self.n_samples[i]),
            )
            for i in range(self.n_nodes)
        ]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf id per row: advance all rows one level per step.

        Each of the (at most ``depth``) iterations is three flat gathers
        and a compare over every row — leaves self-loop via the navigation
        arrays, so no per-level row bookkeeping is needed and the per-row
        Python recursion is gone entirely.  The interleaved ``_nav_children``
        table turns the branch select into index arithmetic
        (``2*node + go_left``), saving one random gather per level.
        """
        n, d = X.shape
        node = np.zeros(n, dtype=np.int64)
        if self.n_nodes == 1:  # single-leaf tree: everything is at the root
            return node
        X_flat = np.ascontiguousarray(X).reshape(-1)
        row_base = np.arange(n, dtype=np.int64) * d
        for __ in range(self._depth):
            go_left = X_flat[row_base + self._nav_feature[node]] <= (
                self.threshold[node]
            )
            node = self._nav_children[(node << 1) + go_left]
        return node

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Leaf-value matrix per row, shape (n_rows, value_width)."""
        return self.value[self.apply(X)]


@dataclass(frozen=True)
class FlatForest:
    """Every tree of an ensemble in one arena, traversed level-synchronously.

    Per-tree evaluation leaves vectorization width on the table: each level
    step touches only ``n_rows`` elements and pays numpy dispatch overhead
    once per tree.  Here all trees' node arrays are concatenated into one
    arena (child pointers rebased to arena-absolute ids, leaves
    self-looping) and a single ``(n_rows, n_trees)`` state matrix advances
    every row through every tree simultaneously — ``max_depth`` iterations
    of wide flat gathers for the whole ensemble.

    Leaf-value rows are pre-expanded to the ensemble's output width (and
    pre-scaled, for boosted trees, by the learning rate), so accumulation
    is a plain sequential sum over trees — the same additions in the same
    order as the per-tree reference, keeping outputs bit-for-bit equal.
    """

    nav_feature: np.ndarray  # (total_nodes,) split feature, 0 on leaves
    threshold: np.ndarray  # (total_nodes,)
    children: np.ndarray  # (2*total_nodes,) arena-absolute, interleaved:
    #   children[2i] = right child of node i, children[2i+1] = left child
    #   (leaves self-loop), so the next node is children[2*node + go_left]
    value: np.ndarray  # (total_nodes, width) output-aligned leaf values
    roots: np.ndarray  # (n_trees,) arena id of each tree's root
    depth: int  # max depth across trees

    @property
    def n_trees(self) -> int:
        return self.roots.shape[0]

    @property
    def width(self) -> int:
        return self.value.shape[1]

    @classmethod
    def from_trees(
        cls,
        flats: List["FlatTree"],
        width: Optional[int] = None,
        columns: Optional[List[np.ndarray]] = None,
        scales: Optional[List[float]] = None,
    ) -> "FlatForest":
        """Concatenate compiled trees into one arena.

        ``columns[i]`` maps tree ``i``'s value columns into the ensemble's
        output columns (a forest tree that never saw a class contributes
        zeros there); ``scales[i]`` pre-multiplies tree ``i``'s leaf values
        (the GBDT learning rate — the same per-element product the
        reference computes per prediction, so bits are unchanged).
        """
        if not flats:
            raise ValueError("cannot build an arena from zero trees")
        counts = np.array([f.n_nodes for f in flats], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
        if width is None:
            width = max(f.value_width for f in flats)
        value = np.zeros((int(counts.sum()), width))
        for i, (flat, off) in enumerate(zip(flats, offsets)):
            rows = value[off : off + flat.n_nodes]
            v = flat.value if scales is None else flat.value * scales[i]
            cols = (
                np.arange(flat.value_width) if columns is None else columns[i]
            )
            rows[:, cols] = v
        return cls(
            nav_feature=np.concatenate([f._nav_feature for f in flats]),
            threshold=np.concatenate([f.threshold for f in flats]),
            children=np.concatenate(
                [f._nav_children + off for f, off in zip(flats, offsets)]
            ),
            value=value,
            roots=offsets,
            depth=max(f._depth for f in flats),
        )

    def apply_all(self, X: np.ndarray) -> np.ndarray:
        """Arena leaf id per (row, tree): one (n, n_trees) state matrix.

        Each level is three wide gathers and a compare; the interleaved
        ``children`` table resolves the branch with index arithmetic
        (``2*node + go_left``) instead of two gathers plus a select.
        """
        n, d = X.shape
        node = np.repeat(self.roots[None, :], n, axis=0)
        if self.depth == 0:
            return node
        X_flat = np.ascontiguousarray(X).reshape(-1)
        row_base = (np.arange(n, dtype=np.int64) * d)[:, None]
        for __ in range(self.depth):
            go_left = X_flat[row_base + self.nav_feature[node]] <= (
                self.threshold[node]
            )
            node = self.children[(node << 1) + go_left]
        return node

    def accumulate(self, X: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Add every tree's output-aligned leaf values into ``out``, in order.

        The per-tree loop is over ``(n, width)`` adds only — all traversal
        work happened in :meth:`apply_all` — and runs in ensemble order so
        float summation matches the sequential reference exactly.
        """
        values = self.value[self.apply_all(X)]  # (n, n_trees, width)
        for t in range(self.n_trees):
            out += values[:, t, :]
        return out
