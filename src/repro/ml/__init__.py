"""Machine-learning substrate for the SPATIAL reproduction.

This package implements, from scratch on top of numpy, every model family the
paper's two use cases rely on (logistic regression, decision tree, random
forest, MLP/DNN, gradient-boosted trees standing in for LightGBM/XGBoost)
plus the surrounding training infrastructure: preprocessing, metrics,
cross-validation and the staged AI pipeline of Fig. 4.
"""

from repro.ml.model import Classifier, check_Xy, clone
from repro.ml.preprocessing import (
    LabelEncoder,
    StandardScaler,
    drop_duplicates,
    impute_missing,
    train_test_split,
)
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.svm import SVMClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostedTreesClassifier, lightgbm_like, xgboost_like
from repro.ml.neural import DNNClassifier, MLPClassifier
from repro.ml.validation import KFold, cross_val_score, stratified_split
from repro.ml.pipeline import AIPipeline, PipelineStage, StageKind
from repro.ml.serialization import load_model, save_model

__all__ = [
    "AIPipeline",
    "Classifier",
    "DNNClassifier",
    "DecisionTreeClassifier",
    "GradientBoostedTreesClassifier",
    "KFold",
    "LabelEncoder",
    "LogisticRegressionClassifier",
    "MLPClassifier",
    "PipelineStage",
    "RandomForestClassifier",
    "SVMClassifier",
    "StageKind",
    "StandardScaler",
    "accuracy_score",
    "check_Xy",
    "classification_report",
    "clone",
    "confusion_matrix",
    "cross_val_score",
    "drop_duplicates",
    "f1_score",
    "impute_missing",
    "lightgbm_like",
    "load_model",
    "precision_score",
    "recall_score",
    "save_model",
    "stratified_split",
    "train_test_split",
    "xgboost_like",
]
