"""Base classifier interface shared by every model in the ML substrate.

The SPATIAL sensors and attack modules only rely on this small surface:
``fit``, ``predict``, ``predict_proba`` and ``classes_``.  Models that expose
analytic input gradients (the neural networks) additionally implement
``input_gradient`` which the FGSM attack consumes.
"""

from __future__ import annotations

import contextlib
import copy
from abc import ABC, abstractmethod
from typing import Any, Dict, Tuple

import numpy as np


class Classifier(ABC):
    """Abstract multi-class classifier.

    Subclasses must set ``classes_`` (sorted unique labels seen in ``fit``)
    and return probability rows aligned with ``classes_`` from
    ``predict_proba``.
    """

    classes_: np.ndarray

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train the model on ``X`` (n_samples, n_features) and labels ``y``."""

    @abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return class-probability matrix of shape (n_samples, n_classes)."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return the most probable class label for each row of ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Return mean accuracy of ``predict(X)`` against ``y``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def get_params(self) -> Dict[str, Any]:
        """Return the constructor parameters recorded by ``_record_params``."""
        return dict(getattr(self, "_init_params", {}))

    def _record_params(self, params: Dict[str, Any]) -> None:
        """Store constructor parameters so the model can be cloned.

        Call as ``self._record_params(locals())`` first thing in ``__init__``;
        ``self`` is stripped automatically.
        """
        recorded = {
            k: v
            for k, v in params.items()
            if k != "self" and not k.startswith("_")
        }
        self._init_params = recorded

    @property
    def is_fitted(self) -> bool:
        """True once ``fit`` has populated ``classes_``."""
        return getattr(self, "classes_", None) is not None and len(self.classes_) > 0


def clone(model: Classifier) -> Classifier:
    """Return an unfitted copy of ``model`` built from its recorded params."""
    params = model.get_params()
    if params or not hasattr(model, "_init_params"):
        # A constructor whose signature drifted from the recorded params
        # falls back to a deep copy rather than failing the clone.
        with contextlib.suppress(TypeError):
            return type(model)(**params)
    return copy.deepcopy(model)


def check_Xy(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training pair to float64 features and 1-D labels.

    Raises ``ValueError`` on empty input, shape mismatch or non-finite
    features, which keeps every model's error behaviour uniform.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values; impute first")
    return X, y


def encode_labels(y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(classes, y_indexed)`` where ``y_indexed`` maps into classes."""
    classes, y_idx = np.unique(y, return_inverse=True)
    return classes, y_idx


def one_hot(y_idx: np.ndarray, n_classes: int) -> np.ndarray:
    """Return a one-hot float matrix for integer class indices."""
    out = np.zeros((y_idx.shape[0], n_classes), dtype=np.float64)
    out[np.arange(y_idx.shape[0]), y_idx] = 1.0
    return out
