"""Multinomial logistic regression trained with mini-batch SGD.

Use case 1 evaluates logistic regression (LR) as the weakest of the five
fall-detection models (~73 % baseline accuracy): a linear decision boundary
underfits the non-linear accelerometer feature space, and this implementation
deliberately retains that property.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.model import Classifier, check_Xy, encode_labels, one_hot


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, shifted for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier(Classifier):
    """Softmax regression with L2 regularisation.

    Parameters
    ----------
    learning_rate:
        SGD step size.
    n_epochs:
        Full passes over the training data.
    batch_size:
        Mini-batch size; clipped to the dataset size.
    l2:
        L2 penalty strength on the weights (bias excluded).
    seed:
        RNG seed controlling shuffling and initialisation.
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_epochs: int = 60,
        batch_size: int = 64,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self._record_params(locals())
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.weights_: Optional[np.ndarray] = None
        self.bias_: Optional[np.ndarray] = None
        self.classes_ = np.empty(0)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        X, y = check_Xy(X, y)
        self.classes_, y_idx = encode_labels(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        targets = one_hot(y_idx, n_classes)
        rng = np.random.default_rng(self.seed)
        self.weights_ = rng.normal(0.0, 0.01, size=(n_features, n_classes))
        self.bias_ = np.zeros(n_classes)
        batch = min(max(1, self.batch_size), n_samples)
        for __ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                logits = X[idx] @ self.weights_ + self.bias_
                probs = softmax(logits)
                grad_logits = (probs - targets[idx]) / len(idx)
                grad_w = X[idx].T @ grad_logits + self.l2 * self.weights_
                grad_b = grad_logits.sum(axis=0)
                self.weights_ -= self.learning_rate * grad_w
                self.bias_ -= self.learning_rate * grad_b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Return raw class logits for each row of ``X``."""
        if self.weights_ is None or self.bias_ is None:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.weights_ + self.bias_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return softmax(self.decision_function(X))

    def input_gradient(self, x: np.ndarray, target_class: int) -> np.ndarray:
        """Gradient of the cross-entropy loss w.r.t. a single input row.

        Enables white-box FGSM against the linear model as well, matching the
        paper's observation that any differentiable model can be evaded.
        """
        if self.weights_ is None or self.bias_ is None:
            raise RuntimeError("model used before fit()")
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        probs = softmax(x @ self.weights_ + self.bias_)[0]
        grad_logits = probs.copy()
        grad_logits[target_class] -= 1.0
        return self.weights_ @ grad_logits
