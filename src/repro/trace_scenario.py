"""The traced capacity-load scenario behind ``python -m repro trace``.

One function, :func:`run_traced_scenario`, wires the whole observability
story end to end on the Fig. 8(a) deployment:

* a :class:`~repro.tracing.Tracer` clocked by the simulator's virtual
  ``now`` and draining into a bounded :class:`~repro.tracing.TraceCollector`;
* the paper deployment with :data:`~repro.gateway.cluster
  .PAPER_STAGE_PROFILES` stage weights, so every traced request breaks
  down into gateway legs, service queue/process spans and pipeline-stage
  spans;
* an optional *sensor probe* on the loaded route: each completed request
  polls a real sensor registry (data-quality + performance over a small
  trained model) inside the request's trace — §IV's "sensors across the
  pipeline", attached to serving;
* a telemetry pipeline receiving the load generator's per-response
  events, each stamped with its trace's exemplar labels, so the slowest
  rollup window resolves back to the recorded traces inside it.

The CLI renders the result; the end-to-end test asserts its invariants
(rooted trees, critical path == trace duration, exemplar resolution).
This module lives at the repo root — the unrestricted application layer —
because it composes ``gateway``, ``core``, ``telemetry`` and ``tracing``,
which no single package below the root may do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.registry import SensorRegistry
from repro.core.sensors import (
    DataQualitySensor,
    ModelContext,
    PerformanceSensor,
)
from repro.gateway.cluster import build_paper_deployment
from repro.gateway.loadgen import LoadGenerator, SummaryReport, ThreadGroup
from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.preprocessing import train_test_split
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.pipeline import TelemetryPipeline
from repro.telemetry.rollup import WindowStat
from repro.tracing import (
    ExemplarResolution,
    TraceCollector,
    Tracer,
    TraceTree,
    resolve_window,
    slowest_windows,
)

__all__ = ["GATEWAY_TOPIC", "TraceScenarioResult", "run_traced_scenario"]

GATEWAY_TOPIC = "gateway"


def _model_context(seed: int) -> ModelContext:
    """A small trained classifier for the request-time sensor probes."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(96, 5))
    w = rng.normal(size=5)
    y = (X @ w > 0.0).astype(int)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.25, seed=seed
    )
    model = LogisticRegressionClassifier(seed=seed)
    model.fit(X_train, y_train)
    return ModelContext(
        model=model,
        X_train=X_train,
        y_train=y_train,
        X_test=X_test,
        y_test=y_test,
        model_version=1,
    )


@dataclass
class TraceScenarioResult:
    """Everything a view (CLI, test, notebook) needs from one traced run."""

    report: SummaryReport
    tracer: Tracer
    collector: TraceCollector
    telemetry: TelemetryPipeline
    route: str
    #: Raw gateway events in publish order (tapped off the bus); the
    #: exemplar-resolution input.
    events: List[TelemetryEvent] = field(default_factory=list)

    def traces(self) -> List[TraceTree]:
        """Rooted trace trees, eviction order (oldest first)."""
        return self.collector.traces()

    def route_windows(self) -> List[WindowStat]:
        """Closed base-level rollup windows for the loaded route."""
        return self.telemetry.rollups.windows(source=self.route)

    def slowest_window_resolution(
        self, max_traces: int = 8
    ) -> Optional[ExemplarResolution]:
        """Drill the slowest rollup window down to its recorded traces."""
        windows = slowest_windows(self.route_windows(), k=1)
        if not windows:
            return None
        return resolve_window(
            windows[0], self.events, self.collector, max_traces=max_traces
        )


def run_traced_scenario(
    route: str = "shap",
    n_threads: int = 8,
    iterations: int = 3,
    seed: int = 0,
    payload: str = "tabular",
    window_seconds: float = 0.25,
    probe_sensors: bool = True,
    max_traces: int = 4096,
) -> TraceScenarioResult:
    """Run one traced capacity-load experiment on the paper deployment.

    Closed-loop ``n_threads`` virtual users × ``iterations`` requests
    against ``route``, tracing on.  Returns the report plus the collector,
    telemetry pipeline and tapped event stream for analysis.
    """
    collector = TraceCollector(max_traces=max_traces)
    clock_box = {}
    tracer = Tracer(
        clock=lambda: clock_box["sim"].now, collector=collector, seed=seed
    )
    sim, gateway = build_paper_deployment(seed=seed, tracer=tracer)
    clock_box["sim"] = sim

    if probe_sensors:
        registry = SensorRegistry()
        registry.register(DataQualitySensor())
        registry.register(PerformanceSensor())
        context = _model_context(seed)

        def probe(probe_tracer, span, record) -> None:
            registry.poll_spans(context, tracer=probe_tracer, parent=span)

        gateway.service(route).probe = probe

    telemetry = TelemetryPipeline(window_seconds=window_seconds)
    telemetry.start()
    events: List[TelemetryEvent] = []
    telemetry.bus.subscribe(
        "trace-scenario-tap",
        topics=GATEWAY_TOPIC,
        capacity=1 << 16,
        callback=events.append,
    )

    generator = LoadGenerator(
        sim, gateway, telemetry=telemetry, topic=GATEWAY_TOPIC
    )
    generator.add_thread_group(
        ThreadGroup(
            route=route,
            n_threads=n_threads,
            iterations=iterations,
            payload=payload,
        )
    )
    report = generator.run()
    telemetry.flush()
    return TraceScenarioResult(
        report=report,
        tracer=tracer,
        collector=collector,
        telemetry=telemetry,
        route=route,
        events=events,
    )
