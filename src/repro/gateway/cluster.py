"""The Fig. 8(a) deployment, reconstructed.

Six machines: a Kong gateway host (32 vCPU / 64 GB), four metric
micro-service hosts (LIME 4 vCPU/4 GB, SHAP 4 vCPU/4 GB,
occlusion-sensitivity 4 vCPU/8 GB, the GPU-backed impact-resilience
service) and an AI-pipeline service (8 vCPU/8 GB).

Service-time medians are calibrated so the simulated deployment reproduces
the paper's measured latencies (§VII capacity-load results):

* tabular SHAP ≈ 228.6 ms and LIME ≈ 243.4 ms average under 100 closed-loop
  threads on 4 workers → per-request medians of ≈ 9.1 / 9.7 ms;
* the impact service converges to ≈ 1.6 s regardless of concurrency because
  the GPU batches requests (modelled as a wide worker pool);
* image LIME costs ~0.8 s per request, so closed-loop response grows
  roughly linearly with thread count and exceeds 1 s from 5 threads up
  (Fig. 8d).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.gateway.gateway import APIGateway
from repro.gateway.services import Machine, MicroService, ServiceTimeModel
from repro.gateway.simulation import Simulator

#: name -> (machine spec, payload->median seconds, concurrency override)
PAPER_SERVICES: Dict[str, Tuple[Machine, Dict[str, float], int]] = {
    "lime": (
        Machine("lime-host", vcpus=4, ram_gb=4),
        {"tabular": 0.0097, "image": 0.80},
        0,
    ),
    "shap": (
        Machine("shap-host", vcpus=4, ram_gb=4),
        {"tabular": 0.0091, "image": 0.95},
        0,
    ),
    "occlusion": (
        Machine("occlusion-host", vcpus=4, ram_gb=8),
        {"image": 0.30},
        0,
    ),
    "impact": (
        Machine("impact-gpu-host", vcpus=8, ram_gb=128, gpu=True),
        {"tabular": 1.58},
        128,  # GPU batching: effectively wide parallelism
    ),
    "ai_pipeline": (
        Machine("pipeline-host", vcpus=8, ram_gb=8),
        {"tabular": 0.045},
        0,
    ),
}

GATEWAY_MACHINE = Machine("kong-gateway", vcpus=32, ram_gb=64)

#: name -> stage name → relative weight of the service time.  Kept separate
#: from :data:`PAPER_SERVICES` (whose tuples are indexed positionally by
#: tests and notebooks).  The weights follow the §V pipeline anatomy: the
#: XAI metric services spend most of their time in the explainer itself,
#: the AI-pipeline service is dominated by inference.
PAPER_STAGE_PROFILES: Dict[str, Dict[str, float]] = {
    "lime": {
        "pipeline.preprocess": 1.0,
        "pipeline.predict": 3.0,
        "pipeline.explain": 6.0,
    },
    "shap": {
        "pipeline.preprocess": 1.0,
        "pipeline.predict": 2.0,
        "pipeline.explain": 7.0,
    },
    "occlusion": {
        "pipeline.preprocess": 2.0,
        "pipeline.predict": 3.0,
        "pipeline.explain": 5.0,
    },
    "impact": {
        "pipeline.preprocess": 1.0,
        "pipeline.predict": 8.0,
        "pipeline.explain": 1.0,
    },
    "ai_pipeline": {
        "pipeline.preprocess": 2.0,
        "pipeline.predict": 7.0,
        "pipeline.explain": 1.0,
    },
}


def build_paper_deployment(
    seed: int = 0,
    jitter: float = 0.12,
    gateway_overhead: float = 0.002,
    tracer=None,
    service_time_overrides: Optional[Dict[str, Dict[str, float]]] = None,
) -> Tuple[Simulator, APIGateway]:
    """Instantiate the full Fig. 8(a) topology on a fresh simulator.

    Returns ``(simulator, gateway)`` with all five metric micro-services
    registered under their route names.  ``tracer`` (optional) is attached
    to the gateway; services get the :data:`PAPER_STAGE_PROFILES` stage
    weights so traced requests break down into pipeline-stage spans.

    ``service_time_overrides`` maps ``service name -> {payload: median
    seconds}`` and replaces (per payload) the paper medians — the hook the
    capacity benches use to replay Fig. 8 with measured before/after
    inference-engine service times instead of the published ones.
    """
    sim = Simulator()
    kwargs = {} if tracer is None else {"tracer": tracer}
    gateway = APIGateway(sim, overhead_seconds=gateway_overhead, **kwargs)
    overrides = service_time_overrides or {}
    unknown = set(overrides) - set(PAPER_SERVICES)
    if unknown:
        raise ValueError(
            f"service_time_overrides for unknown services: {sorted(unknown)}"
        )
    for offset, (name, (machine, times, concurrency)) in enumerate(
        PAPER_SERVICES.items()
    ):
        if name in overrides:
            times = {**times, **overrides[name]}
        service = MicroService(
            name=name,
            machine=machine,
            service_time=ServiceTimeModel(
                times, jitter=jitter, seed=seed + offset
            ),
            concurrency=concurrency or None,
            stages=PAPER_STAGE_PROFILES.get(name),
        )
        gateway.register(service)
    return sim, gateway
