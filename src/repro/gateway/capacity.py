"""Million-request capacity runs over the columnar record pipeline.

:class:`CapacityRunner` is the high-throughput sibling of
:class:`~repro.gateway.loadgen.LoadGenerator`.  The record-based generator
allocates a ``Request`` + ``RequestRecord`` + closure chain per simulated
request and retains every record; the runner instead threads bare
:class:`~repro.gateway.records.RecordLog` row indices through the
simulator, draws service times from pre-sampled vectorized batches, and
aggregates *streaming* statistics (quantile sketch, Welford moments,
seeded reservoirs) so a run's memory is bounded by its in-flight request
count — not its request count.

Workloads:

* closed-loop :class:`~repro.gateway.loadgen.ThreadGroup` — each virtual
  user is one reusable ``__slots__`` object whose bound methods are the
  scheduled callbacks (no per-iteration closures);
* open-loop :class:`~repro.gateway.arrivals.PoissonArrivalGroup` — the
  "millions of independent users" workload, with arrival times drawn as
  chunked numpy cumsums and bulk-loaded into the event heap one bounded
  chunk at a time.

Gateway overhead is modelled arithmetically where the seed path used
events: a request's ``arrival`` is one overhead leg before its submit
event and its ``end`` one leg after service completion, so response
times match the record path while the hot loop processes two to three
heap events per request instead of five.

Tracing stays available at bounded cost through *hybrid sampling*: with
``trace_every=N``, every Nth request is routed through the real
``APIGateway.dispatch`` record path under the gateway's tracer, and the
slowest traced responses are kept as latency exemplars that link back to
recorded traces (the Fig. 8 "slow window → trace" workflow).
"""

from __future__ import annotations

from heapq import heappush as _heappush
from math import ceil as _ceil, log as _mlog
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gateway.arrivals import PoissonArrivalGroup, arrival_chunks
from repro.gateway.gateway import APIGateway
from repro.gateway.loadgen import SummaryReport, ThreadGroup
from repro.gateway.records import RecordLog
from repro.gateway.services import MicroService, Request, RequestRecord
from repro.gateway.simulation import _NO_ARG, Simulator
from repro.gateway.sketches import (
    QuantileSketch,
    RouteStats,
    StreamingMoments,
)
from repro.serving.cache import ExplanationCache
from repro.serving.policy import ServingPolicy
from repro.telemetry.events import KIND_RESPONSE, KIND_SERVING, TelemetryEvent

__all__ = ["CapacityRunner", "summary_from_log"]

#: Arrivals bulk-loaded into the event heap per open-loop chunk; bounds
#: both the numpy draw size and the number of pre-scheduled heap entries.
ARRIVAL_CHUNK = 8192


class _VirtualUser:
    """One closed-loop user: a reusable state object, not a closure chain.

    ``advance`` *is* the submit event: it fires one gateway leg after the
    logical send, stamps ``arrival = now - overhead`` and hands the row
    straight to the service, so each iteration costs two heap events
    (advance + service finish).
    """

    __slots__ = ("runner", "service", "route", "route_id", "payload",
                 "payload_id", "think", "remaining", "sim", "overhead",
                 "log", "submit", "delay", "step", "stats")

    def __init__(
        self,
        runner: "CapacityRunner",
        group: ThreadGroup,
        service: MicroService,
    ) -> None:
        self.runner = runner
        self.service = service
        self.sim = runner.sim  # hot-path locals: one load, not a chain
        self.overhead = runner.overhead
        self.log = runner.log
        # a group's payload is fixed, so the submit callable is chosen
        # here once: probe-free trusted, checking, or (in serving mode)
        # the micro-batched path behind the optional cache gate
        self.submit = runner.submit_for(service, group.route, group.payload)
        self.route = group.route
        self.route_id = runner.log.intern_route(group.route)
        #: the route's streaming aggregate — the completion sink takes it
        #: straight off the parked owner instead of re-resolving the row's
        #: route id through the log
        self.stats = runner.route_stats[self.route_id]
        self.payload = group.payload
        self.payload_id = runner.log.intern_payload(group.payload)
        self.think = group.think_time
        #: response receipt (``end``) -> next submit: think + request leg.
        #: The completion sink adds this to the row's ``end`` stamp, so
        #: continuation needs no clock read.
        self.delay = runner.overhead + group.think_time
        self.remaining = group.iterations
        #: the scheduled iteration callback, pre-bound once per user —
        #: with tracing off the trace-sampling counter and modulo check
        #: drop out of the per-request path entirely, and retain mode
        #: additionally inlines the straight-line row append
        if runner.trace_every:
            self.step = self.advance
        elif runner.log.retain:
            self.step = self._advance_retain
        else:
            self.step = self._advance_untraced

    def advance(self) -> None:
        self.remaining -= 1
        runner = self.runner
        runner.sent += 1
        if runner.sent % runner.trace_every == 0:
            runner.dispatch_traced(self.route, self.payload, self.on_traced)
            return
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        if self.remaining > 0:
            log.slots[row] = self
        self.submit(row)

    def _advance_untraced(self) -> None:
        self.remaining -= 1
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        runner = self.runner
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        if self.remaining > 0:
            log.slots[row] = self
        self.submit(row)

    def _advance_retain(self) -> None:
        # _advance_untraced with RecordLog._append_retain inlined: the
        # retained closed-loop replay (the speedup-gate workload) pays
        # for a call here once per request
        self.remaining -= 1
        log = self.log
        row = log.size
        if row == log.capacity:
            log._grow()
        log.size = row + 1
        log.appended += 1
        log.v_arrival[row] = self.sim.now - self.overhead
        log.v_route_ids[row] = self.route_id
        log.v_payload_ids[row] = self.payload_id
        runner = self.runner
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        if self.remaining > 0:
            log.slots[row] = self
        self.submit(row)

    def on_traced(self, record: RequestRecord) -> None:
        """Completion of a trace-sampled iteration (real gateway path)."""
        runner = self.runner
        runner.observe_record(record)
        if self.remaining > 0:
            # client got the response now; think, then fire the next
            # submit one overhead leg later
            runner.sim.schedule(self.think + runner.overhead, self.step)


class _OpenLoopDriver:
    """Feeds one Poisson group's arrivals into the heap, chunk by chunk."""

    __slots__ = ("runner", "service", "route", "route_id", "payload",
                 "payload_id", "chunks", "sim", "overhead", "log", "submit",
                 "step")

    def __init__(
        self,
        runner: "CapacityRunner",
        group: PoissonArrivalGroup,
        rng: np.random.Generator,
    ) -> None:
        self.runner = runner
        self.service = runner.bind(group.route)
        self.sim = runner.sim
        self.overhead = runner.overhead
        self.log = runner.log
        # fixed payload per arrival process — see _VirtualUser.submit
        self.submit = runner.submit_for(
            self.service, group.route, group.payload
        )
        self.route = group.route
        self.route_id = runner.log.intern_route(group.route)
        self.payload = group.payload
        self.payload_id = runner.log.intern_payload(group.payload)
        self.chunks = arrival_chunks(group, rng, ARRIVAL_CHUNK)
        #: per-arrival callback; see _VirtualUser.step
        self.step = self.fire if runner.trace_every else self._fire_untraced

    def load_chunk(self) -> None:
        """Bulk-load the next arrival chunk; chain the following load.

        The chain event is pushed *after* this chunk's fire events at the
        same timestamp as the last of them, so the heap never holds more
        than one chunk of future arrivals per group.
        """
        times = next(self.chunks, None)
        if times is None:
            return
        sim = self.sim
        fire = self.step
        schedule = sim.schedule
        # fire at submit time (arrival + one gateway leg); see fire()
        shift = self.overhead - sim.now
        delays = (times + shift).tolist()
        for delay in delays:
            schedule(delay, fire)
        schedule(delays[-1], self.load_chunk)

    def fire(self) -> None:
        """One open-loop arrival, already shifted to its submit time."""
        runner = self.runner
        runner.sent += 1
        if runner.sent % runner.trace_every == 0:
            runner.dispatch_traced(
                self.route, self.payload, runner.observe_record
            )
            return
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        self.submit(row)

    def _fire_untraced(self) -> None:
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        runner = self.runner
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        self.submit(row)


class _SimCacheGate:
    """Zipf-addressed explanation-cache model on the submit path.

    Columnar rows carry no feature payloads, so the gate models content
    addressing the way capacity runs model service time: a seeded Zipf
    stream over ``cache_items`` distinct feature vectors stands in for
    the request bodies.  A hit completes the row immediately at the
    gateway (the SHAP attribution is served from memory, no service
    work); a miss warms the cache and falls through to the batched
    service path.  The content-id stream is pre-drawn in chunks like
    the arrival processes, so the per-request cost is one list index
    plus one :class:`~repro.serving.cache.ExplanationCache` probe.
    """

    CHUNK = 4096

    __slots__ = ("runner", "route", "inner", "cache", "sim", "log",
                 "_rng", "_probs", "_n_items", "_ids", "_pos")

    def __init__(
        self,
        runner: "CapacityRunner",
        route: str,
        inner: Callable[[int], None],
        policy: ServingPolicy,
    ) -> None:
        self.runner = runner
        self.route = route
        self.inner = inner
        self.cache = ExplanationCache(policy.cache_size, ttl=policy.cache_ttl)
        self.sim = runner.sim
        self.log = runner.log
        self._n_items = policy.cache_items
        ranks = np.arange(1.0, policy.cache_items + 1.0)
        weights = ranks ** -policy.cache_skew
        self._probs = weights / weights.sum()
        self._rng = np.random.default_rng(
            runner.seed + 15485863 * (runner.log.intern_route(route) + 1)
        )
        self._ids: list = []
        self._pos = 0

    def lookup(self, now: float) -> bool:
        """Draw the next content id; True on a hit (a miss warms the cache)."""
        pos = self._pos
        ids = self._ids
        if pos == len(ids):
            ids = self._rng.choice(
                self._n_items, size=self.CHUNK, p=self._probs
            ).tolist()
            self._ids = ids
            pos = 0
        self._pos = pos + 1
        key = ids[pos]
        if self.cache.get(key, now) is not None:
            return True
        self.cache.put(key, True, now)
        return False

    def submit(self, row: int) -> None:
        now = self.sim.now
        if self.lookup(now):
            self.log.v_start[row] = now
            self.runner.row_completed(row, True)
        else:
            self.inner(row)

    def event(self, at: float) -> TelemetryEvent:
        """Hit-rate event (``cache:<route>``) carrying the raw counters."""
        counters = self.cache.counters()
        return TelemetryEvent(
            source=f"cache:{self.route}",
            value=self.cache.hit_rate,
            timestamp=at,
            kind=KIND_SERVING,
            attrs={key: float(val) for key, val in sorted(counters.items())},
        )


class CapacityRunner:
    """Drives columnar workloads against a gateway's services.

    Parameters
    ----------
    sim, gateway:
        The simulator and deployment (e.g. from
        :func:`~repro.gateway.cluster.build_paper_deployment`).  Routes
        are resolved through the gateway; the gateway's per-leg overhead
        is applied arithmetically on the hot path and its tracer serves
        the ``trace_every`` sampled requests.
    retain_records:
        ``True`` keeps every row (enables :meth:`records` and the exact
        :func:`summary_from_log` oracle); ``False`` recycles completed
        rows so memory is bounded by the in-flight count.
    seed:
        Master seed for arrival processes and the stats reservoirs.
    trace_every:
        Route every Nth request through the real ``dispatch`` record
        path (0 disables).  With a recording tracer on the gateway, the
        slowest sampled responses are kept as trace-linked exemplars.
    telemetry, topic:
        Optional telemetry target: :meth:`run` publishes the summary
        events plus one exemplar ``KIND_RESPONSE`` event per kept
        exemplar (bounded — the columnar path never publishes per-request
        events).
    """

    def __init__(
        self,
        sim: Simulator,
        gateway: APIGateway,
        retain_records: bool = False,
        seed: int = 0,
        trace_every: int = 0,
        series_slots: int = 512,
        exemplar_slots: int = 8,
        relative_accuracy: float = 0.005,
        telemetry=None,
        topic: str = "gateway",
        initial_capacity: int = 4096,
        serving: Optional[ServingPolicy] = None,
    ) -> None:
        if trace_every < 0:
            raise ValueError("trace_every must be >= 0")
        self.sim = sim
        self.gateway = gateway
        self.overhead = gateway.overhead_seconds
        self.log = RecordLog(initial_capacity, retain=retain_records)
        self.seed = seed
        self.trace_every = trace_every
        self.series_slots = series_slots
        self.exemplar_slots = exemplar_slots
        self.relative_accuracy = relative_accuracy
        self.telemetry = telemetry
        self.topic = topic
        #: trace-sampling counter — maintained only when ``trace_every``
        #: is on (the untraced step variants skip it; use
        #: ``log.appended`` for the number of requests started)
        self.sent = 0
        self.in_flight = 0
        #: route id -> streaming aggregate (ids are log-interned ints)
        self.route_stats: Dict[int, RouteStats] = {}
        # dense route-id-indexed view of route_stats: the completion sink
        # fires once per request, and a list index on a small int beats a
        # dict probe there
        self._stats_list: List[Optional[RouteStats]] = []
        # completion recycles rows inline (``log.slots`` row linkage and
        # the free list) rather than through dict lookups and a release
        # call; the sink variant is chosen here so retain mode never even
        # tests for a free list on the per-request path
        self._free = self.log._free
        self.row_completed = (
            self._row_completed_retain
            if retain_records
            else self._row_completed_ring
        )
        # closed-loop continuation is a pure heap push (the think delay
        # is non-negative by construction) — see MicroService.use_columnar
        self._sim_queue = sim._queue
        self._sim_counter = sim._counter
        self._bound: Dict[str, MicroService] = {}
        self._groups = 0
        #: serving policy (batch window/size, cache, shed depth) applied
        #: to every bound service; None keeps the classic per-row path
        self.serving = serving
        self._cache_gates: Dict[str, _SimCacheGate] = {}

    # -- wiring -------------------------------------------------------------

    def _stats_for(self, route: str, route_id: int) -> RouteStats:
        """The streaming aggregate for a route id, created on first use."""
        stats = self.route_stats.get(route_id)
        if stats is None:
            stats = RouteStats(
                route,
                seed=self.seed + 7919 * (route_id + 1),
                relative_accuracy=self.relative_accuracy,
                series_slots=self.series_slots,
                exemplar_slots=self.exemplar_slots,
            )
            self.route_stats[route_id] = stats
            while len(self._stats_list) <= route_id:
                self._stats_list.append(None)
            self._stats_list[route_id] = stats
        return stats

    def bind(self, route: str) -> MicroService:
        """Resolve a route and switch its service to the columnar path."""
        service = self._bound.get(route)
        if service is None:
            service = self.gateway.service(route)
            service.use_columnar(self.log, self.sim, self.row_completed)
            if self.serving is not None:
                service.configure_serving(self.serving)
            self._bound[route] = service
            self._stats_for(route, self.log.intern_route(route))
        return service

    def submit_for(
        self, service: MicroService, route: str, payload: str
    ) -> Callable[[int], None]:
        """The hot-path submit callable for one (service, workload) pair.

        Classic mode picks the probe-free trusted submit when the
        group's fixed payload validates up front (unsupported payloads
        keep the checking variant so they fail through the normal
        per-request path).  Serving mode routes through the
        micro-batcher, behind a per-route :class:`_SimCacheGate` when
        the policy enables the explanation cache.
        """
        if service.serving is None:
            return (
                service.submit_trusted_row
                if service.service_time.supports(payload)
                else service.submit_row
            )
        policy = service.serving
        if policy.cache_size > 0:
            gate = self._cache_gates.get(route)
            if gate is None:
                gate = _SimCacheGate(
                    self, route, service.submit_row_serving, policy
                )
                self._cache_gates[route] = gate
            return gate.submit
        return service.submit_row_serving

    def add_thread_group(self, group: ThreadGroup) -> None:
        """Schedule a closed-loop group (JMeter linear ramp-up)."""
        service = self.bind(group.route)
        spacing = (
            group.rampup_seconds / group.n_threads if group.n_threads else 0.0
        )
        overhead = self.overhead
        for thread in range(group.n_threads):
            user = _VirtualUser(self, group, service)
            self.sim.schedule(thread * spacing + overhead, user.step)
        self._groups += 1

    def add_open_loop(self, group: PoissonArrivalGroup) -> None:
        """Schedule an open-loop Poisson arrival group."""
        self._groups += 1
        rng = np.random.default_rng(self.seed + 104729 * self._groups)
        driver = _OpenLoopDriver(self, group, rng)
        driver.load_chunk()

    # -- hot-path sinks -----------------------------------------------------

    def _row_completed_retain(self, row: int, ok: bool) -> None:
        """Service finished a row: response leg, stats, advance.

        ``ok`` arrives from the service (mirroring ``log.ok[row]``) and
        scalar column access goes through the log's memoryview mirrors
        so the sketch and reservoir work on plain Python floats/ints
        (faster hashing and math than numpy scalars on a per-event path).
        Closed-loop continuation comes off ``log.slots``: the owning
        virtual user parked itself on its in-flight row and is cleared
        here, keeping the None-when-free invariant recycled rows rely on.
        ``__init__`` installs this variant (every row kept) or the ring
        variant (row recycled onto the free list) as ``row_completed``.

        The streaming fold — sketch bin bump, Welford update, reservoir
        steady-state check — is :meth:`RouteStats.observe` inlined: this
        sink runs once per simulated request, and the four-argument call
        costs as much as the fold itself.  ``RouteStats.observe`` stays
        the reference implementation (the trace-sampled record path uses
        it) and the equivalence tests hold the two equal.
        """
        log = self.log
        end = self.sim.now + self.overhead
        log.v_end[row] = end
        ms = (end - log.v_arrival[row]) * 1000.0
        slots = log.slots
        owner = slots[row]
        if owner is not None:
            slots[row] = None
            # the parked user carries its route's stats bundle, so the
            # common closed-loop case skips the route-id column read;
            # client receives at end; think; next submit one leg later —
            # owner.delay is denominated from ``end``, so no clock read
            stats = owner.stats
            _heappush(
                self._sim_queue,
                (end + owner.delay, next(self._sim_counter), owner.step, _NO_ARG),
            )
        else:
            stats = self._stats_list[log.v_route_ids[row]]
        if ok:
            latency = stats.latency
            if ms < latency.min:
                latency.min = ms
            if ms > latency.max:
                latency.max = ms
            if ms > 0.0:
                index = _ceil(_mlog(ms) * latency._inv_log_gamma)
                bins = latency._bins
                try:  # after warmup the bin almost always exists
                    bins[index] += 1
                except KeyError:
                    bins[index] = 1
            else:
                latency._zeros += 1
            moments = stats.moments
            count = moments.count + 1
            moments.count = count
            delta = ms - moments.mean
            mean = moments.mean + delta / count
            moments.mean = mean
            moments._m2 += delta * (ms - mean)
            series = stats.series
            seen = series.seen + 1
            if seen > series.k and seen != series._next:
                series.seen = seen
            else:
                series.offer(end, ms, log.v_active[row])
        else:
            stats.n_errors += 1
        self.in_flight -= 1

    def _row_completed_ring(self, row: int, ok: bool) -> None:
        """Ring-mode completion sink: as retain, plus row recycling.

        The row goes on the free list first; the retained fold then
        clears ``slots[row]``, preserving the None-when-free invariant.
        """
        self._free.append(row)
        self._row_completed_retain(row, ok)

    def dispatch_traced(
        self,
        route: str,
        payload: str,
        on_response: Callable[[RequestRecord], None],
    ) -> None:
        """Send one sampled request through the real gateway record path."""
        self.in_flight += 1
        request = Request(request_id=self.sent, route=route, payload=payload)
        self.gateway.dispatch(request, on_response)

    def observe_record(self, record: RequestRecord) -> None:
        """Fold a record-path (trace-sampled) completion into the stats."""
        self.in_flight -= 1
        ms = record.response_time * 1000.0
        route = record.request.route
        stats = self._stats_for(route, self.log.intern_route(route))
        stats.observe(record.end, ms, record.success, self.in_flight + 1)
        if record.trace is not None:
            stats.exemplars.offer(
                ms, record.end, record.request.route, record.trace
            )

    # -- reporting ----------------------------------------------------------

    def summary(self, duration: float) -> SummaryReport:
        """Assemble the JMeter-style report from the streaming aggregates.

        O(routes) work and O(sketch + reservoir) memory: quantiles come
        from the per-route sketches (merged for the top level — the
        sketch merge is lossless), the mean from Welford moments, and
        the timeline from the seeded reservoirs.
        """
        active = [
            self.route_stats[route_id]
            for route_id in sorted(self.route_stats)
            if self.route_stats[route_id].n_requests > 0
        ]
        if not active:
            return SummaryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, duration)
        merged_sketch = QuantileSketch(self.relative_accuracy)
        merged_moments = StreamingMoments()
        n_requests = 0
        n_errors = 0
        timeline = []
        for stats in active:
            merged_sketch.merge(stats.latency)
            merged_moments.merge(stats.moments)
            n_requests += stats.n_requests
            n_errors += stats.n_errors
            timeline.extend(stats.timeline())
        timeline.sort()
        report = _stats_report(
            n_requests,
            n_errors,
            merged_sketch,
            merged_moments,
            duration,
            timeline,
        )
        if len(active) > 1:
            for stats in active:
                report.per_route[stats.route] = _stats_report(
                    stats.n_requests,
                    stats.n_errors,
                    stats.latency,
                    stats.moments,
                    duration,
                    stats.timeline(),
                )
        return report

    def serving_summary(self) -> Dict[str, dict]:
        """Per-route batching/cache/shed counters for reports and the CLI."""
        out: Dict[str, dict] = {}
        for route in sorted(self._bound):
            service = self._bound[route]
            if service.serving is None:
                continue
            batches = service.batches_flushed
            entry = {
                "batches": batches,
                "rows_batched": service.rows_batched,
                "mean_batch": (
                    service.rows_batched / batches if batches else 0.0
                ),
                "by_size": service.flushed_by_size,
                "by_deadline": service.flushed_by_deadline,
                "peak_batch": service.batch_size_peak,
                "shed_rows": service.shed_rows,
            }
            if service._pool_workers:
                entry["pool"] = {
                    "workers": service._pool_workers,
                    "batches": service.pool_batches,
                    "rows": service.pool_rows,
                    "crashes": service.pool_crashes,
                    "restarts": service.pool_restarts,
                    "resubmitted": service.pool_resubmitted,
                    "peak_inflight": service.pool_peak_inflight,
                }
            gate = self._cache_gates.get(route)
            if gate is not None:
                entry["cache"] = gate.cache.counters()
                entry["cache_hit_rate"] = gate.cache.hit_rate
            out[route] = entry
        return out

    def serving_events(self, at: float) -> List[TelemetryEvent]:
        """Per-route serving/cache/shed counters as telemetry events.

        One ``serving:<route>`` event per batching service, one
        ``shed:<route>`` count when admission control dropped rows, and
        one ``cache:<route>`` hit-rate event per cache gate — all
        ``KIND_SERVING``, so they ride the same bus → WAL → rollup
        stream the dashboards and the SLO attribution read.
        """
        events = []
        for route in sorted(self._bound):
            service = self._bound[route]
            if service.serving is None:
                continue
            events.append(service.serving_event(at))
            if service._pool_workers:
                events.append(service.pool_event(at))
            if service.shed_rows:
                events.append(
                    TelemetryEvent(
                        source=f"shed:{route}",
                        value=float(service.shed_rows),
                        timestamp=at,
                        kind=KIND_SERVING,
                    )
                )
        for route in sorted(self._cache_gates):
            events.append(self._cache_gates[route].event(at))
        return events

    def exemplar_events(self) -> List[TelemetryEvent]:
        """Kept trace exemplars as trace-linked ``KIND_RESPONSE`` events."""
        events = []
        for route_id in sorted(self.route_stats):
            for ms, end, route, trace in self.route_stats[
                route_id
            ].exemplars.items():
                event = TelemetryEvent(
                    source=route,
                    value=ms,
                    timestamp=end,
                    kind=KIND_RESPONSE,
                    attrs={"exemplar": 1.0},
                )
                event.with_trace(trace.trace_id, trace.span_id)
                events.append(event)
        return events

    def run(self, until: Optional[float] = None) -> SummaryReport:
        """Run the simulation to completion and return the summary."""
        end_time = self.sim.run(until=until)
        report = self.summary(end_time)
        if self.telemetry is not None:
            for event in report.to_events(timestamp=end_time):
                self.telemetry.publish(self.topic, event)
            for event in self.exemplar_events():
                self.telemetry.publish(self.topic, event)
            for event in self.serving_events(end_time):
                self.telemetry.publish(self.topic, event)
            self.telemetry.pump()
        return report

    def records(self):
        """The classic ``RequestRecord`` views (requires retain mode)."""
        return self.log.records()


def _stats_report(
    n_requests: int,
    n_errors: int,
    sketch: QuantileSketch,
    moments: StreamingMoments,
    duration: float,
    timeline,
) -> SummaryReport:
    n_ok = n_requests - n_errors
    if n_ok:
        avg = moments.mean
        median = sketch.quantile(0.5)
        p95 = sketch.quantile(0.95)
        p99 = sketch.quantile(0.99)
        peak = sketch.max
    else:
        avg = median = p95 = p99 = peak = 0.0
    return SummaryReport(
        n_requests=n_requests,
        n_errors=n_errors,
        avg_response_ms=avg,
        median_response_ms=median,
        p95_response_ms=p95,
        max_response_ms=peak,
        throughput_rps=n_ok / duration if duration > 0 else 0.0,
        duration_seconds=duration,
        p99_response_ms=p99,
        timeline=timeline,
    )


def summary_from_log(log: RecordLog, duration: float) -> SummaryReport:
    """Exact summary over a retained log: the vectorized percentile oracle.

    Equivalent to ``SummaryReport.from_records(log.records(), duration)``
    but computed in a handful of whole-column numpy passes — the
    reference the sketch-based :meth:`CapacityRunner.summary` is checked
    against (counts exactly, percentiles within sketch tolerance).  Rows
    still in flight (``end == 0``) are excluded, matching the streaming
    path which only observes completions.
    """
    if not log.retain:
        raise ValueError("summary_from_log needs retain=True")
    n = log.size
    completed = log.end[:n] > 0.0
    if not completed.any():
        return SummaryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, duration)
    arrival = log.arrival[:n][completed]
    end = log.end[:n][completed]
    ok = log.ok[:n][completed]
    route_ids = log.route_ids[:n][completed]
    report = _exact_report(arrival, end, ok, duration)
    present = np.unique(route_ids)
    if len(present) > 1:
        for route_id in present:
            mask = route_ids == route_id
            report.per_route[log.route_name(int(route_id))] = _exact_report(
                arrival[mask], end[mask], ok[mask], duration
            )
    return report


def _exact_report(
    arrival: np.ndarray, end: np.ndarray, ok: np.ndarray, duration: float
) -> SummaryReport:
    times_ms = (end[ok] - arrival[ok]) * 1000.0
    n_requests = int(arrival.shape[0])
    n_ok = int(times_ms.shape[0])
    if n_ok:
        end_ok = end[ok]
        order = np.lexsort((times_ms, end_ok))
        timeline = list(
            zip(end_ok[order].tolist(), times_ms[order].tolist())
        )
        return SummaryReport(
            n_requests=n_requests,
            n_errors=n_requests - n_ok,
            avg_response_ms=float(times_ms.mean()),
            median_response_ms=float(np.median(times_ms)),
            p95_response_ms=float(np.percentile(times_ms, 95)),
            max_response_ms=float(times_ms.max()),
            throughput_rps=n_ok / duration if duration > 0 else 0.0,
            duration_seconds=duration,
            p99_response_ms=float(np.percentile(times_ms, 99)),
            timeline=timeline,
        )
    return SummaryReport(
        n_requests=n_requests,
        n_errors=n_requests,
        avg_response_ms=0.0,
        median_response_ms=0.0,
        p95_response_ms=0.0,
        max_response_ms=0.0,
        throughput_rps=0.0,
        duration_seconds=duration,
    )
