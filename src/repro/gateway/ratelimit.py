"""Rate limiting at the gateway (the Kong plugin the deployment would run).

§V picks Kong partly for its plugin ecosystem; rate limiting is the plugin
that protects metric micro-services from exactly the overload (and sponge
floods) the capacity experiments produce.  The limiter enforces a per-route
request budget over a sliding window; rejected requests fail fast with a
429-style error, which shows up in the JMeter summary's error-rate column.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.gateway.gateway import APIGateway
from repro.gateway.services import Request, RequestRecord


@dataclass
class RateLimitRule:
    """Allow at most ``max_requests`` per ``window_seconds`` on a route."""

    max_requests: int
    window_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")


class RateLimitedGateway:
    """Wrap an :class:`APIGateway` with per-route sliding-window limits.

    Drop-in replacement for the gateway in load tests: ``dispatch`` either
    forwards to the wrapped gateway or synthesises an immediate 429 record.
    Routes without a rule are unlimited.
    """

    def __init__(
        self,
        gateway: APIGateway,
        rules: Optional[Dict[str, RateLimitRule]] = None,
    ) -> None:
        self.gateway = gateway
        self.rules = dict(rules or {})
        self._arrivals: Dict[str, deque] = {route: deque() for route in self.rules}
        self.rejected: int = 0

    @property
    def sim(self):
        return self.gateway.sim

    @property
    def routes(self):
        return self.gateway.routes

    def set_rule(self, route: str, rule: RateLimitRule) -> None:
        """Install or replace a route's limit."""
        self.rules[route] = rule
        self._arrivals.setdefault(route, deque())

    def _over_limit(self, route: str) -> bool:
        rule = self.rules.get(route)
        if rule is None:
            return False
        now = self.gateway.sim.now
        window = self._arrivals[route]
        while window and window[0] <= now - rule.window_seconds:
            window.popleft()
        if len(window) >= rule.max_requests:
            return True
        window.append(now)
        return False

    def dispatch(
        self,
        request: Request,
        on_response: Callable[[RequestRecord], None],
    ) -> None:
        """Forward within budget; otherwise reject with 429 immediately."""
        if self._over_limit(request.route):
            self.rejected += 1
            now = self.gateway.sim.now
            record = RequestRecord(
                request=request,
                arrival=now,
                start=now,
                end=now,
                success=False,
                error="429 rate limited",
            )
            span = self.gateway.tracer.start_span(
                "gateway.request", start_time=now
            )
            if span.is_recording:
                span.set_attribute("route", request.route)
                record.trace = span.context
            span.record_error(record.error).end(at=now)
            self.gateway.records.append(record)
            self.gateway.sim.schedule(0.0, lambda: on_response(record))
            return
        self.gateway.dispatch(request, on_response)
