"""Columnar request records: the million-request capacity substrate.

The seed pipeline materialises one :class:`~repro.gateway.services.Request`
plus one :class:`~repro.gateway.services.RequestRecord` dataclass per
simulated request and keeps them in unbounded Python lists — ~0.5 KB and
several allocations per request, which caps capacity runs far below the
paper's "heavy traffic from millions of users" regime.  :class:`RecordLog`
stores the same lifecycle as a struct-of-arrays instead: preallocated,
geometrically grown numpy columns for arrival/start/end times, interned
route/payload/error ids, a success flag and the in-flight count at send
time.  A request *is* a row index threaded through the simulator; reading
or writing one field is a scalar array access, and whole-run aggregation
(the exact percentile oracle) is a handful of vectorized passes.

Two retention modes:

* ``retain=True`` — every row is kept; :meth:`records` materialises the
  classic ``RequestRecord`` views so the columnar run can be checked
  against the record-based oracle.
* ``retain=False`` — completed rows are :meth:`release`-d back onto a
  free list and recycled, so memory is bounded by the *in-flight* request
  count no matter how many requests a run pushes through (the 1M-request
  open-loop gate in ``benchmarks/bench_capacity_scale.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from repro.gateway.services import Request, RequestRecord

__all__ = ["RecordLog"]


class _Interner:
    """Bidirectional str <-> small-int mapping for one column vocabulary."""

    __slots__ = ("names", "index")

    def __init__(self, seed_names=()) -> None:
        self.names: List[str] = list(seed_names)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}

    def intern(self, name: str) -> int:
        ident = self.index.get(name)
        if ident is None:
            ident = len(self.names)
            self.index[name] = ident
            self.names.append(name)
        return ident


class RecordLog:
    """Struct-of-arrays request log with optional row recycling.

    Columns (all indexed by row):

    ``arrival``/``start``/``end``
        Virtual-time lifecycle stamps (float64 seconds).  ``arrival``
        includes the gateway's request leg, ``end`` its response leg,
        matching ``RequestRecord`` semantics.
    ``route_ids``/``payload_ids``/``error_codes``
        int32 ids interned through :meth:`intern_route` /
        :meth:`intern_payload` / :meth:`intern_error`; error code 0 is
        the empty string (no error).
    ``ok``
        Success flag (bool).
    ``active``
        In-flight request count when the request was sent — the
        *Response Times Over Active Threads* x-axis.

    Vectorized consumers (the oracle) read the numpy columns; per-event
    producers go through the ``v_``-prefixed :class:`memoryview` mirrors
    of the same buffers, which write through and exchange native Python
    scalars at roughly half the cost of numpy scalar indexing.  Always
    re-read columns and views off the log rather than caching them,
    because geometric growth reallocates both.

    ``slots`` is a per-row object column (a plain list grown with the
    log): the capacity runner links a closed-loop virtual user to its
    in-flight row there, so completion hands control back without a
    side dict keyed by row.
    """

    def __init__(self, initial_capacity: int = 1024, retain: bool = True) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self.retain = retain
        self.capacity = initial_capacity
        #: High-water row count: rows ``[0, size)`` have been allocated at
        #: least once (recycled rows stay below the high-water mark).
        self.size = 0
        #: Total rows handed out (== requests started through this log).
        self.appended = 0
        #: Rows served from the free list instead of fresh capacity.
        self.recycled = 0
        self._free = deque()
        self.arrival = np.zeros(initial_capacity, dtype=np.float64)
        self.start = np.zeros(initial_capacity, dtype=np.float64)
        self.end = np.zeros(initial_capacity, dtype=np.float64)
        self.route_ids = np.zeros(initial_capacity, dtype=np.int32)
        self.payload_ids = np.zeros(initial_capacity, dtype=np.int32)
        self.error_codes = np.zeros(initial_capacity, dtype=np.int32)
        self.ok = np.ones(initial_capacity, dtype=bool)
        self.active = np.zeros(initial_capacity, dtype=np.int32)
        self.slots: List[object] = [None] * initial_capacity
        self._refresh_views()
        self._routes = _Interner()
        self._payloads = _Interner()
        self._errors = _Interner([""])  # code 0 == "no error"
        if retain:
            # retain mode never recycles, so the per-append free-list
            # check and the ``ok`` reset are dead work — shadow the
            # method with the straight-line variant
            self.append = self._append_retain

    def _refresh_views(self) -> None:
        """Rebuild the scalar write-through views after (re)allocation."""
        self.v_arrival = memoryview(self.arrival)
        self.v_start = memoryview(self.start)
        self.v_end = memoryview(self.end)
        self.v_route_ids = memoryview(self.route_ids)
        self.v_payload_ids = memoryview(self.payload_ids)
        self.v_error_codes = memoryview(self.error_codes)
        self.v_ok = memoryview(self.ok)
        self.v_active = memoryview(self.active)

    # -- vocabularies -------------------------------------------------------

    def intern_route(self, name: str) -> int:
        return self._routes.intern(name)

    def intern_payload(self, name: str) -> int:
        return self._payloads.intern(name)

    def intern_error(self, message: str) -> int:
        return self._errors.intern(message)

    def route_name(self, ident: int) -> str:
        return self._routes.names[ident]

    def payload_name(self, ident: int) -> str:
        return self._payloads.names[ident]

    def error_message(self, ident: int) -> str:
        return self._errors.names[ident]

    @property
    def route_names(self) -> List[str]:
        """Interned route vocabulary, indexed by route id."""
        return list(self._routes.names)

    # -- row lifecycle ------------------------------------------------------

    def append(self, route_id: int, payload_id: int, arrival: float) -> int:
        """Allocate a row (recycling a released one when available).

        Only ``arrival``/``route_ids``/``payload_ids``/``ok`` are written:
        ``start``/``end`` are always overwritten by the service before any
        read (``fail``/``_start_row``; fresh rows are zero-filled, so the
        retained-mode ``end == 0`` in-flight mask stays correct),
        ``error_codes`` is only read when ``ok`` is False and ``fail`` sets
        both, and ``active`` is caller-maintained (the capacity runner
        stamps its in-flight count right after allocation).  ``ok`` must be
        reset here because a recycled row may carry a previous failure.
        """
        free = self._free
        if free:
            row = free.popleft()
            self.recycled += 1
        else:
            row = self.size
            if row == self.capacity:
                self._grow()
            self.size = row + 1
        self.appended += 1
        self.v_arrival[row] = arrival
        self.v_route_ids[row] = route_id
        self.v_payload_ids[row] = payload_id
        self.v_ok[row] = True
        return row

    def _append_retain(self, route_id: int, payload_id: int, arrival: float) -> int:
        """Retain-mode :meth:`append`: rows are always fresh.

        No free list to consult and no ``ok`` reset (fresh rows are
        ``True``-initialised and :meth:`_grow` keeps the new region so).
        Installed over ``append`` by ``__init__`` when ``retain=True``.
        """
        row = self.size
        if row == self.capacity:
            self._grow()
        self.size = row + 1
        self.appended += 1
        self.v_arrival[row] = arrival
        self.v_route_ids[row] = route_id
        self.v_payload_ids[row] = payload_id
        return row

    def release(self, row: int) -> None:
        """Return a completed row to the free list (ring mode only).

        In ``retain`` mode this is a no-op, so callers can release
        unconditionally and the mode decides whether history is kept.
        """
        if not self.retain:
            self._free.append(row)

    def _grow(self) -> None:
        new_capacity = self.capacity * 2
        for name in (
            "arrival",
            "start",
            "end",
            "route_ids",
            "payload_ids",
            "error_codes",
            "ok",
            "active",
        ):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self.capacity] = old
            setattr(self, name, grown)
        self.ok[self.capacity :] = True
        self.slots.extend([None] * self.capacity)
        self.capacity = new_capacity
        self._refresh_views()

    # -- compatibility / oracle views ---------------------------------------

    def fail(self, row: int, error_code: int, at: float) -> None:
        """Mark a row failed-on-arrival (reject paths: start == end == at)."""
        self.v_start[row] = at
        self.v_end[row] = at
        self.v_ok[row] = False
        self.v_error_codes[row] = error_code

    def record(self, row: int) -> RequestRecord:
        """Materialise one row as the classic :class:`RequestRecord` view."""
        arrival = float(self.arrival[row])
        request = Request(
            request_id=row,
            route=self._routes.names[self.route_ids[row]],
            payload=self._payloads.names[self.payload_ids[row]],
            created_at=arrival,
        )
        return RequestRecord(
            request=request,
            arrival=arrival,
            start=float(self.start[row]),
            end=float(self.end[row]),
            success=bool(self.ok[row]),
            error=self._errors.names[self.error_codes[row]],
        )

    def records(self) -> List[RequestRecord]:
        """All rows as ``RequestRecord`` views (oracle API, retain mode).

        Ring mode recycles rows, so a full materialisation would mix
        live and already-overwritten lifecycles — refuse instead.
        """
        if not self.retain:
            raise ValueError(
                "records() requires retain=True; ring mode recycles rows"
            )
        return [self.record(row) for row in range(self.size)]

    def __len__(self) -> int:
        return self.size
