"""Seed record-path load generator — the pre-columnar implementation.

This module preserves, essentially verbatim, the closure-chain
:class:`LoadGenerator` and re-filtering ``from_records`` aggregation that
the columnar capacity pipeline (:class:`~repro.gateway.capacity.CapacityRunner`
over a :class:`~repro.gateway.records.RecordLog`) replaced.  It exists for
exactly one consumer: ``benchmarks/bench_capacity_scale.py``, which
measures the columnar path's speedup against exactly this implementation
— per-iteration ``Request``/closure-pair allocation, one retained
``RequestRecord`` per request, and an O(routes × records) re-filtering
summary pass.

It is deliberately allocation-heavy and must not be used from production
paths.  The ``hotpath-accumulator`` lint rule flags its per-request
accumulators; the findings are baselined with this rationale.

Mirrors :mod:`repro.xai._reference` (the pre-vectorization Kernel SHAP
oracle) in spirit: the seed stays runnable so the benchmark's baseline is
the real former implementation, not a degraded stand-in.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.gateway.gateway import APIGateway
from repro.gateway.loadgen import SummaryReport, ThreadGroup
from repro.gateway.services import Request, RequestRecord
from repro.gateway.simulation import Simulator

__all__ = ["ReferenceLoadGenerator", "reference_from_records"]


def reference_from_records(
    records: List[RequestRecord], duration: float
) -> SummaryReport:
    """The seed ``SummaryReport.from_records``: re-filters per route.

    Builds the per-route breakdown by scanning the full record list once
    per route (the O(routes × records) pass the grouped implementation
    replaced).  Faithful to the seed except for the all-errors case,
    where it reports zeros like the fixed implementation instead of
    summarising a fabricated ``[0.0]`` sample.
    """
    if not records:
        return SummaryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, duration)
    ok = [r for r in records if r.success]
    if ok:
        times_ms = np.array([r.response_time * 1000.0 for r in ok])
        avg = float(times_ms.mean())
        median = float(np.median(times_ms))
        p95 = float(np.percentile(times_ms, 95))
        p99 = float(np.percentile(times_ms, 99))
        peak = float(times_ms.max())
        timeline = sorted((r.end, r.response_time * 1000.0) for r in ok)
    else:
        avg = median = p95 = p99 = peak = 0.0
        timeline = []
    report = SummaryReport(
        n_requests=len(records),
        n_errors=len(records) - len(ok),
        avg_response_ms=avg,
        median_response_ms=median,
        p95_response_ms=p95,
        max_response_ms=peak,
        throughput_rps=len(ok) / duration if duration > 0 else 0.0,
        duration_seconds=duration,
        p99_response_ms=p99,
        timeline=timeline,
    )
    routes = {r.request.route for r in records}
    if len(routes) > 1:
        for route in sorted(routes):
            subset = [r for r in records if r.request.route == route]
            report.per_route[route] = reference_from_records(subset, duration)
    return report


class ReferenceLoadGenerator:
    """The seed closed-loop generator: one fresh closure pair per iteration.

    Every iteration of every virtual user allocates a ``send`` closure, a
    ``Request`` dataclass, an ``on_response`` closure and a retained
    ``RequestRecord`` — the per-request allocation profile the columnar
    runner's reusable ``__slots__`` user objects replaced.
    """

    def __init__(self, sim: Simulator, gateway: APIGateway) -> None:
        self.sim = sim
        self.gateway = gateway
        self.responses: List[RequestRecord] = []
        #: (active in-flight requests at send time, response ms) per response
        self.active_threads: List[Tuple[int, float]] = []
        self._next_id = 0
        self._in_flight = 0

    def add_thread_group(self, group: ThreadGroup) -> None:
        """Schedule all virtual users of a thread group (linear ramp-up)."""
        spacing = (
            group.rampup_seconds / group.n_threads if group.n_threads else 0.0
        )
        for thread in range(group.n_threads):
            start_at = thread * spacing
            self.sim.schedule(
                start_at, self._make_user(group, remaining=group.iterations)
            )

    def _make_user(self, group: ThreadGroup, remaining: int):
        def send() -> None:
            self._next_id += 1
            self._in_flight += 1
            active_at_send = self._in_flight
            request = Request(
                request_id=self._next_id,
                route=group.route,
                payload=group.payload,
            )

            def on_response(record: RequestRecord) -> None:
                self._in_flight -= 1
                self.responses.append(record)
                self.active_threads.append(
                    (active_at_send, record.response_time * 1000.0)
                )
                if remaining > 1:
                    self.sim.schedule(
                        group.think_time,
                        self._make_user(group, remaining - 1),
                    )

            self.gateway.dispatch(request, on_response)

        return send

    def run(self, until: Optional[float] = None) -> SummaryReport:
        """Run to completion; summarise with the seed re-filtering pass."""
        end_time = self.sim.run(until=until)
        return reference_from_records(self.responses, duration=end_time)
