"""Machines, requests and micro-services for the deployment simulation.

Each micro-service is an M/G/c-style station: ``concurrency`` parallel
workers (defaulting to the host machine's vCPUs — or a large batch width for
the GPU-backed impact service), a bounded FIFO queue, and a payload-aware
service-time model calibrated against our real metric implementations and
the latencies the paper reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappush as _heappush
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gateway.simulation import Simulator
from repro.serving.admission import SHED_ERROR_MESSAGE
from repro.serving.policy import ServingPolicy
from repro.tracing import NULL_SPAN, NULL_TRACER, SpanContext


@dataclass(frozen=True)
class Machine:
    """One deployment host from Fig. 8(a)."""

    name: str
    vcpus: int
    ram_gb: int
    gpu: bool = False

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.ram_gb < 1:
            raise ValueError("machines need at least 1 vCPU and 1 GB RAM")


@dataclass
class Request:
    """One client request routed through the gateway."""

    request_id: int
    route: str
    payload: str = "tabular"  # "tabular" | "image"
    created_at: float = 0.0


@dataclass
class RequestRecord:
    """Lifecycle of one request, used by the summary listeners."""

    request: Request
    arrival: float
    start: float = 0.0
    end: float = 0.0
    success: bool = True
    error: str = ""
    #: Root span context of the trace this request ran under (``None``
    #: when tracing is off).  The load generator copies it onto the
    #: telemetry events it publishes — the exemplar link from rollup
    #: buckets back to recorded traces.
    trace: Optional[SpanContext] = None

    @property
    def response_time(self) -> float:
        """Seconds from arrival at the gateway to the response."""
        return self.end - self.arrival

    @property
    def wait_time(self) -> float:
        """Seconds spent queued before a worker picked the request up."""
        return self.start - self.arrival


class ServiceTimeModel:
    """Payload-conditional lognormal service times.

    Parameters
    ----------
    base_seconds:
        Payload kind → median service time in seconds.
    jitter:
        Lognormal sigma (relative spread); 0 gives deterministic times.
    seed:
        RNG seed; every sample is reproducible.
    """

    def __init__(
        self,
        base_seconds: Dict[str, float],
        jitter: float = 0.15,
        seed: int = 0,
    ) -> None:
        if not base_seconds:
            raise ValueError("base_seconds must define at least one payload kind")
        if any(v <= 0 for v in base_seconds.values()):
            raise ValueError("service times must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.base_seconds = dict(base_seconds)
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)

    def sample(self, payload: str) -> float:
        """Draw one service time for a payload kind."""
        if payload not in self.base_seconds:
            raise KeyError(
                f"service does not handle payload {payload!r}; "
                f"supported: {sorted(self.base_seconds)}"
            )
        base = self.base_seconds[payload]
        if self.jitter == 0:
            return base
        return float(base * self._rng.lognormal(0.0, self.jitter))

    def sample_batch(self, payload: str, n: int) -> np.ndarray:
        """Draw ``n`` service times in one vectorized call.

        Feeds the per-service refill buffer on the columnar hot path: one
        generator call per few thousand requests instead of one per
        request.  The batch consumes the generator stream differently
        from ``n`` scalar :meth:`sample` calls, so the two paths are
        statistically identical but not draw-for-draw identical.
        """
        if payload not in self.base_seconds:
            raise KeyError(
                f"service does not handle payload {payload!r}; "
                f"supported: {sorted(self.base_seconds)}"
            )
        if n < 1:
            raise ValueError("n must be >= 1")
        base = self.base_seconds[payload]
        if self.jitter == 0:
            return np.full(n, base)
        return base * self._rng.lognormal(0.0, self.jitter, size=n)

    def supports(self, payload: str) -> bool:
        return payload in self.base_seconds


CompletionCallback = Callable[[RequestRecord], None]

#: Refill size for the pre-sampled service-time buffers: one vectorized
#: generator call (plus a ``tolist`` for C-speed scalar reads) per this
#: many requests of a payload kind.
SERVICE_TIME_BATCH = 4096


class _SampleBuffer:
    """Cursor over one payload's pre-sampled service-time batch."""

    __slots__ = ("values", "pos")

    def __init__(self) -> None:
        self.values: List[float] = []
        self.pos = 0


class MicroService:
    """A metric micro-service: c parallel workers over a bounded FIFO queue.

    Parameters
    ----------
    name:
        Route name (e.g. ``"shap"``).
    machine:
        Host machine; default worker count is its vCPU count.
    service_time:
        Payload-aware :class:`ServiceTimeModel`.
    concurrency:
        Parallel in-flight requests (overrides vCPUs; the GPU impact
        service uses a large batch width here).
    queue_capacity:
        Waiting-room size; arrivals beyond it fail fast with a 503-style
        error, which is what JMeter's error-rate column counts.
    stages:
        Optional ordered mapping of pipeline stage name → relative weight
        (e.g. ``{"pipeline.preprocess": 1, "pipeline.predict": 4,
        "pipeline.explain": 5}``).  When a traced request finishes, the
        sampled service time is partitioned proportionally into child
        spans of the processing span — a stage-level profile of where the
        service time went, materialised retroactively without scheduling
        extra simulator events.
    """

    def __init__(
        self,
        name: str,
        machine: Machine,
        service_time: ServiceTimeModel,
        concurrency: Optional[int] = None,
        queue_capacity: int = 1000,
        stages: Optional[Dict[str, float]] = None,
    ) -> None:
        if queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")
        if stages is not None:
            if not stages:
                raise ValueError("stages mapping must not be empty")
            if any(w <= 0 for w in stages.values()):
                raise ValueError("stage weights must be positive")
        self.name = name
        self.machine = machine
        self.service_time = service_time
        self.concurrency = machine.vcpus if concurrency is None else concurrency
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.queue_capacity = queue_capacity
        self.stages = dict(stages) if stages else None
        #: Optional completion hook ``probe(tracer, span, record)`` fired
        #: when a request finishes processing, with the processing span as
        #: ``span`` (the :data:`~repro.tracing.span.NULL_SPAN` when
        #: tracing is off).  The capacity scenario wires this to a traced
        #: sensor poll, attaching real AI-trust measurements to the
        #: request's trace.
        self.probe: Optional[Callable] = None
        self._busy = 0
        # Unified FIFO: record-path entries are 5-tuples, columnar-path
        # entries are bare row ints; deque gives O(1) popleft either way.
        self._waiting: deque = deque()
        self.completed: List[RequestRecord] = []
        #: Requests completed on the columnar row path (the row itself
        #: lives in the bound :class:`~repro.gateway.records.RecordLog`,
        #: possibly recycled — only the count is retained here).
        self.completed_rows: int = 0
        self.rejected: int = 0
        self._peak_queue = 0
        self._busy_seconds = 0.0  # cumulative worker-seconds of service
        # Columnar-mode bindings (set by use_columnar); None = record-only.
        self._log = None
        self._sim: Optional[Simulator] = None
        self._sink = None
        self._sim_queue: Optional[list] = None
        self._sim_counter = None
        self._supported_ids: frozenset = frozenset()
        self._err_queue_full = 0
        self._err_unsupported: Dict[int, int] = {}
        self._st_buffers: Dict[int, _SampleBuffer] = {}
        self._finish_cb = self._finish_row  # pre-bound: no per-event binding
        # Serving-mode bindings (set by configure_serving); None keeps
        # the classic one-row-per-worker dispatch untouched.
        self.serving: Optional[ServingPolicy] = None
        self._srv_pending: Dict[int, list] = {}
        self._srv_epoch: Dict[int, int] = {}
        self._srv_queued = 0
        self._srv_max_batch = 0
        self._srv_window = 0.0
        self._srv_marginal = 0.0
        self._srv_shed_depth = 0
        self._err_shed = 0
        self.batches_flushed = 0
        self.rows_batched = 0
        self.flushed_by_size = 0
        self.flushed_by_deadline = 0
        self.shed_rows = 0
        self.batch_size_peak = 0
        self._flush_deadline_cb = self._flush_deadline
        self._finish_batch_cb = self._finish_batch
        # Kernel-pool bindings (policy.pool_workers > 0): flushed
        # batches occupy simulated pool workers instead of station
        # workers, so the station keeps admitting while kernels run —
        # the discrete-event mirror of repro.pool.
        self._pool_workers = 0
        self._pool_busy = 0
        self._pool_waiting: deque = deque()
        self._pool_inflight: Dict[int, tuple] = {}
        self._pool_seq = 0
        self._pool_busy_seconds = 0.0
        self._pool_peak_queue = 0
        self.pool_batches = 0
        self.pool_rows = 0
        self.pool_crashes = 0
        self.pool_restarts = 0
        self.pool_resubmitted = 0
        self.pool_peak_inflight = 0
        self._finish_pool_batch_cb = self._finish_pool_batch

    def submit(
        self,
        request: Request,
        sim: Simulator,
        on_complete: CompletionCallback,
        tracer=NULL_TRACER,
        parent=None,
    ) -> None:
        """Accept (or reject) a request at the current virtual time.

        ``parent`` is the caller's span (the gateway's request root);
        queueing, processing and rejection each become child spans when
        ``tracer`` is recording.
        """
        record = RequestRecord(request=request, arrival=sim.now)
        if not self.service_time.supports(request.payload):
            record.success = False
            record.error = f"unsupported payload {request.payload!r}"
            record.start = record.end = sim.now
            if tracer.is_recording:
                self._reject_span(record, sim, tracer, parent)
            self.completed.append(record)
            on_complete(record)
            return
        if self._busy < self.concurrency:
            self._start(record, sim, on_complete, tracer, parent)
        elif len(self._waiting) < self.queue_capacity:
            queue_span = NULL_SPAN
            if tracer.is_recording:
                queue_span = tracer.start_span(
                    "service.queue", parent=parent, start_time=sim.now
                )
                queue_span.set_attribute("service", self.name)
                queue_span.set_attribute(
                    "queue_depth", float(len(self._waiting))
                )
            self._waiting.append((record, on_complete, tracer, parent, queue_span))
            self._peak_queue = max(self._peak_queue, len(self._waiting))
        else:
            self.rejected += 1
            record.success = False
            record.error = "queue full (503)"
            record.start = record.end = sim.now
            if tracer.is_recording:
                self._reject_span(record, sim, tracer, parent)
            self.completed.append(record)
            on_complete(record)

    def _reject_span(self, record: RequestRecord, sim, tracer, parent) -> None:
        """Record a fail-fast rejection as an instant error span."""
        span = tracer.start_span(
            "service.reject", parent=parent, start_time=sim.now
        )
        if span.is_recording:
            span.set_attribute("service", self.name)
            record.trace = span.context
        span.record_error(record.error)
        span.end(at=sim.now)

    def _start(
        self,
        record: RequestRecord,
        sim: Simulator,
        on_complete: CompletionCallback,
        tracer=NULL_TRACER,
        parent=None,
        queue_span=None,
    ) -> None:
        self._busy += 1
        record.start = sim.now
        recording = tracer.is_recording
        if recording and queue_span is not None:
            queue_span.end(at=sim.now)
        duration = self.service_time.sample(record.request.payload)
        process_span = NULL_SPAN
        if recording:
            process_span = tracer.start_span(
                "service.process", parent=parent, start_time=sim.now
            )
            process_span.set_attribute("service", self.name)
            process_span.set_attribute("payload", record.request.payload)
            process_span.set_attribute("busy_workers", float(self._busy))
            record.trace = process_span.context

        def finish() -> None:
            record.end = sim.now
            self._busy -= 1
            self._busy_seconds += record.end - record.start
            self.completed.append(record)
            if recording and self.stages:
                self._materialize_stages(process_span, record, tracer)
            if self.probe is not None:
                self.probe(tracer, process_span, record)
            if recording:
                process_span.end(at=sim.now)
            # hand the freed worker to the queue head BEFORE notifying the
            # caller: a callback that synchronously resubmits must queue
            # behind earlier arrivals, not grab the worker (and the cap
            # would otherwise be breached when both paths start a request)
            if self._waiting:
                entry = self._waiting.popleft()
                if type(entry) is int:
                    self._start_row(entry)
                else:
                    self._start(
                        entry[0], sim, entry[1], entry[2], entry[3], entry[4]
                    )
            on_complete(record)

        sim.schedule(duration, finish)

    def _materialize_stages(self, process_span, record, tracer) -> None:
        """Cut the finished service interval into stage child spans.

        Weights are normalised so the stage spans partition the
        processing span *exactly* — the critical-path invariant (segment
        durations sum to the trace duration) depends on it.
        """
        total = sum(self.stages.values())
        cursor = record.start
        names = list(self.stages)
        for i, stage in enumerate(names):
            if i + 1 < len(names):
                stage_end = cursor + (
                    (record.end - record.start) * self.stages[stage] / total
                )
            else:
                stage_end = record.end  # absorb float residue in the last cut
            tracer.start_span(
                stage, parent=process_span, start_time=cursor
            ).set_attribute("service", self.name).end(at=stage_end)
            cursor = stage_end

    # -- columnar row path ---------------------------------------------------
    #
    # The million-request hot path: a request is a row index in a bound
    # RecordLog, the service time comes from a refillable pre-sampled
    # buffer, and every scheduled callback is a bound method via
    # Simulator.schedule_call — no Request/RequestRecord dataclasses, no
    # closures, no per-request tuples.  The record path above stays the
    # default (and the traced/oracle path); both share one FIFO, so
    # trace-sampled requests interleave with row requests in true
    # arrival order.

    def use_columnar(self, log, sim: Simulator, sink) -> None:
        """Bind this service to a record log for the row-based hot path.

        ``sink(row, ok)`` is invoked at service-completion time for every
        row (success, reject or unsupported payload); the caller (the
        capacity runner) owns response-leg accounting — including the
        row's ``end`` stamp, which the service leaves untouched on the
        success path — plus streaming stats and row recycling.  ``ok``
        mirrors ``log.ok[row]`` — passing it spares the sink a
        per-request column read.
        """
        self._log = log
        self._sim = sim
        self._sink = sink
        # scheduling a service completion is a pure heap push (service
        # times are strictly positive, so the schedule-into-the-past
        # guard is dead); grab the simulator's heap and tie-break counter
        # once — both live for the simulator's lifetime
        self._sim_queue = sim._queue
        self._sim_counter = sim._counter
        self._supported_ids = frozenset(
            log.intern_payload(p) for p in self.service_time.base_seconds
        )
        self._err_queue_full = log.intern_error("queue full (503)")
        self._err_shed = log.intern_error(SHED_ERROR_MESSAGE)
        self._err_unsupported = {}
        self._st_buffers = {}
        self._st_last_id = -1  # last payload's buffer, cached off the dict
        self._st_last_buf = None

    def submit_row(self, row: int) -> None:
        """Accept (or reject) a columnar request at the current time."""
        log = self._log
        # the memoryview yields a Python int: set/dict probes on it beat
        # hashing a numpy scalar, and this runs once per simulated request
        payload_id = log.v_payload_ids[row]
        if payload_id not in self._supported_ids:
            code = self._err_unsupported.get(payload_id)
            if code is None:
                payload = log.payload_name(payload_id)
                code = log.intern_error(f"unsupported payload {payload!r}")
                self._err_unsupported[payload_id] = code
            log.fail(row, code, self._sim.now)
            self.completed_rows += 1
            self._sink(row, False)
            return
        if self._busy < self.concurrency:
            # inline of _start_row (sans the queue-drain re-read): the
            # uncongested accept runs once per simulated request, and the
            # call alone costs as much as the buffer bookkeeping
            self._busy += 1
            now = self._sim.now
            log.v_start[row] = now
            if payload_id == self._st_last_id:
                buffer = self._st_last_buf
            else:
                buffer = self._st_buffers.get(payload_id)
                if buffer is None:
                    buffer = _SampleBuffer()
                    self._st_buffers[payload_id] = buffer
                self._st_last_id = payload_id
                self._st_last_buf = buffer
            pos = buffer.pos
            values = buffer.values
            if pos >= len(values):
                values = self.service_time.sample_batch(
                    log.payload_name(payload_id), SERVICE_TIME_BATCH
                ).tolist()
                buffer.values = values
                pos = 0
            buffer.pos = pos + 1
            _heappush(
                self._sim_queue,
                (
                    now + values[pos],
                    next(self._sim_counter),
                    self._finish_cb,
                    row,
                ),
            )
        else:
            waiting = self._waiting
            depth = len(waiting)
            if depth < self.queue_capacity:
                waiting.append(row)
                if depth >= self._peak_queue:
                    self._peak_queue = depth + 1
            else:
                self.rejected += 1
                log.fail(row, self._err_queue_full, self._sim.now)
                self.completed_rows += 1
                self._sink(row, False)

    def submit_trusted_row(self, row: int) -> None:
        """:meth:`submit_row` minus the payload check.

        For callers that validated the payload once at bind time (a
        closed-loop group or arrival process sends one fixed payload, so
        re-probing ``_supported_ids`` per request is dead work).  The
        congested branch never reads the payload column at all.
        """
        if self._busy < self.concurrency:
            log = self._log
            payload_id = log.v_payload_ids[row]
            self._busy += 1
            now = self._sim.now
            log.v_start[row] = now
            if payload_id == self._st_last_id:
                buffer = self._st_last_buf
            else:
                buffer = self._st_buffers.get(payload_id)
                if buffer is None:
                    buffer = _SampleBuffer()
                    self._st_buffers[payload_id] = buffer
                self._st_last_id = payload_id
                self._st_last_buf = buffer
            pos = buffer.pos
            values = buffer.values
            if pos >= len(values):
                values = self.service_time.sample_batch(
                    log.payload_name(payload_id), SERVICE_TIME_BATCH
                ).tolist()
                buffer.values = values
                pos = 0
            buffer.pos = pos + 1
            _heappush(
                self._sim_queue,
                (
                    now + values[pos],
                    next(self._sim_counter),
                    self._finish_cb,
                    row,
                ),
            )
        else:
            waiting = self._waiting
            depth = len(waiting)
            if depth < self.queue_capacity:
                waiting.append(row)
                if depth >= self._peak_queue:
                    self._peak_queue = depth + 1
            else:
                self.rejected += 1
                log = self._log
                log.fail(row, self._err_queue_full, self._sim.now)
                self.completed_rows += 1
                self._sink(row, False)

    def configure_serving(self, policy: ServingPolicy) -> None:
        """Enable micro-batched dispatch + admission control (DESIGN §15).

        Rows submitted through :meth:`submit_row_serving` coalesce per
        payload shape and flush as one fused kernel call occupying one
        worker for ``draw * (1 + (n-1)*batch_marginal)`` — the measured
        sublinear scaling of the vectorized kernels.  Once the backlog
        (pending + queued batch rows) reaches ``shed_depth``, new rows
        are shed with the typed ``503 shed`` error the SLO attribution
        layer keys on.  The classic per-row submit paths are untouched,
        so unbatched and batched runs compare apples to apples.
        """
        self.serving = policy
        self._srv_pending = {}
        self._srv_epoch = {}
        self._srv_queued = 0
        self._srv_max_batch = policy.max_batch
        self._srv_window = policy.batch_window
        self._srv_marginal = policy.batch_marginal
        self._srv_shed_depth = policy.shed_depth
        self._pool_workers = policy.pool_workers

    def submit_row_serving(self, row: int) -> None:
        """Accept, batch, or shed a columnar request at the current time."""
        log = self._log
        payload_id = log.v_payload_ids[row]
        if payload_id not in self._supported_ids:
            code = self._err_unsupported.get(payload_id)
            if code is None:
                payload = log.payload_name(payload_id)
                code = log.intern_error(f"unsupported payload {payload!r}")
                self._err_unsupported[payload_id] = code
            log.fail(row, code, self._sim.now)
            self.completed_rows += 1
            self._sink(row, False)
            return
        if self._srv_shed_depth and self._srv_queued >= self._srv_shed_depth:
            self.shed_rows += 1
            log.fail(row, self._err_shed, self._sim.now)
            self.completed_rows += 1
            self._sink(row, False)
            return
        pending = self._srv_pending.get(payload_id)
        if pending is None:
            pending = []
            self._srv_pending[payload_id] = pending
            self._srv_epoch[payload_id] = 0
        pending.append(row)
        self._srv_queued += 1
        if len(pending) >= self._srv_max_batch:
            self.flushed_by_size += 1
            self._flush_payload(payload_id)
        elif len(pending) == 1:
            self._sim.schedule_call(
                self._srv_window,
                self._flush_deadline_cb,
                (self._srv_epoch[payload_id], payload_id),
            )

    def _flush_deadline(self, token) -> None:
        """Window-expiry flush; stale epochs are already-flushed groups."""
        epoch, payload_id = token
        if epoch != self._srv_epoch.get(payload_id, -1):
            return
        if self._srv_pending.get(payload_id):
            self.flushed_by_deadline += 1
            self._flush_payload(payload_id)

    def _flush_payload(self, payload_id: int) -> None:
        batch = self._srv_pending[payload_id]
        self._srv_pending[payload_id] = []
        self._srv_epoch[payload_id] += 1
        if self._pool_workers:
            self._dispatch_pool_batch(batch)
            return
        if self._busy < self.concurrency:
            self._start_batch(batch)
            return
        waiting = self._waiting
        depth = len(waiting)
        # capacity is counted in queue *entries*: a parked batch is one
        # fused unit of work, exactly like one record or one row
        if depth < self.queue_capacity:
            waiting.append(batch)
            if depth >= self._peak_queue:
                self._peak_queue = depth + 1
            return
        log = self._log
        now = self._sim.now
        code = self._err_queue_full
        n = len(batch)
        self.rejected += n
        self._srv_queued -= n
        self.completed_rows += n
        sink = self._sink
        for row in batch:
            log.fail(row, code, now)
            sink(row, False)

    def _start_batch(self, batch: list) -> None:
        """Start one fused batch on a freed worker (one draw, n rows)."""
        self._busy += 1
        log = self._log
        now = self._sim.now
        n = len(batch)
        self._srv_queued -= n
        for row in batch:
            log.v_start[row] = now
        payload_id = log.v_payload_ids[batch[0]]
        if payload_id == self._st_last_id:
            buffer = self._st_last_buf
        else:
            buffer = self._st_buffers.get(payload_id)
            if buffer is None:
                buffer = _SampleBuffer()
                self._st_buffers[payload_id] = buffer
            self._st_last_id = payload_id
            self._st_last_buf = buffer
        pos = buffer.pos
        values = buffer.values
        if pos >= len(values):
            values = self.service_time.sample_batch(
                log.payload_name(payload_id), SERVICE_TIME_BATCH
            ).tolist()
            buffer.values = values
            pos = 0
        buffer.pos = pos + 1
        duration = values[pos] * (1.0 + (n - 1) * self._srv_marginal)
        self.batches_flushed += 1
        self.rows_batched += n
        if n > self.batch_size_peak:
            self.batch_size_peak = n
        _heappush(
            self._sim_queue,
            (
                now + duration,
                next(self._sim_counter),
                self._finish_batch_cb,
                batch,
            ),
        )

    def _finish_batch(self, batch: list) -> None:
        now = self._sim.now
        log = self._log
        # one worker held for the whole fused call
        self._busy_seconds += now - log.v_start[batch[0]]
        self.completed_rows += len(batch)
        self._busy -= 1
        waiting = self._waiting
        while self._busy < self.concurrency and waiting:
            entry = waiting.popleft()
            if type(entry) is list:
                self._start_batch(entry)
            elif type(entry) is int:
                self._start_row(entry)
            else:
                self._start(
                    entry[0], self._sim, entry[1], entry[2], entry[3], entry[4]
                )
        sink = self._sink
        for row in batch:
            sink(row, True)

    def serving_event(self, at: float):
        """Batching/shedding counters as a telemetry event.

        ``value`` is the mean rows per fused kernel call; flush-trigger
        splits, the batch-size peak and the shed count ride in ``attrs``
        so serving efficiency lands on the same bus → WAL → rollup
        stream as utilisation.
        """
        from repro.telemetry.events import KIND_SERVING, TelemetryEvent

        batches = self.batches_flushed
        return TelemetryEvent(
            source=f"serving:{self.name}",
            value=self.rows_batched / batches if batches else 0.0,
            timestamp=at,
            kind=KIND_SERVING,
            attrs={
                "batches": float(batches),
                "rows": float(self.rows_batched),
                "by_size": float(self.flushed_by_size),
                "by_deadline": float(self.flushed_by_deadline),
                "peak": float(self.batch_size_peak),
                "shed": float(self.shed_rows),
            },
        )

    # -- simulated kernel pool (policy.pool_workers > 0) ---------------------
    #
    # The discrete-event mirror of repro.pool: flushed batches occupy
    # pool workers, not station workers, so the station's event loop
    # (admission, coalescing, window timers) overlaps with kernel
    # execution.  A pool-worker crash re-dispatches its oldest in-flight
    # batch onto the instantly-restarted worker with a fresh service
    # draw; the orphaned completion callback finds its dispatch id gone
    # and does nothing, so no row is ever lost or double-counted.

    def _sample_service(self, payload_id: int) -> float:
        """One service-time draw off the pre-sampled buffers."""
        if payload_id == self._st_last_id:
            buffer = self._st_last_buf
        else:
            buffer = self._st_buffers.get(payload_id)
            if buffer is None:
                buffer = _SampleBuffer()
                self._st_buffers[payload_id] = buffer
            self._st_last_id = payload_id
            self._st_last_buf = buffer
        pos = buffer.pos
        values = buffer.values
        if pos >= len(values):
            values = self.service_time.sample_batch(
                self._log.payload_name(payload_id), SERVICE_TIME_BATCH
            ).tolist()
            buffer.values = values
            pos = 0
        buffer.pos = pos + 1
        return values[pos]

    def _dispatch_pool_batch(self, batch: list) -> None:
        """Route one flushed batch to the pool tier (park if saturated).

        Parked batches stay in ``_srv_queued`` so admission control
        back-pressures on the pool backlog exactly as it does on the
        coalescing backlog.
        """
        if self._pool_busy < self._pool_workers:
            self._start_pool_batch(batch)
        else:
            waiting = self._pool_waiting
            waiting.append(batch)
            if len(waiting) > self._pool_peak_queue:
                self._pool_peak_queue = len(waiting)

    def _start_pool_batch(self, batch: list, resubmit: bool = False) -> None:
        """Occupy one pool worker with a fused batch (one draw, n rows).

        ``resubmit`` re-dispatches a crash-orphaned batch: the rows were
        already started and counted, so only a fresh completion is
        scheduled — telemetry never double-counts a resubmission.
        """
        log = self._log
        now = self._sim.now
        n = len(batch)
        if not resubmit:
            self._pool_busy += 1
            self._srv_queued -= n
            for row in batch:
                log.v_start[row] = now
            # a pooled batch is still one fused serving batch — the
            # serving counters stay comparable across pool on/off runs
            self.batches_flushed += 1
            self.rows_batched += n
            self.pool_batches += 1
            self.pool_rows += n
            if n > self.batch_size_peak:
                self.batch_size_peak = n
        inflight = len(self._pool_inflight) + 1
        if inflight > self.pool_peak_inflight:
            self.pool_peak_inflight = inflight
        duration = self._sample_service(
            log.v_payload_ids[batch[0]]
        ) * (1.0 + (n - 1) * self._srv_marginal)
        self._pool_seq += 1
        dispatch_id = self._pool_seq
        self._pool_inflight[dispatch_id] = (batch, now)
        _heappush(
            self._sim_queue,
            (
                now + duration,
                next(self._sim_counter),
                self._finish_pool_batch_cb,
                dispatch_id,
            ),
        )

    def _finish_pool_batch(self, dispatch_id: int) -> None:
        entry = self._pool_inflight.pop(dispatch_id, None)
        if entry is None:
            # the worker crashed mid-batch; the batch already went back
            # out under a new dispatch id
            return
        batch, started = entry
        now = self._sim.now
        self._pool_busy_seconds += now - started
        self.completed_rows += len(batch)
        self._pool_busy -= 1
        if self._pool_waiting and self._pool_busy < self._pool_workers:
            self._start_pool_batch(self._pool_waiting.popleft())
        sink = self._sink
        for row in batch:
            sink(row, True)

    def crash_pool_worker(self) -> int:
        """Kill one pool worker; returns rows re-dispatched.

        The oldest in-flight batch dies with the worker and is
        resubmitted onto the instantly-restarted replacement with a
        fresh service draw.  Batch/row counters do not advance again.
        """
        if not self._pool_workers:
            return 0
        self.pool_crashes += 1
        self.pool_restarts += 1
        if not self._pool_inflight:
            return 0
        dispatch_id = min(self._pool_inflight)
        batch, _started = self._pool_inflight.pop(dispatch_id)
        self.pool_resubmitted += len(batch)
        self._start_pool_batch(batch, resubmit=True)
        return len(batch)

    def pool_event(self, at: float):
        """Pool queue depth + fan-out counters as a telemetry event.

        ``value`` is the pool backlog (in-flight + parked batches);
        worker occupancy, fan-out and the crash/resubmit ledger ride in
        ``attrs`` so the POOL dashboard panel reads one source per
        station.
        """
        from repro.telemetry.events import KIND_POOL, TelemetryEvent

        batches = self.pool_batches
        return TelemetryEvent(
            source=f"pool:{self.name}",
            value=float(len(self._pool_inflight) + len(self._pool_waiting)),
            timestamp=at,
            kind=KIND_POOL,
            attrs={
                "workers": float(self._pool_workers),
                "busy": float(self._pool_busy),
                "queued": float(len(self._pool_waiting)),
                "batches": float(batches),
                "rows": float(self.pool_rows),
                "mean_fan_out": (
                    self.pool_rows / batches if batches else 0.0
                ),
                "peak_inflight": float(self.pool_peak_inflight),
                "crashes": float(self.pool_crashes),
                "restarts": float(self.pool_restarts),
                "resubmitted": float(self.pool_resubmitted),
                "busy_seconds": self._pool_busy_seconds,
            },
        )

    @property
    def pool_backlog(self) -> int:
        """In-flight plus parked pool batches (the POOL panel's value)."""
        return len(self._pool_inflight) + len(self._pool_waiting)

    def _start_row(self, row: int) -> None:
        """Start a queued row on a freed worker (queue-drain path)."""
        self._busy += 1
        sim = self._sim
        self._log.v_start[row] = sim.now
        payload_id = self._log.v_payload_ids[row]
        if payload_id == self._st_last_id:
            buffer = self._st_last_buf
        else:
            buffer = self._st_buffers.get(payload_id)
            if buffer is None:
                buffer = _SampleBuffer()
                self._st_buffers[payload_id] = buffer
            self._st_last_id = payload_id
            self._st_last_buf = buffer
        pos = buffer.pos
        values = buffer.values
        if pos >= len(values):
            values = self.service_time.sample_batch(
                self._log.payload_name(payload_id), SERVICE_TIME_BATCH
            ).tolist()
            buffer.values = values
            pos = 0
        buffer.pos = pos + 1
        sim.schedule_call(values[pos], self._finish_cb, row)

    def _finish_row(self, row: int) -> None:
        # the sink stamps ``end`` (with the response leg folded in), so
        # the service does not write the column here
        now = self._sim.now
        log = self._log
        self._busy_seconds += now - log.v_start[row]
        self.completed_rows += 1
        # same invariant as the record path: freed worker goes to the
        # queue head before the completion sink runs.  A saturated run
        # drains a queued row on nearly every completion, so the
        # row-entry case is _start_row inlined (stamp, buffer cursor,
        # completion push) and the worker stays busy — the decrement /
        # re-increment pair cancels out; record entries and the empty
        # queue release the worker before handing off.
        waiting = self._waiting
        if waiting:
            entry = waiting.popleft()
            if type(entry) is int:
                log.v_start[entry] = now
                payload_id = log.v_payload_ids[entry]
                if payload_id == self._st_last_id:
                    buffer = self._st_last_buf
                else:
                    buffer = self._st_buffers.get(payload_id)
                    if buffer is None:
                        buffer = _SampleBuffer()
                        self._st_buffers[payload_id] = buffer
                    self._st_last_id = payload_id
                    self._st_last_buf = buffer
                pos = buffer.pos
                values = buffer.values
                if pos >= len(values):
                    values = self.service_time.sample_batch(
                        log.payload_name(payload_id), SERVICE_TIME_BATCH
                    ).tolist()
                    buffer.values = values
                    pos = 0
                buffer.pos = pos + 1
                _heappush(
                    self._sim_queue,
                    (
                        now + values[pos],
                        next(self._sim_counter),
                        self._finish_cb,
                        entry,
                    ),
                )
            elif type(entry) is list:
                self._busy -= 1
                self._start_batch(entry)
            else:
                self._busy -= 1
                self._start(
                    entry[0], self._sim, entry[1], entry[2], entry[3], entry[4]
                )
        else:
            self._busy -= 1
        self._sink(row, True)

    def set_concurrency(self, target: int, sim: Simulator) -> None:
        """Re-provision the worker pool (autoscaling, §V dynamic capacity).

        Growing the pool immediately starts queued requests on the new
        workers; shrinking only lowers the cap — in-flight requests finish,
        and the pool drains down as they complete.
        """
        if target < 1:
            raise ValueError("concurrency must be >= 1")
        self.concurrency = target
        # drain strictly from the head so FIFO arrival order is preserved
        while self._busy < self.concurrency and self._waiting:
            entry = self._waiting.popleft()
            if type(entry) is int:
                self._start_row(entry)
            elif type(entry) is list:
                self._start_batch(entry)
            else:
                self._start(entry[0], sim, entry[1], entry[2], entry[3], entry[4])

    @property
    def busy_workers(self) -> int:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def peak_queue_length(self) -> int:
        return self._peak_queue

    @property
    def busy_seconds(self) -> float:
        """Cumulative worker-seconds spent serving completed requests."""
        return self._busy_seconds

    def utilization(self, elapsed_seconds: float) -> float:
        """Mean worker utilisation over an observation window.

        ``busy_seconds / (workers × elapsed)``; > 0.8 is the §IX signal
        that a metric needs its own (or a bigger) machine.
        """
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        return self._busy_seconds / (self.concurrency * elapsed_seconds)

    def utilization_event(self, elapsed_seconds: float):
        """The utilisation snapshot as a telemetry event.

        ``value`` is mean worker utilisation over the window; queue depth,
        concurrency and rejection counts ride in ``attrs``, so capacity
        runs land on the same bus → WAL → rollup stream as sensor
        readings and the §IX "needs a bigger machine" signal becomes a
        queryable series instead of a one-off print.
        """
        from repro.telemetry.events import KIND_UTILIZATION, TelemetryEvent

        return TelemetryEvent(
            source=self.name,
            value=self.utilization(elapsed_seconds),
            timestamp=elapsed_seconds,
            kind=KIND_UTILIZATION,
            attrs={
                "busy_workers": float(self._busy),
                "concurrency": float(self.concurrency),
                "queue_length": float(len(self._waiting)),
                "peak_queue_length": float(self._peak_queue),
                "rejected": float(self.rejected),
                "completed": float(len(self.completed) + self.completed_rows),
            },
        )

    def emit_utilization(
        self, telemetry, elapsed_seconds: float, topic: str = "services"
    ) -> None:
        """Publish :meth:`utilization_event` to a pipeline or bus."""
        telemetry.publish(topic, self.utilization_event(elapsed_seconds))
