"""Machines, requests and micro-services for the deployment simulation.

Each micro-service is an M/G/c-style station: ``concurrency`` parallel
workers (defaulting to the host machine's vCPUs — or a large batch width for
the GPU-backed impact service), a bounded FIFO queue, and a payload-aware
service-time model calibrated against our real metric implementations and
the latencies the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gateway.simulation import Simulator


@dataclass(frozen=True)
class Machine:
    """One deployment host from Fig. 8(a)."""

    name: str
    vcpus: int
    ram_gb: int
    gpu: bool = False

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.ram_gb < 1:
            raise ValueError("machines need at least 1 vCPU and 1 GB RAM")


@dataclass
class Request:
    """One client request routed through the gateway."""

    request_id: int
    route: str
    payload: str = "tabular"  # "tabular" | "image"
    created_at: float = 0.0


@dataclass
class RequestRecord:
    """Lifecycle of one request, used by the summary listeners."""

    request: Request
    arrival: float
    start: float = 0.0
    end: float = 0.0
    success: bool = True
    error: str = ""

    @property
    def response_time(self) -> float:
        """Seconds from arrival at the gateway to the response."""
        return self.end - self.arrival

    @property
    def wait_time(self) -> float:
        """Seconds spent queued before a worker picked the request up."""
        return self.start - self.arrival


class ServiceTimeModel:
    """Payload-conditional lognormal service times.

    Parameters
    ----------
    base_seconds:
        Payload kind → median service time in seconds.
    jitter:
        Lognormal sigma (relative spread); 0 gives deterministic times.
    seed:
        RNG seed; every sample is reproducible.
    """

    def __init__(
        self,
        base_seconds: Dict[str, float],
        jitter: float = 0.15,
        seed: int = 0,
    ) -> None:
        if not base_seconds:
            raise ValueError("base_seconds must define at least one payload kind")
        if any(v <= 0 for v in base_seconds.values()):
            raise ValueError("service times must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.base_seconds = dict(base_seconds)
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)

    def sample(self, payload: str) -> float:
        """Draw one service time for a payload kind."""
        if payload not in self.base_seconds:
            raise KeyError(
                f"service does not handle payload {payload!r}; "
                f"supported: {sorted(self.base_seconds)}"
            )
        base = self.base_seconds[payload]
        if self.jitter == 0:
            return base
        return float(base * self._rng.lognormal(0.0, self.jitter))

    def supports(self, payload: str) -> bool:
        return payload in self.base_seconds


CompletionCallback = Callable[[RequestRecord], None]


class MicroService:
    """A metric micro-service: c parallel workers over a bounded FIFO queue.

    Parameters
    ----------
    name:
        Route name (e.g. ``"shap"``).
    machine:
        Host machine; default worker count is its vCPU count.
    service_time:
        Payload-aware :class:`ServiceTimeModel`.
    concurrency:
        Parallel in-flight requests (overrides vCPUs; the GPU impact
        service uses a large batch width here).
    queue_capacity:
        Waiting-room size; arrivals beyond it fail fast with a 503-style
        error, which is what JMeter's error-rate column counts.
    """

    def __init__(
        self,
        name: str,
        machine: Machine,
        service_time: ServiceTimeModel,
        concurrency: Optional[int] = None,
        queue_capacity: int = 1000,
    ) -> None:
        if queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")
        self.name = name
        self.machine = machine
        self.service_time = service_time
        self.concurrency = machine.vcpus if concurrency is None else concurrency
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.queue_capacity = queue_capacity
        self._busy = 0
        self._waiting: List[tuple] = []
        self.completed: List[RequestRecord] = []
        self.rejected: int = 0
        self._peak_queue = 0
        self._busy_seconds = 0.0  # cumulative worker-seconds of service

    def submit(
        self,
        request: Request,
        sim: Simulator,
        on_complete: CompletionCallback,
    ) -> None:
        """Accept (or reject) a request at the current virtual time."""
        record = RequestRecord(request=request, arrival=sim.now)
        if not self.service_time.supports(request.payload):
            record.success = False
            record.error = f"unsupported payload {request.payload!r}"
            record.start = record.end = sim.now
            self.completed.append(record)
            on_complete(record)
            return
        if self._busy < self.concurrency:
            self._start(record, sim, on_complete)
        elif len(self._waiting) < self.queue_capacity:
            self._waiting.append((record, on_complete))
            self._peak_queue = max(self._peak_queue, len(self._waiting))
        else:
            self.rejected += 1
            record.success = False
            record.error = "queue full (503)"
            record.start = record.end = sim.now
            self.completed.append(record)
            on_complete(record)

    def _start(
        self,
        record: RequestRecord,
        sim: Simulator,
        on_complete: CompletionCallback,
    ) -> None:
        self._busy += 1
        record.start = sim.now
        duration = self.service_time.sample(record.request.payload)

        def finish() -> None:
            record.end = sim.now
            self._busy -= 1
            self._busy_seconds += record.end - record.start
            self.completed.append(record)
            # hand the freed worker to the queue head BEFORE notifying the
            # caller: a callback that synchronously resubmits must queue
            # behind earlier arrivals, not grab the worker (and the cap
            # would otherwise be breached when both paths start a request)
            if self._waiting:
                next_record, next_callback = self._waiting.pop(0)
                self._start(next_record, sim, next_callback)
            on_complete(record)

        sim.schedule(duration, finish)

    def set_concurrency(self, target: int, sim: Simulator) -> None:
        """Re-provision the worker pool (autoscaling, §V dynamic capacity).

        Growing the pool immediately starts queued requests on the new
        workers; shrinking only lowers the cap — in-flight requests finish,
        and the pool drains down as they complete.
        """
        if target < 1:
            raise ValueError("concurrency must be >= 1")
        self.concurrency = target
        while self._busy < self.concurrency and self._waiting:
            record, callback = self._waiting.pop(0)
            self._start(record, sim, callback)

    @property
    def busy_workers(self) -> int:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def peak_queue_length(self) -> int:
        return self._peak_queue

    @property
    def busy_seconds(self) -> float:
        """Cumulative worker-seconds spent serving completed requests."""
        return self._busy_seconds

    def utilization(self, elapsed_seconds: float) -> float:
        """Mean worker utilisation over an observation window.

        ``busy_seconds / (workers × elapsed)``; > 0.8 is the §IX signal
        that a metric needs its own (or a bigger) machine.
        """
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        return self._busy_seconds / (self.concurrency * elapsed_seconds)

    def utilization_event(self, elapsed_seconds: float):
        """The utilisation snapshot as a telemetry event.

        ``value`` is mean worker utilisation over the window; queue depth,
        concurrency and rejection counts ride in ``attrs``, so capacity
        runs land on the same bus → WAL → rollup stream as sensor
        readings and the §IX "needs a bigger machine" signal becomes a
        queryable series instead of a one-off print.
        """
        from repro.telemetry.events import KIND_UTILIZATION, TelemetryEvent

        return TelemetryEvent(
            source=self.name,
            value=self.utilization(elapsed_seconds),
            timestamp=elapsed_seconds,
            kind=KIND_UTILIZATION,
            attrs={
                "busy_workers": float(self._busy),
                "concurrency": float(self.concurrency),
                "queue_length": float(len(self._waiting)),
                "peak_queue_length": float(self._peak_queue),
                "rejected": float(self.rejected),
                "completed": float(len(self.completed)),
            },
        )

    def emit_utilization(
        self, telemetry, elapsed_seconds: float, topic: str = "services"
    ) -> None:
        """Publish :meth:`utilization_event` to a pipeline or bus."""
        telemetry.publish(topic, self.utilization_event(elapsed_seconds))
