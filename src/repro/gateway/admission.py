"""Admission control at the gateway (ahead of the rate-limit plugin).

The rate limiter protects services from *sustained* overload by
budgeting arrivals per window; admission control protects them from
*instantaneous* overload by bounding concurrent work.  The wrapper
tracks per-route in-flight requests and sheds new arrivals with the
typed ``503 shed`` error from :mod:`repro.serving.admission` once the
route is saturated — batch-priority traffic sheds at half the depth, so
interactive requests keep headroom (the record-path analogue of the
micro-batcher's batch-victim eviction).

Because the error string carries the ``503 shed`` prefix end to end,
the SLO availability ledger and :func:`repro.slo.attribute_unavailability`
can separate "deliberately shed" from "failed" when a burn-rate alert
fires; a 429 from the limiter or a timeout from a service never gets
misattributed as shedding.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.gateway.services import Request, RequestRecord
from repro.serving.admission import PRIORITY_INTERACTIVE, SHED_ERROR_MESSAGE

__all__ = ["AdmittingGateway"]


class AdmittingGateway:
    """Wrap a gateway (or limiter stack) with per-route load shedding.

    Drop-in for the gateway in load tests: ``dispatch`` forwards while
    the route's in-flight count is under the shed depth, otherwise it
    synthesises an immediate typed-503 record, exactly like the
    limiter's 429 path.  ``priority_of`` maps a request to an admission
    priority (:data:`~repro.serving.admission.PRIORITY_INTERACTIVE` /
    :data:`~repro.serving.admission.PRIORITY_BATCH`); lower outranks
    higher, and anything below interactive sheds at half the depth.
    """

    def __init__(
        self,
        gateway,
        shed_depth: int,
        priority_of: Optional[Callable[[Request], int]] = None,
    ) -> None:
        if shed_depth < 1:
            raise ValueError("shed_depth must be >= 1")
        self.gateway = gateway
        self.shed_depth = shed_depth
        self.priority_of = priority_of
        self.shed = 0
        self.shed_by_route: Dict[str, int] = {}
        self._in_flight: Dict[str, int] = {}
        self._batch_depth = max(1, shed_depth // 2)
        # resolve the base APIGateway through any wrapper stack (e.g. a
        # RateLimitedGateway) — records/tracer live on the base
        base = gateway
        while not hasattr(base, "records"):
            base = base.gateway
        self._base = base

    @property
    def sim(self):
        return self.gateway.sim

    @property
    def routes(self):
        return self.gateway.routes

    @property
    def tracer(self):
        return self._base.tracer

    @property
    def overhead_seconds(self):
        return self._base.overhead_seconds

    def service(self, route: str):
        return self._base.service(route)

    def in_flight(self, route: str) -> int:
        """Current admitted-but-unfinished count for one route."""
        return self._in_flight.get(route, 0)

    def dispatch(
        self,
        request: Request,
        on_response: Callable[[RequestRecord], None],
    ) -> None:
        """Forward under the depth bound; otherwise shed with a typed 503."""
        route = request.route
        in_flight = self._in_flight.get(route, 0)
        priority = (
            PRIORITY_INTERACTIVE
            if self.priority_of is None
            else self.priority_of(request)
        )
        depth = (
            self.shed_depth
            if priority <= PRIORITY_INTERACTIVE
            else self._batch_depth
        )
        if in_flight >= depth:
            self.shed += 1
            self.shed_by_route[route] = self.shed_by_route.get(route, 0) + 1
            now = self._base.sim.now
            record = RequestRecord(
                request=request,
                arrival=now,
                start=now,
                end=now,
                success=False,
                error=SHED_ERROR_MESSAGE,
            )
            span = self._base.tracer.start_span(
                "gateway.request", start_time=now
            )
            if span.is_recording:
                span.set_attribute("route", route)
                span.set_attribute("admission", "shed")
                record.trace = span.context
            span.record_error(record.error).end(at=now)
            self._base.records.append(record)
            self._base.sim.schedule(0.0, lambda: on_response(record))
            return
        self._in_flight[route] = in_flight + 1

        def settle(record: RequestRecord) -> None:
            self._in_flight[route] -= 1
            on_response(record)

        self.gateway.dispatch(request, settle)
