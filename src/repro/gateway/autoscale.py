"""Autoscaling micro-service capacity (§V's dynamic-capacity motivation).

"Another reason to rely on micro-service patterns is to augment dynamically
the capacity of each individual metric to handle the workload."  This
module adds that behaviour to the simulated deployment: a periodic
controller that watches each service's queue and scales its worker count
(container replicas on the same host) between bounds, with the scaling
events recorded so benches can plot capacity-vs-time next to latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.gateway.services import MicroService
from repro.gateway.simulation import Simulator


@dataclass
class ScalingEvent:
    """One autoscaler decision."""

    time: float
    service: str
    from_workers: int
    to_workers: int
    queue_length: int


@dataclass
class AutoscalerPolicy:
    """Queue-length-based scaling thresholds.

    Scale *up* by one worker when queued requests per current worker exceed
    ``scale_up_ratio``; scale *down* when the queue is empty and more than
    ``min_workers`` are provisioned.
    """

    min_workers: int = 1
    max_workers: int = 32
    scale_up_ratio: float = 2.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if self.scale_up_ratio <= 0:
            raise ValueError("scale_up_ratio must be positive")


class Autoscaler:
    """Periodic queue-watching controller over one or more services.

    Parameters
    ----------
    sim:
        The deployment's simulator; the controller schedules itself on it.
    interval_seconds:
        Control-loop period.
    policy:
        Shared :class:`AutoscalerPolicy` (per-service policies via
        ``policies``).
    """

    def __init__(
        self,
        sim: Simulator,
        interval_seconds: float = 1.0,
        policy: AutoscalerPolicy = None,
        policies: Dict[str, AutoscalerPolicy] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval_seconds = interval_seconds
        self.default_policy = policy or AutoscalerPolicy()
        self.policies = dict(policies or {})
        self._services: List[MicroService] = []
        self.events: List[ScalingEvent] = []
        self._running = False

    def watch(self, service: MicroService) -> None:
        """Put a service under autoscaler control."""
        self._services.append(service)

    def start(self, horizon_seconds: float) -> None:
        """Schedule control ticks up to a horizon (self-rescheduling)."""
        if self._running:
            raise RuntimeError("autoscaler already started")
        self._running = True
        self._horizon = horizon_seconds

        def tick() -> None:
            self._control_step()
            if self.sim.now + self.interval_seconds <= self._horizon:
                self.sim.schedule(self.interval_seconds, tick)

        self.sim.schedule(self.interval_seconds, tick)

    def _policy_for(self, service: MicroService) -> AutoscalerPolicy:
        return self.policies.get(service.name, self.default_policy)

    def _control_step(self) -> None:
        for service in self._services:
            policy = self._policy_for(service)
            queue = service.queue_length
            workers = service.concurrency
            target = workers
            if queue > policy.scale_up_ratio * workers:
                target = min(workers + 1, policy.max_workers)
            elif queue == 0 and service.busy_workers < workers:
                target = max(workers - 1, policy.min_workers)
            if target != workers:
                self.events.append(
                    ScalingEvent(
                        time=self.sim.now,
                        service=service.name,
                        from_workers=workers,
                        to_workers=target,
                        queue_length=queue,
                    )
                )
                service.set_concurrency(target, self.sim)

    def scale_history(self, service_name: str) -> List[ScalingEvent]:
        return [e for e in self.events if e.service == service_name]
