"""Deployment substrate: micro-services, API gateway and load generation.

The paper deploys SPATIAL's metric micro-services behind a Kong API gateway
on six machines and stresses them with JMeter (§VI-B).  That testbed is not
available offline, so this package provides a discrete-event simulation of
the same deployment: machines with vCPU counts, micro-services with
calibrated service-time models, a gateway with routing overhead, and a
closed-loop thread-group load generator producing the same summary metrics
JMeter reports (average response time, throughput, error rate).

For production-scale runs the package also provides a columnar pipeline
(:class:`~repro.gateway.records.RecordLog`,
:class:`~repro.gateway.capacity.CapacityRunner`): requests become row
indices in struct-of-arrays numpy columns, statistics stream through
quantile sketches and seeded reservoirs instead of retained samples, and
open-loop Poisson arrival groups express workloads closed-loop threads
cannot — millions of requests in seconds of wall-clock and bounded memory
(DESIGN.md §11).
"""

from repro.gateway.simulation import Simulator
from repro.gateway.services import (
    Machine,
    MicroService,
    Request,
    RequestRecord,
    ServiceTimeModel,
)
from repro.gateway.gateway import APIGateway
from repro.gateway.admission import AdmittingGateway
from repro.gateway.autoscale import Autoscaler, AutoscalerPolicy, ScalingEvent
from repro.gateway.ratelimit import RateLimitRule, RateLimitedGateway
from repro.gateway.cluster import (
    PAPER_SERVICES,
    PAPER_STAGE_PROFILES,
    build_paper_deployment,
)
from repro.gateway.loadgen import (
    LoadGenerator,
    SummaryReport,
    ThreadGroup,
    run_load_test,
)
from repro.gateway.records import RecordLog
from repro.gateway.sketches import (
    ExemplarSlots,
    QuantileSketch,
    ReservoirSample,
    RouteStats,
    StreamingMoments,
)
from repro.gateway.arrivals import PoissonArrivalGroup, arrival_chunks
from repro.gateway.capacity import CapacityRunner, summary_from_log

__all__ = [
    "APIGateway",
    "AdmittingGateway",
    "Autoscaler",
    "AutoscalerPolicy",
    "CapacityRunner",
    "ExemplarSlots",
    "LoadGenerator",
    "Machine",
    "MicroService",
    "PAPER_SERVICES",
    "PAPER_STAGE_PROFILES",
    "PoissonArrivalGroup",
    "QuantileSketch",
    "RateLimitRule",
    "RateLimitedGateway",
    "RecordLog",
    "Request",
    "RequestRecord",
    "ReservoirSample",
    "RouteStats",
    "ScalingEvent",
    "ServiceTimeModel",
    "Simulator",
    "StreamingMoments",
    "SummaryReport",
    "ThreadGroup",
    "arrival_chunks",
    "build_paper_deployment",
    "run_load_test",
    "summary_from_log",
]
