"""Deployment substrate: micro-services, API gateway and load generation.

The paper deploys SPATIAL's metric micro-services behind a Kong API gateway
on six machines and stresses them with JMeter (§VI-B).  That testbed is not
available offline, so this package provides a discrete-event simulation of
the same deployment: machines with vCPU counts, micro-services with
calibrated service-time models, a gateway with routing overhead, and a
closed-loop thread-group load generator producing the same summary metrics
JMeter reports (average response time, throughput, error rate).
"""

from repro.gateway.simulation import Simulator
from repro.gateway.services import (
    Machine,
    MicroService,
    Request,
    RequestRecord,
    ServiceTimeModel,
)
from repro.gateway.gateway import APIGateway
from repro.gateway.autoscale import Autoscaler, AutoscalerPolicy, ScalingEvent
from repro.gateway.ratelimit import RateLimitRule, RateLimitedGateway
from repro.gateway.cluster import (
    PAPER_SERVICES,
    PAPER_STAGE_PROFILES,
    build_paper_deployment,
)
from repro.gateway.loadgen import (
    LoadGenerator,
    SummaryReport,
    ThreadGroup,
    run_load_test,
)

__all__ = [
    "APIGateway",
    "Autoscaler",
    "AutoscalerPolicy",
    "LoadGenerator",
    "Machine",
    "MicroService",
    "PAPER_SERVICES",
    "PAPER_STAGE_PROFILES",
    "RateLimitRule",
    "RateLimitedGateway",
    "Request",
    "RequestRecord",
    "ScalingEvent",
    "ServiceTimeModel",
    "Simulator",
    "SummaryReport",
    "ThreadGroup",
    "build_paper_deployment",
    "run_load_test",
]
