"""Minimal discrete-event simulation engine.

A binary-heap event queue with a monotonically advancing clock.  Everything
in the capacity-load experiments (request arrivals, service completions,
thread-group pacing) is expressed as scheduled callbacks on one
:class:`Simulator`, which keeps the whole deployment deterministic and
reproducible under a fixed seed.

The event loop is a capacity hot path: million-request runs process several
million events, so entries are flat 4-tuples ``(time, seq, callback, arg)``
and the loop body avoids attribute lookups.  :meth:`Simulator.schedule_call`
threads a single argument (typically a :class:`~repro.gateway.records.RecordLog`
row index) to the callback, which lets producers schedule *bound methods*
instead of allocating a fresh closure per request.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

#: Sentinel distinguishing "no argument" from a legitimate ``None`` arg.
_NO_ARG = object()


class Simulator:
    """Event-driven simulator with a seconds-denominated virtual clock."""

    def __init__(self) -> None:
        self._queue = []
        self._counter = itertools.count()  # FIFO tie-break for equal times
        self.now = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue,
            (self.now + delay, next(self._counter), callback, _NO_ARG),
        )

    def schedule_call(self, delay: float, callback, arg) -> None:
        """Like :meth:`schedule`, but deliver one argument to the callback.

        The allocation-free alternative to ``schedule(d, lambda: f(x))``:
        the caller passes a long-lived bound method plus the argument (a
        record-log row index on the capacity hot path), so no closure is
        created per event.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), callback, arg)
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at an absolute virtual time (>= now)."""
        self.schedule(time - self.now, callback)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events in time order until the queue drains.

        ``until`` stops the clock at a horizon (remaining events stay
        queued); ``max_events`` guards against runaway schedules.  Returns
        the final virtual time.

        The drain-to-empty loop (the common capacity case) pops without
        peeking and counts in a local, so each event costs one heappop,
        one clock store and one dispatch; the horizon variant keeps the
        peek because an event past ``until`` must stay queued.
        """
        queue = self._queue  # the bound list; callbacks push onto the same
        pop = heapq.heappop
        no_arg = _NO_ARG
        processed = self._processed
        try:
            if until is None:
                while queue:
                    if processed >= max_events:
                        raise RuntimeError(f"exceeded max_events={max_events}")
                    # drain in guard-free chunks bounded by the remaining
                    # event budget (so the backstop stays exact) and the
                    # queue length at chunk start (callbacks only push, so
                    # the chunk can never pop an empty queue)
                    for __ in range(
                        min(16384, max_events - processed, len(queue))
                    ):
                        # one specialized tuple unpack beats three
                        # subscripts
                        time, _seq, callback, arg = pop(queue)
                        processed += 1
                        self.now = time
                        if arg is no_arg:
                            callback()
                        else:
                            callback(arg)
            else:
                while queue:
                    if processed >= max_events:
                        raise RuntimeError(f"exceeded max_events={max_events}")
                    entry = queue[0]
                    if entry[0] > until:
                        self.now = until
                        return self.now
                    pop(queue)
                    processed += 1
                    self.now = entry[0]
                    if entry[3] is no_arg:
                        entry[2]()
                    else:
                        entry[2](entry[3])
        finally:
            self._processed = processed
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._processed
