"""Minimal discrete-event simulation engine.

A binary-heap event queue with a monotonically advancing clock.  Everything
in the capacity-load experiments (request arrivals, service completions,
thread-group pacing) is expressed as scheduled callbacks on one
:class:`Simulator`, which keeps the whole deployment deterministic and
reproducible under a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Simulator:
    """Event-driven simulator with a seconds-denominated virtual clock."""

    def __init__(self) -> None:
        self._queue = []
        self._counter = itertools.count()  # FIFO tie-break for equal times
        self.now = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), callback)
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at an absolute virtual time (>= now)."""
        self.schedule(time - self.now, callback)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events in time order until the queue drains.

        ``until`` stops the clock at a horizon (remaining events stay
        queued); ``max_events`` guards against runaway schedules.  Returns
        the final virtual time.
        """
        while self._queue:
            if self._processed >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")
            time, __, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            self._processed += 1
            callback()
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._processed
