"""Streaming statistics for capacity runs: no raw-sample retention.

The seed :meth:`SummaryReport.from_records` needs every response time in
memory to take percentiles — O(requests) space, which is exactly what a
million-request run cannot afford.  This module provides the streaming
replacements the columnar pipeline aggregates with:

* :class:`QuantileSketch` — a DDSketch-style log-binned quantile sketch
  with a *relative* accuracy guarantee: every reported quantile is within
  ``relative_accuracy`` (default 0.5%) of the exact sample quantile, in
  O(log(max/min)) memory, and two sketches merge losslessly (per-route
  sketches sum into the run-level one).
* :class:`StreamingMoments` — Welford's online mean/variance with the
  parallel combine rule for merging.
* :class:`ReservoirSample` — Algorithm R over fixed slots (seeded,
  allocation-free on rejection) for the Fig. 8 timeline and the
  response-times-over-active-threads series.
* :class:`ExemplarSlots` — keeps the k slowest *traced* responses so a
  bounded number of latency exemplars still link back to recorded traces.
* :class:`RouteStats` — one route's bundle of the above with the same
  error semantics as the record-based report (errors count toward the
  request/error totals but contribute no latency samples).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ExemplarSlots",
    "QuantileSketch",
    "ReservoirSample",
    "RouteStats",
    "StreamingMoments",
]

# module-level names for RouteStats.observe: a global load is cheaper
# than re-resolving math.<attr> once per simulated request
_ceil = math.ceil
_log = math.log


class QuantileSketch:
    """Mergeable log-binned quantile sketch (DDSketch collapsing-free core).

    Positive values map to bin ``ceil(log_gamma(v))`` with
    ``gamma = (1 + a) / (1 - a)`` for relative accuracy ``a``; the bin's
    representative value ``2·gamma^i / (gamma + 1)`` (the geometric bin
    midpoint) is then within ``a`` of every value in the bin.  Memory is
    one counter per *occupied* bin — for latencies spanning 1 µs..1 h at
    0.5% accuracy that is at most ~2200 bins, independent of how many
    samples stream through.  Zero / negative values (instant rejects)
    are tracked in a dedicated zero bin.
    """

    __slots__ = ("relative_accuracy", "min", "max", "_gamma",
                 "_inv_log_gamma", "_bins", "_zeros")

    def __init__(self, relative_accuracy: float = 0.005) -> None:
        if not 0 < relative_accuracy < 1:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1 + relative_accuracy) / (1 - relative_accuracy)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        self._bins: Dict[int, int] = {}
        self._zeros = 0
        self.min = math.inf
        self.max = -math.inf

    @property
    def count(self) -> int:
        """Inserted values — derived from the bins, not a per-insert bump.

        Every insert lands in exactly one bin (or the zero bin), so the
        count is recoverable in O(occupied bins) at read time and the
        per-event path saves an increment.
        """
        return self._zeros + sum(self._bins.values())

    def insert(self, value: float) -> None:
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._zeros += 1
            return
        index = math.ceil(math.log(value) * self._inv_log_gamma)
        bins = self._bins
        bins[index] = bins.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1); exact at the extremes."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        count = self.count
        if count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * (count - 1)
        if rank < self._zeros:
            return min(0.0, self.max)
        seen = self._zeros
        gamma = self._gamma
        for index in sorted(self._bins):
            seen += self._bins[index]
            if seen > rank:
                value = 2.0 * gamma**index / (gamma + 1.0)
                # clamp into the observed range: the guarantee is relative
                # to bin contents, and min/max are tracked exactly
                return min(max(value, self.min), self.max)
        return self.max

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (must share the accuracy parameter)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError("cannot merge sketches with different accuracy")
        bins = self._bins
        for index, n in other._bins.items():
            bins[index] = bins.get(index, 0) + n
        self._zeros += other._zeros
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    @property
    def bin_count(self) -> int:
        """Occupied bins — the sketch's actual memory footprint."""
        return len(self._bins) + (1 if self._zeros else 0)


class StreamingMoments:
    """Welford online mean/variance; merges via the parallel combine rule."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "StreamingMoments") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total


class ReservoirSample:
    """Seeded reservoir over ``k`` preallocated slots (Algorithm L).

    Li's Algorithm L draws the *gap* to the next accepted item from a
    geometric distribution instead of rolling a die per item, so only
    ``O(k · log(seen / k))`` RNG draws happen over a whole stream; at
    steady state :meth:`offer` is a counter bump and one equality check
    — no allocation, no RNG, no append.
    """

    __slots__ = ("k", "seen", "_slots", "_random", "_w", "_next")

    def __init__(self, k: int, seed: int = 0) -> None:
        if k < 1:
            raise ValueError("reservoir needs at least one slot")
        self.k = k
        self.seen = 0
        self._slots: List[Optional[Tuple[float, float, float]]] = [None] * k
        self._random = random.Random(seed).random
        self._w = 1.0
        self._next = 0  # index (1-based seen count) of the next accept

    def _skip(self) -> None:
        """Draw the geometric gap to the next accepted stream index."""
        rand = self._random
        # 1 - random() lies in (0, 1]: log never sees zero
        self._w *= math.exp(math.log(1.0 - rand()) / self.k)
        self._next += (
            int(math.log(1.0 - rand()) / math.log(1.0 - self._w)) + 1
        )

    def offer(self, a: float, b: float, c: float) -> None:
        self.seen += 1
        n = self.seen
        if n > self.k:
            if n == self._next:
                self._slots[int(self._random() * self.k)] = (a, b, c)
                self._skip()
        else:
            self._slots[n - 1] = (a, b, c)
            if n == self.k:
                self._next = n
                self._skip()

    def items(self) -> List[Tuple[float, float, float]]:
        filled = min(self.seen, self.k)
        return [item for item in self._slots[:filled] if item is not None]


class ExemplarSlots:
    """Bounded top-k by slowness: latency exemplars that carry a trace link.

    Only *traced* responses are offered (one in ``trace_every``), so the
    O(k) replacement scan runs at the sampling rate, not the request rate.
    """

    __slots__ = ("k", "_slots", "_filled", "offered")

    def __init__(self, k: int = 8) -> None:
        if k < 1:
            raise ValueError("need at least one exemplar slot")
        self.k = k
        self._slots: List[Optional[tuple]] = [None] * k
        self._filled = 0
        self.offered = 0

    def offer(self, ms, end, route, trace) -> None:
        """Keep the entry if it is among the k slowest seen so far."""
        self.offered += 1
        if self._filled < self.k:
            self._slots[self._filled] = (ms, end, route, trace)
            self._filled += 1
            return
        low, low_ms = 0, self._slots[0][0]
        for i in range(1, self.k):
            if self._slots[i][0] < low_ms:
                low, low_ms = i, self._slots[i][0]
        if ms > low_ms:
            self._slots[low] = (ms, end, route, trace)

    def items(self) -> List[tuple]:
        """Kept exemplars, slowest first."""
        kept = [item for item in self._slots[: self._filled]]
        kept.sort(key=lambda item: item[0], reverse=True)
        return kept


class RouteStats:
    """Streaming aggregate for one route: counts, sketch, moments, series.

    Matches the record-based report's error semantics: failed requests
    increment ``n_errors`` (and ``n_requests``) but contribute no latency
    sample and no timeline point.
    """

    __slots__ = ("route", "n_errors", "latency", "moments",
                 "series", "exemplars")

    def __init__(
        self,
        route: str,
        seed: int = 0,
        relative_accuracy: float = 0.005,
        series_slots: int = 512,
        exemplar_slots: int = 8,
    ) -> None:
        self.route = route
        self.n_errors = 0
        self.latency = QuantileSketch(relative_accuracy)
        self.moments = StreamingMoments()
        #: reservoir of (end virtual time, response ms, active at send)
        self.series = ReservoirSample(series_slots, seed=seed)
        self.exemplars = ExemplarSlots(exemplar_slots)

    @property
    def n_requests(self) -> int:
        """Observed completions: every success lands in the sketch."""
        return self.latency.count + self.n_errors

    def observe(self, end: float, ms: float, ok: bool, active: int) -> None:
        """Fold one completion in.

        This runs once per simulated request on the capacity hot path,
        so the sketch insert and the Welford update are inlined rather
        than dispatched through :meth:`QuantileSketch.insert` /
        :meth:`StreamingMoments.add` — same arithmetic, two fewer
        function calls per event (the component methods stay the
        reference implementations and the tests hold them equal).
        """
        if not ok:
            self.n_errors += 1
            return
        latency = self.latency
        if ms < latency.min:
            latency.min = ms
        if ms > latency.max:
            latency.max = ms
        if ms > 0.0:
            index = _ceil(_log(ms) * latency._inv_log_gamma)
            bins = latency._bins
            bins[index] = bins.get(index, 0) + 1
        else:
            latency._zeros += 1
        moments = self.moments
        count = moments.count + 1
        moments.count = count
        delta = ms - moments.mean
        mean = moments.mean + delta / count
        moments.mean = mean
        moments._m2 += delta * (ms - mean)
        # reservoir steady state (seen past k, not at an accept index) is
        # the overwhelmingly common case — bump the counter without even
        # paying the offer() call
        series = self.series
        seen = series.seen + 1
        if seen > series.k and seen != series._next:
            series.seen = seen
        else:
            series.offer(end, ms, active)

    def timeline(self) -> List[Tuple[float, float]]:
        """Sampled (end time, response ms) pairs, time-sorted."""
        return sorted((end, ms) for end, ms, _active in self.series.items())

    def active_series(self) -> List[Tuple[int, float]]:
        """Sampled (active at send, response ms) pairs, completion order."""
        return [(int(active), ms) for _end, ms, active in self.series.items()]
