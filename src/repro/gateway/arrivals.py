"""Open-loop (Poisson) arrival processes for capacity runs.

Closed-loop thread groups (JMeter's model) cap the offered load at the
thread count: each virtual user waits for its response before sending
again, so "millions of independent users" cannot be expressed no matter
how many requests the simulator could absorb.  A
:class:`PoissonArrivalGroup` instead offers requests at a fixed rate
regardless of completions — the M/G/c open-loop workload capacity
planning actually asks about.

Inter-arrival gaps are exponential draws taken in vectorized chunks
(one ``rng.exponential`` + running-offset cumsum per chunk, with the
offset carried across chunks so the draws — and hence the workload —
match a single whole-run cumsum), so the per-arrival cost in the event
loop is one heap push.  Chunking
keeps the event heap bounded: only one chunk of future arrivals is
loaded at a time, with the next chunk bulk-loaded when the last arrival
of the current one fires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PoissonArrivalGroup", "arrival_chunks"]


@dataclass(frozen=True)
class PoissonArrivalGroup:
    """An open-loop workload: ``n_requests`` Poisson arrivals at ``rate_rps``.

    The open-loop sibling of :class:`~repro.gateway.loadgen.ThreadGroup`:
    same route/payload targeting, but load is defined by an arrival *rate*
    instead of a closed-loop user count.  ``start_at`` offsets the first
    arrival (virtual seconds), e.g. to stagger route mixes.
    """

    route: str
    rate_rps: float
    n_requests: int
    payload: str = "tabular"
    start_at: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.start_at < 0:
            raise ValueError("start_at must be non-negative")


def arrival_chunks(
    group: PoissonArrivalGroup,
    rng: np.random.Generator,
    chunk_size: int = 8192,
):
    """Yield absolute arrival times for ``group`` in bounded numpy chunks.

    The generator carries the running time offset between chunks, so the
    concatenation of all yielded arrays equals one whole-run
    ``start_at + cumsum(exponential(1/rate, n))`` up to float summation
    order (numpy's cumsum uses pairwise partial sums, so chunk
    boundaries round differently at the 1e-14 level) — the underlying
    exponential draws are identical, and a fixed (seed, chunk size) pair
    is fully deterministic.  Chunking is purely a memory/heap-bounding
    device and never changes the workload.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    offset = group.start_at
    remaining = group.n_requests
    scale = 1.0 / group.rate_rps
    while remaining > 0:
        n = chunk_size if remaining > chunk_size else remaining
        times = offset + np.cumsum(rng.exponential(scale, size=n))
        offset = float(times[-1])
        remaining -= n
        yield times
