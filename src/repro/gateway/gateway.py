"""API gateway (the Kong stand-in).

"The API Gateway manages the communication flow, ensuring that each
micro-service receives the necessary input, processes it, and returns the
appropriate response" (§V).  The simulated gateway adds a small per-request
routing overhead on both legs, keeps a route table, and rejects unknown
routes — the behaviours that shape the latency measurements.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.gateway.services import (
    MicroService,
    Request,
    RequestRecord,
)
from repro.gateway.simulation import Simulator


class APIGateway:
    """Route table + dispatch with per-leg routing overhead.

    Parameters
    ----------
    sim:
        The simulator everything is scheduled on.
    overhead_seconds:
        One-way gateway processing cost (proxying, auth, header rewrite);
        applied once on the request leg and once on the response leg.
    """

    def __init__(self, sim: Simulator, overhead_seconds: float = 0.002) -> None:
        if overhead_seconds < 0:
            raise ValueError("overhead must be non-negative")
        self.sim = sim
        self.overhead_seconds = overhead_seconds
        self._routes: Dict[str, MicroService] = {}
        self.records: List[RequestRecord] = []

    def register(self, service: MicroService) -> None:
        """Expose a micro-service under its name as a route."""
        if service.name in self._routes:
            raise ValueError(f"route {service.name!r} already registered")
        self._routes[service.name] = service

    def unregister(self, route: str) -> None:
        """Retire a route (micro-service replaced — §V's metric evolution)."""
        if route not in self._routes:
            raise KeyError(f"unknown route {route!r}")
        del self._routes[route]

    @property
    def routes(self) -> List[str]:
        return sorted(self._routes)

    def dispatch(
        self,
        request: Request,
        on_response: Callable[[RequestRecord], None],
    ) -> None:
        """Route a request: gateway leg → service → gateway response leg.

        The caller's ``on_response`` fires at the virtual time the client
        receives the response; the record's ``arrival`` is the time the
        request hit the gateway, so ``response_time`` includes both gateway
        legs plus queueing and service time.
        """
        arrived = self.sim.now
        request.created_at = arrived
        if request.route not in self._routes:
            record = RequestRecord(
                request=request,
                arrival=arrived,
                start=arrived,
                end=arrived,
                success=False,
                error=f"404 unknown route {request.route!r}",
            )
            self.records.append(record)
            self.sim.schedule(self.overhead_seconds, lambda: on_response(record))
            return
        service = self._routes[request.route]

        def service_done(record: RequestRecord) -> None:
            # response leg back through the gateway
            def deliver() -> None:
                record.arrival = arrived  # account both gateway legs
                record.end = self.sim.now
                self.records.append(record)
                on_response(record)

            self.sim.schedule(self.overhead_seconds, deliver)

        self.sim.schedule(
            self.overhead_seconds,
            lambda: service.submit(request, self.sim, service_done),
        )
