"""API gateway (the Kong stand-in).

"The API Gateway manages the communication flow, ensuring that each
micro-service receives the necessary input, processes it, and returns the
appropriate response" (§V).  The simulated gateway adds a small per-request
routing overhead on both legs, keeps a route table, and rejects unknown
routes — the behaviours that shape the latency measurements.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.gateway.services import (
    MicroService,
    Request,
    RequestRecord,
)
from repro.gateway.simulation import Simulator
from repro.tracing import NULL_SPAN, NULL_TRACER


class APIGateway:
    """Route table + dispatch with per-leg routing overhead.

    Parameters
    ----------
    sim:
        The simulator everything is scheduled on.
    overhead_seconds:
        One-way gateway processing cost (proxying, auth, header rewrite);
        applied once on the request leg and once on the response leg.
    tracer:
        Span factory (defaults to the no-op
        :data:`~repro.tracing.tracer.NULL_TRACER`).  With a recording
        tracer every dispatch roots one ``gateway.request`` trace whose
        children cover the routing legs, service queueing/processing and
        any pipeline stages — the waterfall ``python -m repro trace``
        renders.
    """

    def __init__(
        self,
        sim: Simulator,
        overhead_seconds: float = 0.002,
        tracer=NULL_TRACER,
    ) -> None:
        if overhead_seconds < 0:
            raise ValueError("overhead must be non-negative")
        self.sim = sim
        self.overhead_seconds = overhead_seconds
        self.tracer = tracer
        self._routes: Dict[str, MicroService] = {}
        self.records: List[RequestRecord] = []

    def register(self, service: MicroService) -> None:
        """Expose a micro-service under its name as a route."""
        if service.name in self._routes:
            raise ValueError(f"route {service.name!r} already registered")
        self._routes[service.name] = service

    def unregister(self, route: str) -> None:
        """Retire a route (micro-service replaced — §V's metric evolution)."""
        if route not in self._routes:
            raise KeyError(f"unknown route {route!r}")
        del self._routes[route]

    @property
    def routes(self) -> List[str]:
        return sorted(self._routes)

    def service(self, route: str) -> MicroService:
        """The micro-service behind a route (e.g. to wire a trace probe)."""
        if route not in self._routes:
            raise KeyError(f"unknown route {route!r}")
        return self._routes[route]

    def dispatch(
        self,
        request: Request,
        on_response: Callable[[RequestRecord], None],
    ) -> None:
        """Route a request: gateway leg → service → gateway response leg.

        The caller's ``on_response`` fires at the virtual time the client
        receives the response; the record's ``arrival`` is the time the
        request hit the gateway, so ``response_time`` includes both gateway
        legs plus queueing and service time.
        """
        arrived = self.sim.now
        request.created_at = arrived
        tracer = self.tracer
        # branch once: the untraced hot path must not even pay for no-op
        # span calls (the bench holds it within 5% of uninstrumented code)
        recording = tracer.is_recording
        root = NULL_SPAN
        if recording:
            root = tracer.start_span("gateway.request", start_time=arrived)
            root.set_attribute("route", request.route)
            root.set_attribute("request_id", float(request.request_id))
        if request.route not in self._routes:
            error = f"404 unknown route {request.route!r}"
            record = RequestRecord(
                request=request,
                arrival=arrived,
                start=arrived,
                end=arrived,
                success=False,
                error=error,
            )
            route_span = (
                tracer.start_span(
                    "gateway.route", parent=root, start_time=arrived
                )
                if recording
                else NULL_SPAN
            )
            self.records.append(record)

            def reject() -> None:
                if recording:
                    route_span.record_error(error).end(at=self.sim.now)
                    record.trace = root.context
                    root.record_error(error).end(at=self.sim.now)
                on_response(record)

            self.sim.schedule(self.overhead_seconds, reject)
            return
        service = self._routes[request.route]
        route_span = (
            tracer.start_span("gateway.route", parent=root, start_time=arrived)
            if recording
            else NULL_SPAN
        )

        def submit() -> None:
            if recording:
                route_span.end(at=self.sim.now)
            service.submit(request, self.sim, service_done, tracer, root)

        def service_done(record: RequestRecord) -> None:
            # response leg back through the gateway
            respond_span = (
                tracer.start_span(
                    "gateway.respond", parent=root, start_time=self.sim.now
                )
                if recording
                else NULL_SPAN
            )

            def deliver() -> None:
                record.arrival = arrived  # account both gateway legs
                record.end = self.sim.now
                if recording:
                    respond_span.end(at=record.end)
                    record.trace = root.context
                    if not record.success:
                        root.record_error(record.error)
                    root.end(at=record.end)
                self.records.append(record)
                on_response(record)

            self.sim.schedule(self.overhead_seconds, deliver)

        self.sim.schedule(self.overhead_seconds, submit)
