"""JMeter-equivalent load generation and reporting.

Models JMeter's *ultimate thread group*: N closed-loop virtual users started
over a ramp-up period, each repeatedly issuing a request and waiting for the
response (plus optional think time).  The :class:`SummaryReport` reproduces
the Summary Report / Response-Times-Over-Active-Threads listeners the paper
uses: average response time, percentiles, throughput and error rate, plus a
binned response-time-over-virtual-time series for the Fig. 8 curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gateway.gateway import APIGateway
from repro.gateway.services import Request, RequestRecord
from repro.gateway.simulation import Simulator
from repro.telemetry.events import (
    KIND_LOAD_SUMMARY,
    KIND_RESPONSE,
    TelemetryEvent,
)


@dataclass
class ThreadGroup:
    """A JMeter thread group: closed-loop virtual users against one route."""

    route: str
    n_threads: int
    rampup_seconds: float = 1.0
    iterations: int = 1
    payload: str = "tabular"
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.rampup_seconds < 0 or self.think_time < 0:
            raise ValueError("timings must be non-negative")


@dataclass
class SummaryReport:
    """JMeter-style aggregate listener output for one load test."""

    n_requests: int
    n_errors: int
    avg_response_ms: float
    median_response_ms: float
    p95_response_ms: float
    max_response_ms: float
    throughput_rps: float
    duration_seconds: float
    p99_response_ms: float = 0.0
    per_route: Dict[str, "SummaryReport"] = field(default_factory=dict)
    #: (virtual time of response, response ms) pairs, response order
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        return self.n_errors / self.n_requests if self.n_requests else 0.0

    @staticmethod
    def from_records(
        records: List[RequestRecord], duration: float
    ) -> "SummaryReport":
        """Build the aggregate (and per-route breakdown) from raw records.

        One grouping pass over the records; the per-route breakdown is
        built from the grouped lists instead of re-filtering the full
        list once per route (the seed behaviour, O(routes × records)).
        """
        if not records:
            return SummaryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, duration)
        groups: Dict[str, List[RequestRecord]] = {}
        for record in records:
            bucket = groups.get(record.request.route)
            if bucket is None:
                groups[record.request.route] = bucket = []
            bucket.append(record)
        report = SummaryReport._aggregate(records, duration)
        if len(groups) > 1:
            for route in sorted(groups):
                report.per_route[route] = SummaryReport._aggregate(
                    groups[route], duration
                )
        return report

    @staticmethod
    def _aggregate(
        records: List[RequestRecord], duration: float
    ) -> "SummaryReport":
        """Summary of one already-grouped record list (no route recursion)."""
        ok = [r for r in records if r.success]
        if ok:
            times_ms = np.array([r.response_time * 1000.0 for r in ok])
            avg = float(times_ms.mean())
            median = float(np.median(times_ms))
            p95 = float(np.percentile(times_ms, 95))
            p99 = float(np.percentile(times_ms, 99))
            peak = float(times_ms.max())
            timeline = sorted((r.end, r.response_time * 1000.0) for r in ok)
        else:
            # every record failed: there is no latency sample to summarise —
            # report zeros with n_errors == n_requests rather than the
            # statistics of a fabricated [0.0] sample
            avg = median = p95 = p99 = peak = 0.0
            timeline = []
        return SummaryReport(
            n_requests=len(records),
            n_errors=len(records) - len(ok),
            avg_response_ms=avg,
            median_response_ms=median,
            p95_response_ms=p95,
            max_response_ms=peak,
            throughput_rps=len(ok) / duration if duration > 0 else 0.0,
            duration_seconds=duration,
            p99_response_ms=p99,
            timeline=timeline,
        )

    def to_events(
        self, source: str = "loadtest", timestamp: Optional[float] = None
    ) -> List[TelemetryEvent]:
        """The report as telemetry: one summary event per (sub)route.

        Capacity experiments thereby feed the same stream as the sensor
        monitors — a Fig. 8 run can be WAL-persisted, rolled up and
        queried exactly like trust readings.  ``value`` is the average
        response time in milliseconds; percentiles, throughput and the
        error rate ride in ``attrs``.
        """
        at = self.duration_seconds if timestamp is None else timestamp
        events = [
            TelemetryEvent(
                source=source,
                value=self.avg_response_ms,
                timestamp=at,
                kind=KIND_LOAD_SUMMARY,
                attrs={
                    "n_requests": float(self.n_requests),
                    "n_errors": float(self.n_errors),
                    "median_response_ms": self.median_response_ms,
                    "p95_response_ms": self.p95_response_ms,
                    "p99_response_ms": self.p99_response_ms,
                    "max_response_ms": self.max_response_ms,
                    "throughput_rps": self.throughput_rps,
                    "error_rate": self.error_rate,
                    "duration_seconds": self.duration_seconds,
                },
            )
        ]
        for route, report in self.per_route.items():
            events.extend(
                report.to_events(source=f"{source}.{route}", timestamp=at)
            )
        return events

    def render_text(self) -> str:
        """One-line summary in the JMeter Summary Report layout."""
        return (
            f"samples={self.n_requests} avg={self.avg_response_ms:.1f}ms "
            f"med={self.median_response_ms:.1f}ms p95={self.p95_response_ms:.1f}ms "
            f"max={self.max_response_ms:.1f}ms tput={self.throughput_rps:.2f}/s "
            f"err={100 * self.error_rate:.1f}%"
        )


class _RecordUser:
    """One closed-loop virtual user as a reusable state object.

    The seed implementation rebuilt a fresh ``send``/``on_response``
    closure pair for every iteration of every user; this object is
    allocated once per virtual user and its bound methods are the
    scheduled callbacks.  A closed-loop user has at most one request in
    flight, so one ``_active_at_send`` slot per user suffices.
    """

    __slots__ = ("gen", "group", "remaining", "_active_at_send")

    def __init__(self, gen: "LoadGenerator", group: ThreadGroup) -> None:
        self.gen = gen
        self.group = group
        self.remaining = group.iterations
        self._active_at_send = 0

    def send(self) -> None:
        gen = self.gen
        gen._next_id += 1
        gen._in_flight += 1
        self._active_at_send = gen._in_flight
        self.remaining -= 1
        request = Request(
            request_id=gen._next_id,
            route=self.group.route,
            payload=self.group.payload,
        )
        gen.gateway.dispatch(request, self.on_response)

    def on_response(self, record: RequestRecord) -> None:
        gen = self.gen
        gen._in_flight -= 1
        gen.responses.append(record)
        gen.active_threads.append(
            (self._active_at_send, record.response_time * 1000.0)
        )
        if gen.telemetry is not None:
            event = TelemetryEvent(
                source=record.request.route,
                value=record.response_time * 1000.0,
                timestamp=record.end,
                kind=KIND_RESPONSE,
                attrs={
                    "wait_ms": record.wait_time * 1000.0,
                    "active_threads": float(self._active_at_send),
                    "success": 1.0 if record.success else 0.0,
                },
            )
            if record.trace is not None:
                # exemplar link: this latency sample → its trace
                event.with_trace(record.trace.trace_id, record.trace.span_id)
            gen.telemetry.publish(gen.topic, event)
        if self.remaining > 0:
            gen.sim.schedule(self.group.think_time, self.send)


class LoadGenerator:
    """Drives thread groups against a gateway on a shared simulator.

    Besides the summary, the generator keeps the *Response Times Over
    Active Threads* series JMeter's listener shows (``active_threads``):
    for every response, the number of requests that were in flight when it
    was issued.
    """

    def __init__(
        self,
        sim: Simulator,
        gateway: APIGateway,
        telemetry=None,
        topic: str = "gateway",
    ) -> None:
        self.sim = sim
        self.gateway = gateway
        #: Optional telemetry target (`TelemetryPipeline` or `TelemetryBus`);
        #: every response becomes a per-route event and :meth:`run` appends
        #: the summary, so load tests share the monitoring stream.
        self.telemetry = telemetry
        self.topic = topic
        self.responses: List[RequestRecord] = []
        #: (active in-flight requests at send time, response ms) per response
        self.active_threads: List[Tuple[int, float]] = []
        self._next_id = 0
        self._in_flight = 0

    def add_thread_group(self, group: ThreadGroup) -> None:
        """Schedule all virtual users of a thread group.

        Thread *i* starts at ``i * rampup / n_threads`` (JMeter's linear
        ramp-up), then loops: send → await response → think → repeat.
        """
        spacing = (
            group.rampup_seconds / group.n_threads if group.n_threads else 0.0
        )
        for thread in range(group.n_threads):
            user = _RecordUser(self, group)
            self.sim.schedule(thread * spacing, user.send)

    def run(self, until: Optional[float] = None) -> SummaryReport:
        """Run the simulation to completion and return the summary."""
        end_time = self.sim.run(until=until)
        report = SummaryReport.from_records(self.responses, duration=end_time)
        if self.telemetry is not None:
            for event in report.to_events(timestamp=end_time):
                self.telemetry.publish(self.topic, event)
            self.telemetry.pump()
        return report


def run_load_test(
    gateway_builder,
    groups: List[ThreadGroup],
    seed: int = 0,
) -> SummaryReport:
    """Convenience wrapper: build a deployment, apply groups, run, report.

    ``gateway_builder`` is a callable like
    :func:`repro.gateway.cluster.build_paper_deployment` accepting ``seed``
    and returning ``(sim, gateway)``.
    """
    sim, gateway = gateway_builder(seed=seed)
    generator = LoadGenerator(sim, gateway)
    for group in groups:
        generator.add_thread_group(group)
    return generator.run()
