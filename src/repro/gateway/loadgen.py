"""JMeter-equivalent load generation and reporting.

Models JMeter's *ultimate thread group*: N closed-loop virtual users started
over a ramp-up period, each repeatedly issuing a request and waiting for the
response (plus optional think time).  The :class:`SummaryReport` reproduces
the Summary Report / Response-Times-Over-Active-Threads listeners the paper
uses: average response time, percentiles, throughput and error rate, plus a
binned response-time-over-virtual-time series for the Fig. 8 curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gateway.gateway import APIGateway
from repro.gateway.services import Request, RequestRecord
from repro.gateway.simulation import Simulator
from repro.telemetry.events import (
    KIND_LOAD_SUMMARY,
    KIND_RESPONSE,
    TelemetryEvent,
)


@dataclass
class ThreadGroup:
    """A JMeter thread group: closed-loop virtual users against one route."""

    route: str
    n_threads: int
    rampup_seconds: float = 1.0
    iterations: int = 1
    payload: str = "tabular"
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.rampup_seconds < 0 or self.think_time < 0:
            raise ValueError("timings must be non-negative")


@dataclass
class SummaryReport:
    """JMeter-style aggregate listener output for one load test."""

    n_requests: int
    n_errors: int
    avg_response_ms: float
    median_response_ms: float
    p95_response_ms: float
    max_response_ms: float
    throughput_rps: float
    duration_seconds: float
    per_route: Dict[str, "SummaryReport"] = field(default_factory=dict)
    #: (virtual time of response, response ms) pairs, response order
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        return self.n_errors / self.n_requests if self.n_requests else 0.0

    @staticmethod
    def from_records(
        records: List[RequestRecord], duration: float
    ) -> "SummaryReport":
        """Build the aggregate (and per-route breakdown) from raw records."""
        if not records:
            return SummaryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, duration)
        ok = [r for r in records if r.success]
        times_ms = np.array([r.response_time * 1000.0 for r in ok]) if ok else np.array([0.0])
        report = SummaryReport(
            n_requests=len(records),
            n_errors=len(records) - len(ok),
            avg_response_ms=float(times_ms.mean()),
            median_response_ms=float(np.median(times_ms)),
            p95_response_ms=float(np.percentile(times_ms, 95)),
            max_response_ms=float(times_ms.max()),
            throughput_rps=len(ok) / duration if duration > 0 else 0.0,
            duration_seconds=duration,
            timeline=sorted(
                (r.end, r.response_time * 1000.0) for r in ok
            ),
        )
        routes = {r.request.route for r in records}
        if len(routes) > 1:
            for route in sorted(routes):
                subset = [r for r in records if r.request.route == route]
                report.per_route[route] = SummaryReport.from_records(
                    subset, duration
                )
        return report

    def to_events(
        self, source: str = "loadtest", timestamp: Optional[float] = None
    ) -> List[TelemetryEvent]:
        """The report as telemetry: one summary event per (sub)route.

        Capacity experiments thereby feed the same stream as the sensor
        monitors — a Fig. 8 run can be WAL-persisted, rolled up and
        queried exactly like trust readings.  ``value`` is the average
        response time in milliseconds; percentiles, throughput and the
        error rate ride in ``attrs``.
        """
        at = self.duration_seconds if timestamp is None else timestamp
        events = [
            TelemetryEvent(
                source=source,
                value=self.avg_response_ms,
                timestamp=at,
                kind=KIND_LOAD_SUMMARY,
                attrs={
                    "n_requests": float(self.n_requests),
                    "n_errors": float(self.n_errors),
                    "median_response_ms": self.median_response_ms,
                    "p95_response_ms": self.p95_response_ms,
                    "max_response_ms": self.max_response_ms,
                    "throughput_rps": self.throughput_rps,
                    "error_rate": self.error_rate,
                    "duration_seconds": self.duration_seconds,
                },
            )
        ]
        for route, report in self.per_route.items():
            events.extend(
                report.to_events(source=f"{source}.{route}", timestamp=at)
            )
        return events

    def render_text(self) -> str:
        """One-line summary in the JMeter Summary Report layout."""
        return (
            f"samples={self.n_requests} avg={self.avg_response_ms:.1f}ms "
            f"med={self.median_response_ms:.1f}ms p95={self.p95_response_ms:.1f}ms "
            f"max={self.max_response_ms:.1f}ms tput={self.throughput_rps:.2f}/s "
            f"err={100 * self.error_rate:.1f}%"
        )


class LoadGenerator:
    """Drives thread groups against a gateway on a shared simulator.

    Besides the summary, the generator keeps the *Response Times Over
    Active Threads* series JMeter's listener shows (``active_threads``):
    for every response, the number of requests that were in flight when it
    was issued.
    """

    def __init__(
        self,
        sim: Simulator,
        gateway: APIGateway,
        telemetry=None,
        topic: str = "gateway",
    ) -> None:
        self.sim = sim
        self.gateway = gateway
        #: Optional telemetry target (`TelemetryPipeline` or `TelemetryBus`);
        #: every response becomes a per-route event and :meth:`run` appends
        #: the summary, so load tests share the monitoring stream.
        self.telemetry = telemetry
        self.topic = topic
        self.responses: List[RequestRecord] = []
        #: (active in-flight requests at send time, response ms) per response
        self.active_threads: List[Tuple[int, float]] = []
        self._next_id = 0
        self._in_flight = 0

    def add_thread_group(self, group: ThreadGroup) -> None:
        """Schedule all virtual users of a thread group.

        Thread *i* starts at ``i * rampup / n_threads`` (JMeter's linear
        ramp-up), then loops: send → await response → think → repeat.
        """
        spacing = (
            group.rampup_seconds / group.n_threads if group.n_threads else 0.0
        )
        for thread in range(group.n_threads):
            start_at = thread * spacing
            self.sim.schedule(
                start_at, self._make_user(group, remaining=group.iterations)
            )

    def _make_user(self, group: ThreadGroup, remaining: int):
        def send() -> None:
            self._next_id += 1
            self._in_flight += 1
            active_at_send = self._in_flight
            request = Request(
                request_id=self._next_id,
                route=group.route,
                payload=group.payload,
            )

            def on_response(record: RequestRecord) -> None:
                self._in_flight -= 1
                self.responses.append(record)
                self.active_threads.append(
                    (active_at_send, record.response_time * 1000.0)
                )
                if self.telemetry is not None:
                    event = TelemetryEvent(
                        source=record.request.route,
                        value=record.response_time * 1000.0,
                        timestamp=record.end,
                        kind=KIND_RESPONSE,
                        attrs={
                            "wait_ms": record.wait_time * 1000.0,
                            "active_threads": float(active_at_send),
                            "success": 1.0 if record.success else 0.0,
                        },
                    )
                    if record.trace is not None:
                        # exemplar link: this latency sample → its trace
                        event.with_trace(
                            record.trace.trace_id, record.trace.span_id
                        )
                    self.telemetry.publish(self.topic, event)
                if remaining > 1:
                    self.sim.schedule(
                        group.think_time,
                        self._make_user(group, remaining - 1),
                    )

            self.gateway.dispatch(request, on_response)

        return send

    def run(self, until: Optional[float] = None) -> SummaryReport:
        """Run the simulation to completion and return the summary."""
        end_time = self.sim.run(until=until)
        report = SummaryReport.from_records(self.responses, duration=end_time)
        if self.telemetry is not None:
            for event in report.to_events(timestamp=end_time):
                self.telemetry.publish(self.topic, event)
            self.telemetry.pump()
        return report


def run_load_test(
    gateway_builder,
    groups: List[ThreadGroup],
    seed: int = 0,
) -> SummaryReport:
    """Convenience wrapper: build a deployment, apply groups, run, report.

    ``gateway_builder`` is a callable like
    :func:`repro.gateway.cluster.build_paper_deployment` accepting ``seed``
    and returning ``(sim, gateway)``.
    """
    sim, gateway = gateway_builder(seed=seed)
    generator = LoadGenerator(sim, gateway)
    for group in groups:
        generator.add_thread_group(group)
    return generator.run()
