"""The span model: one timed, attributed unit of work inside a trace.

A *span* is the tracing analogue of a :class:`~repro.telemetry.events.
TelemetryEvent`: where an event is one scalar measurement, a span is one
*interval* — a named operation with a start, an end, a status and a causal
parent.  Spans from one request share a ``trace_id``; parent links make
them a tree the collector can assemble and the analysis layer can walk.

Design constraints (mirroring the telemetry layer):

* **No clock reads.**  Spans never call ``time.*`` — timestamps come from
  the :class:`~repro.tracing.tracer.Tracer`'s injected clock, which in the
  capacity experiments is the discrete-event simulator's virtual ``now``.
  The ``tracing-clock-injection`` lint rule enforces this package-wide.
* **Deterministic ids.**  Trace/span ids are allocated by a seeded counter
  (see :class:`~repro.tracing.tracer.SpanIdAllocator`), so two runs of the
  same seeded experiment produce byte-identical traces.
* **Near-zero cost when off.**  :data:`NULL_SPAN` is a shared, immutable
  no-op; instrumented call sites check ``span.is_recording`` before doing
  any per-span work (building attribute dicts, stamping labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = [
    "NODE_ID_ATTR",
    "NULL_SPAN",
    "NullSpan",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_UNSET",
    "Span",
    "SpanContext",
]

#: Well-known span attribute naming the cluster node the operation ran
#: on.  The cluster runner stamps it on every materialised span, so a
#: cross-node trace's critical path can attribute each segment to a node
#: (the string value matches ``NODE_ID_LABEL`` on telemetry events).
NODE_ID_ATTR = "node_id"

#: Span outcome markers.  ``UNSET`` means the span ended without anyone
#: declaring an outcome; the collector treats it as success.
STATUS_UNSET = "unset"
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The propagatable identity of a span: which trace, which node.

    This is what crosses layer boundaries — the gateway stores it on the
    :class:`~repro.gateway.services.RequestRecord`, telemetry events carry
    it as the ``trace_id``/``span_id`` labels, and child spans are started
    against it.
    """

    trace_id: str
    span_id: str

    def trace_labels(self) -> Dict[str, str]:
        """The exemplar-link labels for a telemetry event published under
        this span (see ``TRACE_ID_LABEL``/``SPAN_ID_LABEL`` in
        :mod:`repro.telemetry.events`)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


class Span:
    """One recorded operation: name, interval, status, attributes, parent.

    Spans are created by a :class:`~repro.tracing.tracer.Tracer` (never
    directly) and must be explicitly ended — :meth:`end` stamps the end
    time from the tracer's clock and hands the finished span to the
    collector.  Attribute values may be floats or short strings; renderers
    and the analysis layer treat them as opaque annotations.
    """

    __slots__ = (
        "name",
        "context",
        "parent_span_id",
        "start_time",
        "end_time",
        "status",
        "status_message",
        "attributes",
        "_on_end",
        "_clock",
    )

    is_recording = True

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_span_id: Optional[str],
        start_time: float,
        clock: Callable[[], float],
        on_end: Callable[["Span"], None],
    ) -> None:
        self.name = name
        self.context = context
        self.parent_span_id = parent_span_id
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.status = STATUS_UNSET
        self.status_message = ""
        self.attributes: Dict[str, object] = {}
        self._clock = clock
        self._on_end = on_end

    # -- recording ----------------------------------------------------------

    def set_attribute(self, key: str, value: object) -> "Span":
        self.attributes[key] = value
        return self

    def set_status(self, status: str, message: str = "") -> "Span":
        if status not in (STATUS_UNSET, STATUS_OK, STATUS_ERROR):
            raise ValueError(f"unknown span status {status!r}")
        self.status = status
        self.status_message = message
        return self

    def record_error(self, message: str) -> "Span":
        """Mark the span failed and note why (error flag + message)."""
        self.attributes["error"] = 1.0
        return self.set_status(STATUS_ERROR, message)

    def end(self, at: Optional[float] = None) -> "Span":
        """Finish the span at ``at`` (or the clock's current time).

        Ending twice is an error: a span that reaches the collector twice
        would corrupt trace assembly, and double-ends are always a bug in
        the instrumentation, not the workload.
        """
        if self.end_time is not None:
            raise RuntimeError(f"span {self.name!r} ended twice")
        end_at = self._clock() if at is None else at
        if end_at < self.start_time:
            raise ValueError(
                f"span {self.name!r} cannot end at {end_at} before its "
                f"start {self.start_time}"
            )
        self.end_time = end_at
        self._on_end(self)
        return self

    # -- derived ------------------------------------------------------------

    @property
    def ended(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end; raises while the span is open."""
        if self.end_time is None:
            raise RuntimeError(f"span {self.name!r} has not ended")
        return self.end_time - self.start_time

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def is_root(self) -> bool:
        return self.parent_span_id is None

    @property
    def ok(self) -> bool:
        return self.status != STATUS_ERROR

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.status != STATUS_ERROR:
            self.record_error(f"{exc_type.__name__}: {exc}")
        if self.end_time is None:
            self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end_time:.6f}" if self.end_time is not None else "open"
        return (
            f"Span({self.name!r}, trace={self.context.trace_id}, "
            f"span={self.context.span_id}, start={self.start_time:.6f}, "
            f"end={end}, status={self.status})"
        )


@dataclass(frozen=True)
class _NullContext(SpanContext):
    """Context of the null span: empty ids, no labels to stamp."""

    def trace_labels(self) -> Dict[str, str]:
        return {}


class NullSpan:
    """The do-nothing span: every recording method is a cheap no-op.

    A single shared instance (:data:`NULL_SPAN`) is returned for every
    ``start_span`` on a :class:`~repro.tracing.tracer.NullTracer`, so an
    instrumented hot path pays a handful of attribute lookups per request
    and allocates nothing.  ``is_recording`` is ``False`` so call sites
    can skip attribute/label construction entirely.
    """

    __slots__ = ()

    is_recording = False
    name = ""
    parent_span_id: Optional[str] = None
    start_time = 0.0
    end_time: Optional[float] = 0.0
    status = STATUS_UNSET
    status_message = ""
    context = _NullContext(trace_id="", span_id="")

    def set_attribute(self, key: str, value: object) -> "NullSpan":
        return self

    def set_status(self, status: str, message: str = "") -> "NullSpan":
        return self

    def record_error(self, message: str) -> "NullSpan":
        return self

    def end(self, at: Optional[float] = None) -> "NullSpan":
        return self

    @property
    def attributes(self) -> Dict[str, object]:
        return {}

    @property
    def duration(self) -> float:
        return 0.0

    @property
    def ended(self) -> bool:
        return True

    @property
    def trace_id(self) -> str:
        return ""

    @property
    def span_id(self) -> str:
        return ""

    @property
    def is_root(self) -> bool:
        return True

    @property
    def ok(self) -> bool:
        return True

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The shared no-op span handed out by :class:`NullTracer`.
NULL_SPAN = NullSpan()
