"""In-process trace collection: finished spans → bounded trace trees.

The collector is the tracing analogue of the telemetry rollup store: a
bounded, queryable, in-memory view of recent activity.  Spans arrive one
at a time as they end (out of order — children typically end before their
parents); the collector groups them by ``trace_id`` and exposes each
group as a :class:`TraceTree` once its root span has ended.

Retention is by *trace*, FIFO on first-span arrival: once ``max_traces``
traces are held, starting to record a new trace evicts the oldest.  Spans
arriving for an already-evicted trace are dropped and counted, never
resurrected — the same "bounded memory, WAL is the archive" stance the
rollup layer takes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.tracing.span import Span

__all__ = ["TraceCollector", "TraceTree"]


class TraceTree:
    """All finished spans of one trace, navigable as a tree.

    The *root* is the (unique) span without a parent link.  Ordering is
    deterministic: children are sorted by start time, then span id, so
    renders and critical paths are stable across runs.
    """

    def __init__(self, trace_id: str, spans: List[Span]) -> None:
        self.trace_id = trace_id
        self.spans = sorted(
            spans, key=lambda s: (s.start_time, s.context.span_id)
        )
        self._by_id: Dict[str, Span] = {
            s.context.span_id: s for s in self.spans
        }
        self._children: Dict[str, List[Span]] = {}
        for span in self.spans:
            if span.parent_span_id is not None:
                self._children.setdefault(span.parent_span_id, []).append(span)

    @property
    def root(self) -> Optional[Span]:
        """The rooting span; ``None`` for orphan fragments (parent span
        belonged to an evicted trace or never ended)."""
        roots = [s for s in self.spans if s.parent_span_id is None]
        return roots[0] if len(roots) == 1 else None

    def children(self, span: Span) -> List[Span]:
        return list(self._children.get(span.context.span_id, ()))

    def get(self, span_id: str) -> Optional[Span]:
        return self._by_id.get(span_id)

    def span_names(self) -> List[str]:
        return sorted({s.name for s in self.spans})

    @property
    def duration(self) -> float:
        """Root duration — *the* latency of the traced request."""
        root = self.root
        if root is None:
            raise RuntimeError(f"trace {self.trace_id} has no root span")
        return root.duration

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.spans)

    def depth_of(self, span: Span) -> int:
        depth = 0
        cursor = span
        while cursor.parent_span_id is not None:
            parent = self._by_id.get(cursor.parent_span_id)
            if parent is None:
                break
            cursor = parent
            depth += 1
        return depth

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)


class TraceCollector:
    """Assembles finished spans into bounded, queryable trace trees.

    Parameters
    ----------
    max_traces:
        Retention bound.  The collector never holds more than this many
        traces; the oldest (by first-span arrival) is evicted to admit a
        new one, and its late-arriving spans are dropped (counted in
        ``dropped_spans``).
    """

    def __init__(self, max_traces: int = 1024) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self._spans: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._evicted: set = set()
        self.finished_spans = 0
        self.evicted_traces = 0
        self.dropped_spans = 0

    # -- ingest (called by the tracer) --------------------------------------

    def on_end(self, span: Span) -> None:
        trace_id = span.context.trace_id
        if trace_id in self._evicted:
            self.dropped_spans += 1
            return
        bucket = self._spans.get(trace_id)
        if bucket is None:
            while len(self._spans) >= self.max_traces:
                evicted_id, evicted = self._spans.popitem(last=False)
                self._evicted.add(evicted_id)
                self.evicted_traces += 1
                self.dropped_spans += len(evicted)
            bucket = self._spans[trace_id] = []
        bucket.append(span)
        self.finished_spans += 1

    # -- queries -------------------------------------------------------------

    @property
    def trace_ids(self) -> List[str]:
        """Held trace ids, oldest first."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._spans

    def get(self, trace_id: str) -> TraceTree:
        if trace_id not in self._spans:
            raise KeyError(f"unknown (or evicted) trace {trace_id!r}")
        return TraceTree(trace_id, self._spans[trace_id])

    def traces(self, rooted_only: bool = True) -> List[TraceTree]:
        """All held traces, oldest first.

        ``rooted_only`` filters to complete trees (root span ended) —
        what the analysis layer and the CLI want.  Pass ``False`` to also
        see fragments, e.g. when debugging instrumentation that forgot to
        end a root.
        """
        trees = [TraceTree(tid, spans) for tid, spans in self._spans.items()]
        if rooted_only:
            trees = [t for t in trees if t.root is not None]
        return trees

    def all_spans(self) -> List[Span]:
        """Every held span (for name-level latency stats), arrival order."""
        return [span for bucket in self._spans.values() for span in bucket]

    def stats(self) -> Dict[str, int]:
        return {
            "traces": len(self._spans),
            "finished_spans": self.finished_spans,
            "evicted_traces": self.evicted_traces,
            "dropped_spans": self.dropped_spans,
        }
