"""Exemplar linking: from a slow rollup bucket to the traces inside it.

Rollups answer "which source was slow in which window"; traces answer
"where did one request spend its time".  Exemplars join the two: every
:class:`~repro.telemetry.events.TelemetryEvent` published inside an
active span carries ``trace_id``/``span_id`` labels (see
``TRACE_ID_LABEL``/``SPAN_ID_LABEL``), so any rollup
:class:`~repro.telemetry.rollup.WindowStat` can be resolved back to the
raw events that fell in its window and from there to the recorded trace
trees — the drill-down the AI-observability literature calls metric
exemplars.

This module sits above ``telemetry`` in the layering contract
(``tracing → {telemetry}``); it knows both vocabularies and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.telemetry.events import (
    SPAN_ID_LABEL,
    TRACE_ID_LABEL,
    TelemetryEvent,
)
from repro.telemetry.rollup import WindowStat
from repro.tracing.collector import TraceCollector, TraceTree

__all__ = [
    "ExemplarResolution",
    "exemplar_trace_ids",
    "resolve_window",
    "slowest_windows",
]


def exemplar_trace_ids(
    events: Iterable[TelemetryEvent],
    source: Optional[str] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> List[str]:
    """Trace ids of events in ``[start, end)`` for ``source``, event order.

    Only events that were published inside an active span carry the label;
    unlabelled events are skipped (they have no trace to offer).  Ids are
    de-duplicated preserving first-seen order, so the first exemplar is
    the earliest matching request.
    """
    seen: List[str] = []
    for event in events:
        if source is not None and event.source != source:
            continue
        if start is not None and event.timestamp < start:
            continue
        if end is not None and event.timestamp >= end:
            continue
        trace_id = event.labels.get(TRACE_ID_LABEL)
        if trace_id and trace_id not in seen:
            seen.append(trace_id)
    return seen


def slowest_windows(
    windows: Sequence[WindowStat], k: int = 1
) -> List[WindowStat]:
    """The ``k`` windows with the highest mean value (= slowest buckets
    when the series is a latency, which is what the gateway publishes)."""
    return sorted(windows, key=lambda w: (-w.mean, w.window_start))[:k]


@dataclass
class ExemplarResolution:
    """One rollup window drilled down to its traces."""

    window: WindowStat
    trace_ids: List[str] = field(default_factory=list)
    traces: List[TraceTree] = field(default_factory=list)
    #: Trace ids seen on events but already evicted from the collector.
    missing: List[str] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        return bool(self.traces)

    def render_text(self) -> str:
        lines = [
            f"window [{self.window.window_start:g}s, "
            f"{self.window.window_end:g}s) source={self.window.source} "
            f"mean={self.window.mean:.3f} count={self.window.count}"
        ]
        if not self.trace_ids:
            lines.append("  no exemplar-labelled events in this window")
        for tree in self.traces:
            root = tree.root
            status = "ok" if tree.ok else "ERROR"
            lines.append(
                f"  trace {tree.trace_id}  {root.name}  "
                f"{tree.duration * 1000.0:.2f}ms  [{status}]"
            )
        for trace_id in self.missing:
            lines.append(f"  trace {trace_id}  (evicted from collector)")
        return "\n".join(lines)


def resolve_window(
    window: WindowStat,
    events: Iterable[TelemetryEvent],
    collector: TraceCollector,
    max_traces: int = 8,
) -> ExemplarResolution:
    """Resolve one rollup window to the recorded traces behind it.

    ``events`` is any event iterable covering the window — the in-memory
    stream, or :func:`repro.telemetry.wal.replay` for cold lookups.
    """
    trace_ids = exemplar_trace_ids(
        events,
        source=window.source,
        start=window.window_start,
        end=window.window_end,
    )[:max_traces]
    resolution = ExemplarResolution(window=window, trace_ids=trace_ids)
    for trace_id in trace_ids:
        if trace_id in collector:
            tree = collector.get(trace_id)
            if tree.root is not None:
                resolution.traces.append(tree)
                continue
        resolution.missing.append(trace_id)
    return resolution
