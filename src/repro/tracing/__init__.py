"""Distributed tracing: causal spans across gateway → services → sensors.

The metrics pillar (:mod:`repro.telemetry`) answers *what* each sensor
and route reported; this package answers *where the time went inside a
request* — the question the paper's capacity-load experiments (Fig. 8)
raise but per-event metrics cannot answer.

The pieces, bottom up:

* :class:`Span` / :class:`SpanContext` — one timed, attributed operation
  with a causal parent link and deterministic ids.
* :class:`Tracer` — starts spans against an *injected* clock (the
  simulator's virtual ``now`` in capacity runs); :class:`NullTracer` is
  the always-off default every instrumented constructor accepts, so
  tracing costs near-zero when disabled.
* :class:`TraceCollector` — bounded in-process retention; assembles
  finished spans into :class:`TraceTree`\\ s.
* :mod:`~repro.tracing.analysis` — critical-path extraction, per-span
  latency summaries, text waterfall/critical-path renderers.
* :mod:`~repro.tracing.exemplars` — the metric↔trace join: telemetry
  events published inside a span carry ``trace_id``/``span_id`` labels,
  so a slow rollup bucket resolves to the exact traces inside it.

Propagation is explicit (parents are passed by hand through
``APIGateway.dispatch`` → ``MicroService`` → pipeline stages →
``SensorRegistry.poll``): the single-threaded discrete-event simulation
interleaves every in-flight request on one call stack, where ambient
"current span" state would mis-attribute children.
"""

from repro.tracing.analysis import (
    PathSegment,
    SpanLatencyStats,
    critical_path,
    latency_summary,
    render_critical_path,
    render_latency_table,
    render_waterfall,
)
from repro.tracing.collector import TraceCollector, TraceTree
from repro.tracing.exemplars import (
    ExemplarResolution,
    exemplar_trace_ids,
    resolve_window,
    slowest_windows,
)
from repro.tracing.span import (
    NODE_ID_ATTR,
    NULL_SPAN,
    NullSpan,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_UNSET,
    Span,
    SpanContext,
)
from repro.tracing.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanIdAllocator,
    Tracer,
)

__all__ = [
    "ExemplarResolution",
    "NODE_ID_ATTR",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "PathSegment",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_UNSET",
    "Span",
    "SpanContext",
    "SpanIdAllocator",
    "SpanLatencyStats",
    "TraceCollector",
    "TraceTree",
    "Tracer",
    "critical_path",
    "exemplar_trace_ids",
    "latency_summary",
    "render_critical_path",
    "render_latency_table",
    "render_waterfall",
    "resolve_window",
    "slowest_windows",
]
