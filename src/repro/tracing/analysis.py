"""Trace analysis: critical paths, per-operation latency, text waterfalls.

This is where traces stop being storage and start answering the Fig. 8
question — *where does the time go inside a request*:

* :func:`critical_path` walks a trace tree backwards from the root's end
  and attributes every second of the trace to exactly one span (the chain
  of operations that actually gated completion).  The segments partition
  the root interval, so their durations sum to the trace duration exactly
  — an invariant the end-to-end test asserts.
* :func:`latency_summary` aggregates spans by name into p50/p95/p99
  summaries — the distribution view a single waterfall cannot give.
* :func:`render_waterfall` / :func:`render_critical_path` print operator-
  readable views for the ``python -m repro trace`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.tracing.collector import TraceTree
from repro.tracing.span import STATUS_ERROR, Span

__all__ = [
    "PathSegment",
    "SpanLatencyStats",
    "critical_path",
    "latency_summary",
    "render_critical_path",
    "render_latency_table",
    "render_waterfall",
]


@dataclass(frozen=True)
class PathSegment:
    """One stretch of the critical path: ``seconds`` of ``span``'s own time.

    A span can contribute several disjoint segments (e.g. a parent's time
    before and after the child that gated it); ``seconds`` is the length
    of this segment alone, not the span's total duration.
    """

    span: Span
    seconds: float


def critical_path(tree: TraceTree) -> List[PathSegment]:
    """The chain of spans that gated the trace's completion.

    Standard backward walk: starting from the root's end, repeatedly step
    into the child whose *end* is latest but not after the cursor; the gap
    between that child's end and the cursor is the parent's own time.
    Children that finished earlier (parallel work hidden behind the
    gating child) never appear — that is the point of a critical path.

    The returned segments are ordered root-end → root-start and partition
    the root interval exactly::

        sum(seg.seconds) == tree.duration
    """
    root = tree.root
    if root is None:
        raise ValueError(f"trace {tree.trace_id} has no root span")

    segments: List[PathSegment] = []

    def walk(span: Span, window_end: float) -> None:
        cursor = min(window_end, span.end_time)
        candidates = sorted(
            (
                c
                for c in tree.children(span)
                if c.end_time is not None and c.end_time > span.start_time
            ),
            key=lambda c: c.end_time,
            reverse=True,
        )
        for child in candidates:
            if child.end_time > cursor:
                continue  # finished after the gate: off the path
            if cursor > child.end_time:
                segments.append(PathSegment(span, cursor - child.end_time))
            walk(child, child.end_time)
            cursor = max(child.start_time, span.start_time)
        if cursor > span.start_time:
            segments.append(PathSegment(span, cursor - span.start_time))

    walk(root, root.end_time)
    return segments


@dataclass(frozen=True)
class SpanLatencyStats:
    """Latency distribution of one span name across many traces."""

    name: str
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    errors: int

    @staticmethod
    def from_durations(
        name: str, durations: Sequence[float], errors: int = 0
    ) -> "SpanLatencyStats":
        values = np.asarray(durations, dtype=np.float64)
        if values.size == 0:
            raise ValueError(f"no durations for span name {name!r}")
        return SpanLatencyStats(
            name=name,
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(np.percentile(values, 50)),
            p95=float(np.percentile(values, 95)),
            p99=float(np.percentile(values, 99)),
            max=float(values.max()),
            errors=errors,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "mean_ms": self.mean * 1000.0,
            "p50_ms": self.p50 * 1000.0,
            "p95_ms": self.p95 * 1000.0,
            "p99_ms": self.p99 * 1000.0,
            "max_ms": self.max * 1000.0,
            "errors": self.errors,
        }


def latency_summary(spans: Iterable[Span]) -> List[SpanLatencyStats]:
    """Group finished spans by name into latency histograms, name order."""
    durations: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for span in spans:
        if span.end_time is None:
            continue
        durations.setdefault(span.name, []).append(span.duration)
        if span.status == STATUS_ERROR:
            errors[span.name] = errors.get(span.name, 0) + 1
    return [
        SpanLatencyStats.from_durations(name, values, errors.get(name, 0))
        for name, values in sorted(durations.items())
    ]


# -- text renderers -----------------------------------------------------------


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}ms"


def render_waterfall(tree: TraceTree, width: int = 48) -> str:
    """Text waterfall: indent = depth, bar = position within the trace.

    One line per span, bars proportional to the root interval — the
    textual cousin of the Jaeger/Zipkin timeline view.
    """
    root = tree.root
    if root is None:
        raise ValueError(f"trace {tree.trace_id} has no root span")
    t0 = root.start_time
    total = max(root.duration, 1e-12)
    lines = [
        f"trace {tree.trace_id} — {len(tree)} span(s), "
        f"{_format_ms(tree.duration)}"
        + ("" if tree.ok else "  [ERROR]")
    ]

    def emit(span: Span, depth: int) -> None:
        label = ("  " * depth + span.name)[:28].ljust(28)
        left = int(round((span.start_time - t0) / total * width))
        extent = max(
            1, int(round((span.end_time - span.start_time) / total * width))
        )
        left = min(left, width - 1)
        extent = min(extent, width - left)
        bar = " " * left + "▕" + "█" * (extent - 1) if extent > 1 else (
            " " * left + "▏"
        )
        status = "" if span.ok else f"  !{span.status_message}"
        lines.append(
            f"  {label} |{bar.ljust(width)}| "
            f"{_format_ms(span.duration)}{status}"
        )
        for child in tree.children(span):
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def render_critical_path(segments: Sequence[PathSegment]) -> str:
    """Critical-path table, largest contributor first, with % of trace."""
    if not segments:
        return "critical path: (empty)"
    total = sum(seg.seconds for seg in segments)
    by_span: Dict[str, float] = {}
    order: List[str] = []
    for seg in segments:
        if seg.span.name not in by_span:
            order.append(seg.span.name)
        by_span[seg.span.name] = by_span.get(seg.span.name, 0.0) + seg.seconds
    lines = [f"critical path — {_format_ms(total)} total"]
    for name in sorted(order, key=lambda n: -by_span[n]):
        share = by_span[name] / total if total > 0 else 0.0
        lines.append(
            f"  {name:<28} {_format_ms(by_span[name]):>10}  {share:6.1%}"
        )
    return "\n".join(lines)


def render_latency_table(stats: Sequence[SpanLatencyStats]) -> str:
    """Per-span-name latency table (the CLI's histogram view)."""
    header = (
        f"  {'span':<28} {'count':>6} {'mean':>9} {'p50':>9} "
        f"{'p95':>9} {'p99':>9} {'max':>9} {'err':>4}"
    )
    lines = [header]
    for s in stats:
        lines.append(
            f"  {s.name:<28} {s.count:>6} {_format_ms(s.mean):>9} "
            f"{_format_ms(s.p50):>9} {_format_ms(s.p95):>9} "
            f"{_format_ms(s.p99):>9} {_format_ms(s.max):>9} {s.errors:>4}"
        )
    return "\n".join(lines)
