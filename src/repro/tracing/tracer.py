"""Tracers: the factories that start spans and own the (injected) clock.

Two implementations share one duck-typed interface:

* :class:`Tracer` — the real thing.  Construction injects a ``clock``
  callable (the simulator's ``lambda: sim.now`` in capacity experiments,
  ``time.perf_counter`` at the application layer) and optionally a
  :class:`~repro.tracing.collector.TraceCollector` that receives every
  finished span.
* :class:`NullTracer` — the always-off implementation.  ``start_span``
  returns the shared :data:`~repro.tracing.span.NULL_SPAN`, so every
  instrumented call site stays branch-free and pays near-zero cost
  (``benchmarks/bench_tracing.py`` holds this to ≤ 5 % over an
  uninstrumented dispatch path).

Context propagation is *explicit*: there is no ambient "current span".
The deployment simulation interleaves hundreds of requests on one thread
of scheduled callbacks, where thread-local (or contextvar) ambient state
would attribute spans to whichever request happened to run last.  Parents
are therefore passed by hand — ``tracer.start_span(name, parent=span)`` —
which is exactly the discipline the gateway/service/pipeline/sensor call
chain follows.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.tracing.span import NULL_SPAN, NullSpan, Span, SpanContext

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanIdAllocator",
    "Tracer",
]

AnySpan = Union[Span, NullSpan]
Parent = Union[Span, SpanContext, None]


class SpanIdAllocator:
    """Deterministic 64-bit hex ids from a seeded counter.

    Ids must be unique within a run and *reproducible across runs* (the
    whole repo is seeded; traces are compared in tests and docs).  A
    splitmix64 step over ``seed + counter`` gives well-dispersed ids
    without any global RNG state.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed & self._MASK
        self._count = 0

    def next_id(self) -> str:
        self._count += 1
        z = (self._seed + self._count * 0x9E3779B97F4A7C15) & self._MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return format(z ^ (z >> 31), "016x")

    @property
    def allocated(self) -> int:
        return self._count


class Tracer:
    """Creates spans against an injected clock and reports finished ones.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds.  The capacity experiments
        inject the simulator's virtual clock; wall-clock callers inject
        ``time.perf_counter``.  The tracing package itself never reads
        time — the ``tracing-clock-injection`` lint rule enforces it.
    collector:
        Optional sink with an ``on_end(span)`` method (typically a
        :class:`~repro.tracing.collector.TraceCollector`).  Without one,
        spans are still timed and linked but vanish when dropped.
    seed:
        Seed for the deterministic id allocator.
    """

    is_recording = True

    def __init__(
        self,
        clock: Callable[[], float],
        collector=None,
        seed: int = 0,
    ) -> None:
        self.clock = clock
        self.collector = collector
        self._ids = SpanIdAllocator(seed)
        self.started = 0
        self.ended = 0

    # -- span lifecycle -----------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: Parent = None,
        start_time: Optional[float] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a span.  ``parent=None`` roots a new trace.

        ``start_time`` overrides the clock read — the service layer uses
        it to materialise sub-interval spans (pipeline stages) after the
        fact without scheduling extra simulator events.
        """
        if parent is None or isinstance(parent, NullSpan):
            trace_id = self._ids.next_id()
            parent_span_id: Optional[str] = None
        else:
            context = parent.context if isinstance(parent, Span) else parent
            trace_id = context.trace_id
            parent_span_id = context.span_id
        span = Span(
            name=name,
            context=SpanContext(trace_id=trace_id, span_id=self._ids.next_id()),
            parent_span_id=parent_span_id,
            start_time=self.clock() if start_time is None else start_time,
            clock=self.clock,
            on_end=self._on_span_end,
        )
        if attributes:
            span.attributes.update(attributes)
        self.started += 1
        return span

    def span(
        self,
        name: str,
        parent: Parent = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Context-manager sugar: ``with tracer.span("work") as s: ...``.

        The span ends on scope exit; an escaping exception marks it
        ``error`` before ending (see :meth:`Span.__exit__`).
        """
        return self.start_span(name, parent=parent, attributes=attributes)

    def _on_span_end(self, span: Span) -> None:
        self.ended += 1
        if self.collector is not None:
            self.collector.on_end(span)

    # -- accounting ----------------------------------------------------------

    @property
    def active_spans(self) -> int:
        """Spans started but not yet ended — must be 0 between requests
        (the no-leak invariant the gateway error-path tests assert)."""
        return self.started - self.ended


class NullTracer:
    """The always-off tracer: hands out the shared no-op span.

    Instrumented code calls exactly the same methods as with a real
    tracer; every one returns immediately.  Stateless and shareable —
    :data:`NULL_TRACER` is the instance every constructor defaults to.
    """

    is_recording = False
    clock = staticmethod(lambda: 0.0)
    collector = None
    started = 0
    ended = 0
    active_spans = 0

    def start_span(
        self,
        name: str,
        parent: Parent = None,
        start_time: Optional[float] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> NullSpan:
        return NULL_SPAN

    def span(
        self,
        name: str,
        parent: Parent = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> NullSpan:
        return NULL_SPAN


#: Shared default for every ``tracer=None`` parameter in the repo.
NULL_TRACER = NullTracer()
