"""Trustworthy-property model and the §IV trade-off matrix.

"Trustworthy AI is valid, reliable, safe, fair, free of biases, secure,
robust, resilient, privacy-preserving, accountable, transparent, explainable,
and interpretable" (§I).  §IV adds that properties "can be considered as
trade-offs within applications … e.g., robustness vs privacy, accuracy vs
fairness, transparency vs security."  This module gives each property a
first-class identity and encodes the documented tensions so the dashboard
can warn operators when tuning one property is likely to degrade another.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Tuple


class TrustProperty(enum.Enum):
    """The trustworthy properties SPATIAL's sensors can quantify."""

    VALIDITY = "validity"
    RELIABILITY = "reliability"
    SAFETY = "safety"
    FAIRNESS = "fairness"
    SECURITY = "security"
    ROBUSTNESS = "robustness"
    RESILIENCE = "resilience"
    PRIVACY = "privacy"
    ACCOUNTABILITY = "accountability"
    TRANSPARENCY = "transparency"
    EXPLAINABILITY = "explainability"
    INTERPRETABILITY = "interpretability"
    ACCURACY = "accuracy"


#: Documented tensions (§IV plus the Wang 2023 trade-off analysis the paper
#: cites): raising the first property tends to pressure the second.
PROPERTY_TRADEOFFS: Tuple[Tuple[TrustProperty, TrustProperty, str], ...] = (
    (
        TrustProperty.ROBUSTNESS,
        TrustProperty.PRIVACY,
        "adversarial training memorises more of the data distribution, "
        "enlarging membership-inference surface",
    ),
    (
        TrustProperty.ACCURACY,
        TrustProperty.FAIRNESS,
        "optimising raw accuracy exploits correlations with protected "
        "attributes that fairness constraints must suppress",
    ),
    (
        TrustProperty.TRANSPARENCY,
        TrustProperty.SECURITY,
        "publishing model logic (explanations, cards) lowers the cost of "
        "crafting evasion inputs and stealing the model",
    ),
    (
        TrustProperty.EXPLAINABILITY,
        TrustProperty.PRIVACY,
        "faithful explanations can leak training-data characteristics",
    ),
    (
        TrustProperty.PRIVACY,
        TrustProperty.ACCURACY,
        "data removal/obfuscation degrades the decision-making performance "
        "(§VIII privacy-preserving computations)",
    ),
    (
        TrustProperty.RESILIENCE,
        TrustProperty.ACCURACY,
        "defensive smoothing and sanitisation trade clean-data performance "
        "for attack tolerance",
    ),
)


def tradeoff_between(a: TrustProperty, b: TrustProperty) -> str:
    """Return the documented tension between two properties.

    Raises ``KeyError`` when no trade-off is documented for the pair.
    """
    for first, second, why in PROPERTY_TRADEOFFS:
        if {first, second} == {a, b}:
            return why
    raise KeyError(f"no documented trade-off between {a.value} and {b.value}")


def conflicting_properties(prop: TrustProperty) -> List[TrustProperty]:
    """Properties in documented tension with ``prop``."""
    out = []
    for first, second, __ in PROPERTY_TRADEOFFS:
        if prop is first:
            out.append(second)
        elif prop is second:
            out.append(first)
    return out


def property_catalog() -> Dict[str, FrozenSet[TrustProperty]]:
    """Split the catalogue into technical vs socio-technical groups (§VIII)."""
    technical = frozenset(
        {
            TrustProperty.VALIDITY,
            TrustProperty.ACCURACY,
            TrustProperty.RELIABILITY,
            TrustProperty.ROBUSTNESS,
            TrustProperty.RESILIENCE,
            TrustProperty.SECURITY,
        }
    )
    socio_technical = frozenset(
        {
            TrustProperty.EXPLAINABILITY,
            TrustProperty.INTERPRETABILITY,
            TrustProperty.FAIRNESS,
            TrustProperty.PRIVACY,
            TrustProperty.SAFETY,
            TrustProperty.ACCOUNTABILITY,
            TrustProperty.TRANSPARENCY,
        }
    )
    return {"technical": technical, "socio_technical": socio_technical}
