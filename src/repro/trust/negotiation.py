"""Adaptive trustworthiness: negotiating between conflicting properties.

§IX ("Adaptive trustworthiness"): "As these properties can be considered
trade-offs, it is possible to establish interactions and negotiations
between AI sensors to obtain a balance level of trust (similar to
AI-Chatbot negotiations)."

The negotiator takes the current per-property readings plus operator
priorities, and searches for a weight allocation that (a) maximises the
weighted trust score, (b) respects per-property minimum weights implied by
the priorities, and (c) surfaces every documented trade-off the proposal
leans on, so the human operator approves with the conflicts visible — the
paper's human-oversight requirement applied to the tuning loop itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trust.properties import PROPERTY_TRADEOFFS, TrustProperty
from repro.trust.score import TrustScore, aggregate_trust_score


@dataclass
class NegotiationOutcome:
    """A weight proposal plus everything an operator needs to judge it."""

    weights: Dict[TrustProperty, float]
    score: TrustScore
    conflicts: List[Tuple[TrustProperty, TrustProperty, str]] = field(
        default_factory=list
    )
    notes: List[str] = field(default_factory=list)


def negotiate_weights(
    readings: Dict[TrustProperty, float],
    priorities: Optional[Dict[TrustProperty, float]] = None,
    emphasis: float = 2.0,
) -> NegotiationOutcome:
    """Propose a weighting of the measured properties.

    Parameters
    ----------
    readings:
        Property → normalised score in [0, 1] (from the dashboard).
    priorities:
        Property → operator priority ≥ 0 (unlisted properties get 1.0).
        Priorities scale each property's weight *floor*: negotiation may
        raise a property's weight above its floor, never below, so operator
        intent is a hard constraint.
    emphasis:
        How strongly the negotiator shifts residual weight toward the
        best-performing properties (1.0 = no shift, just the floors).

    The proposal allocates the priority floors first (half the mass), then
    distributes the rest proportionally to ``reading ** emphasis`` — the
    "balance level of trust" heuristic: lean on what is currently strong
    while every prioritised property keeps guaranteed representation.
    """
    if not readings:
        raise ValueError("cannot negotiate over an empty reading set")
    if emphasis < 1.0:
        raise ValueError("emphasis must be >= 1.0")
    priorities = dict(priorities or {})
    unknown = set(priorities) - set(readings)
    if unknown:
        raise ValueError(
            "priorities reference unmeasured properties: "
            f"{sorted(p.value for p in unknown)}"
        )
    if any(v < 0 for v in priorities.values()):
        raise ValueError("priorities must be non-negative")

    floors = {p: priorities.get(p, 1.0) for p in readings}
    floor_total = sum(floors.values())
    if floor_total <= 0:
        raise ValueError("at least one priority must be positive")

    performance = {p: max(readings[p], 1e-6) ** emphasis for p in readings}
    perf_total = sum(performance.values())

    weights = {}
    for prop in readings:
        floor_share = 0.5 * floors[prop] / floor_total
        perf_share = 0.5 * performance[prop] / perf_total
        weights[prop] = floor_share + perf_share

    score = aggregate_trust_score(readings, weights)

    conflicts = []
    notes = []
    emphasized = {
        p for p, w in weights.items() if w > 1.0 / len(weights) + 1e-9
    }
    for first, second, why in PROPERTY_TRADEOFFS:
        if first in emphasized and second in readings:
            conflicts.append((first, second, why))
        elif second in emphasized and first in readings:
            conflicts.append((second, first, why))
    for favored, pressured, __ in conflicts:
        notes.append(
            f"emphasising {favored.value} is documented to pressure "
            f"{pressured.value}; monitor its sensor after applying"
        )
    weak = score.weakest_property()
    if weak is not None and readings[weak] < 0.6:
        notes.append(
            f"{weak.value} is weak ({readings[weak]:.2f}); consider a "
            "corrective operator action before re-weighting"
        )
    return NegotiationOutcome(
        weights=weights, score=score, conflicts=conflicts, notes=notes
    )
