"""Group-fairness metrics for the fairness AI sensor.

§IV names fairness as an instrumentable sensor ("a sensor for fairness can
be instrumented to analyze raw input data as well as to characterize
fairness in decision making after model deployment") and §VIII sketches the
loan-application example (equitable vs procedural fairness).  These are the
standard group metrics such a sensor computes.
"""

from __future__ import annotations

import numpy as np


def _group_masks(sensitive: np.ndarray):
    sensitive = np.asarray(sensitive)
    groups = np.unique(sensitive)
    if len(groups) != 2:
        raise ValueError(
            f"binary-group metrics need exactly 2 groups, found {len(groups)}"
        )
    return sensitive == groups[0], sensitive == groups[1]


def demographic_parity_difference(
    y_pred: np.ndarray, sensitive: np.ndarray, positive_label=1
) -> float:
    """|P(ŷ=+ | group A) − P(ŷ=+ | group B)|; 0 is perfectly parity-fair."""
    y_pred = np.asarray(y_pred)
    mask_a, mask_b = _group_masks(sensitive)
    if not mask_a.any() or not mask_b.any():
        raise ValueError("both groups must be non-empty")
    rate_a = float(np.mean(y_pred[mask_a] == positive_label))
    rate_b = float(np.mean(y_pred[mask_b] == positive_label))
    return abs(rate_a - rate_b)


def disparate_impact_ratio(
    y_pred: np.ndarray, sensitive: np.ndarray, positive_label=1
) -> float:
    """min(rate_a/rate_b, rate_b/rate_a); 1 is fair, <0.8 fails the 4/5 rule.

    Returns 0.0 when one group receives no positive predictions at all while
    the other does, and 1.0 when neither group receives any.
    """
    y_pred = np.asarray(y_pred)
    mask_a, mask_b = _group_masks(sensitive)
    rate_a = float(np.mean(y_pred[mask_a] == positive_label))
    rate_b = float(np.mean(y_pred[mask_b] == positive_label))
    if rate_a == 0.0 and rate_b == 0.0:
        return 1.0
    if rate_a == 0.0 or rate_b == 0.0:
        return 0.0
    return min(rate_a / rate_b, rate_b / rate_a)


def equal_opportunity_difference(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    sensitive: np.ndarray,
    positive_label=1,
) -> float:
    """|TPR(group A) − TPR(group B)| among truly-positive samples."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    mask_a, mask_b = _group_masks(sensitive)
    tprs = []
    for mask in (mask_a, mask_b):
        positives = mask & (y_true == positive_label)
        if not positives.any():
            raise ValueError("a group has no positive ground-truth samples")
        tprs.append(float(np.mean(y_pred[positives] == positive_label)))
    return abs(tprs[0] - tprs[1])
