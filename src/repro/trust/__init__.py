"""Trustworthy-AI metrics: what the AI sensors actually measure.

Resilience (impact & complexity) quantifies "the ability of models to resist
and recover from an exploited machine learning vulnerability"; fairness and
performance metrics cover the remaining sensor types; the trust score
aggregates per-property readings into the single figure §VIII's
standardisation discussion asks for (with its caveats preserved).
"""

from repro.trust.resilience import (
    ResilienceReport,
    evasion_resilience,
    poisoning_resilience,
)
from repro.trust.properties import (
    PROPERTY_TRADEOFFS,
    TrustProperty,
    conflicting_properties,
    tradeoff_between,
)
from repro.trust.fairness import (
    demographic_parity_difference,
    disparate_impact_ratio,
    equal_opportunity_difference,
)
from repro.trust.score import TrustScore, aggregate_trust_score
from repro.trust.negotiation import NegotiationOutcome, negotiate_weights

__all__ = [
    "NegotiationOutcome",
    "PROPERTY_TRADEOFFS",
    "ResilienceReport",
    "TrustProperty",
    "TrustScore",
    "aggregate_trust_score",
    "conflicting_properties",
    "demographic_parity_difference",
    "disparate_impact_ratio",
    "equal_opportunity_difference",
    "evasion_resilience",
    "negotiate_weights",
    "poisoning_resilience",
    "tradeoff_between",
]
