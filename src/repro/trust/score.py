"""Trust-score aggregation across property readings.

§VIII ("AI trust score and AI sensors") calls producing "a coherent and
comparable trust score from measurements obtained by AI sensors" a key open
challenge, and criticises prior work for "considering all homogeneous
properties".  This module implements the pragmatic version SPATIAL can
offer today: per-property normalised scores combined under explicit,
application-chosen weights — with the heterogeneity made visible instead of
hidden (per-property breakdown always ships with the scalar).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.trust.properties import TrustProperty


@dataclass
class TrustScore:
    """A scalar trust score plus its full per-property decomposition."""

    value: float
    per_property: Dict[TrustProperty, float] = field(default_factory=dict)
    weights: Dict[TrustProperty, float] = field(default_factory=dict)

    def weakest_property(self) -> Optional[TrustProperty]:
        """The property dragging the score down the most (None if empty)."""
        if not self.per_property:
            return None
        return min(self.per_property, key=self.per_property.get)


def aggregate_trust_score(
    readings: Dict[TrustProperty, float],
    weights: Optional[Dict[TrustProperty, float]] = None,
) -> TrustScore:
    """Combine normalised per-property readings into one score.

    Parameters
    ----------
    readings:
        Property → score in [0, 1] (1 = fully trustworthy on that axis).
        Callers normalise their raw metrics first — e.g. resilience impact
        ``i`` becomes ``1 - i``, a fairness difference ``d`` becomes
        ``1 - d``.
    weights:
        Property → non-negative weight; defaults to uniform.  Properties
        present in ``weights`` but missing from ``readings`` raise, because
        silently scoring an unmeasured property is exactly the
        homogeneity mistake §VIII warns about.
    """
    if not readings:
        raise ValueError("cannot aggregate an empty set of readings")
    for prop, value in readings.items():
        if not 0.0 <= value <= 1.0:
            raise ValueError(
                f"reading for {prop.value} must be in [0, 1], got {value}"
            )
    if weights is None:
        weights = {prop: 1.0 for prop in readings}
    missing = set(weights) - set(readings)
    if missing:
        raise ValueError(
            "weighted properties lack readings: "
            f"{sorted(p.value for p in missing)}"
        )
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative")
    used = {p: w for p, w in weights.items() if w > 0}
    if not used:
        raise ValueError("at least one weight must be positive")
    total_weight = sum(used.values())
    value = sum(readings[p] * w for p, w in used.items()) / total_weight
    return TrustScore(
        value=float(np.clip(value, 0.0, 1.0)),
        per_property=dict(readings),
        weights=dict(used),
    )
