"""Resilience metrics: impact and complexity (§V, use case 2, Fig. 7c/d).

The paper estimates resilience with two complementary quantities:

* **complexity** — "the effort required by an attacker to achieve a
  successful attack": for evasion, "the processing power required to
  generate evasion data points" (reported in µs/sample, constant ≈ 37.86 µs
  because generation happens once on the NN); for poisoning, "the
  percentage of data that is poisoned out of all the data used for
  training".
* **impact** — "the extent of the attack's effect on the AI models": for
  evasion, "counting each successful misclassification gained through those
  evasion data points"; for poisoning, "the drifts in any performance metric
  of the model, e.g., accuracy, F1-score".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.ml.model import Classifier


@dataclass
class ResilienceReport:
    """Impact/complexity pair plus bookkeeping for the dashboard.

    ``impact`` is a fraction in [0, 1] (higher = more vulnerable).
    ``complexity`` units depend on ``kind``: µs/sample for evasion,
    poisoned-fraction for poisoning (higher = harder for the attacker).
    """

    kind: str
    impact: float
    complexity: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def impact_percent(self) -> float:
        """Impact as a percentage, the unit the paper reports."""
        return 100.0 * self.impact


def evasion_resilience(
    model: Classifier,
    X_clean: np.ndarray,
    X_adversarial: np.ndarray,
    y_true: np.ndarray,
    generation_cost_seconds: float,
) -> ResilienceReport:
    """Resilience of ``model`` against a pre-generated evasion set.

    Impact counts *successful* misclassifications: adversarial rows that the
    model gets wrong while it got the clean counterpart right.  Complexity
    is the per-sample generation cost in µs — constant across victim models
    when the set was generated once on a surrogate, reproducing the paper's
    constant ≈ 37.86 µs.
    """
    X_clean = np.asarray(X_clean, dtype=np.float64)
    X_adversarial = np.asarray(X_adversarial, dtype=np.float64)
    y_true = np.asarray(y_true)
    if X_clean.shape != X_adversarial.shape:
        raise ValueError("clean and adversarial sets must align row-for-row")
    if X_clean.shape[0] != y_true.shape[0]:
        raise ValueError("labels must align with the sample rows")
    if X_clean.shape[0] == 0:
        raise ValueError("cannot assess resilience on an empty set")

    clean_pred = model.predict(X_clean)
    adv_pred = model.predict(X_adversarial)
    clean_correct = clean_pred == y_true
    flipped = clean_correct & (adv_pred != y_true)
    impact = float(flipped.sum()) / X_clean.shape[0]
    per_sample_us = 1e6 * generation_cost_seconds / X_clean.shape[0]
    return ResilienceReport(
        kind="evasion",
        impact=impact,
        complexity=per_sample_us,
        details={
            "n_samples": float(X_clean.shape[0]),
            "n_successful": float(flipped.sum()),
            "clean_accuracy": float(clean_correct.mean()),
            "adversarial_accuracy": float(np.mean(adv_pred == y_true)),
        },
    )


def poisoning_resilience(
    baseline_metrics: Dict[str, float],
    poisoned_metrics: Dict[str, float],
    poison_fraction: float,
    metric: str = "accuracy",
    extra: Optional[Dict[str, float]] = None,
) -> ResilienceReport:
    """Resilience against a poisoning attack, from before/after metrics.

    Impact is the drift (drop) of the chosen performance metric, clipped to
    [0, 1]; complexity is the fraction of training data the attacker had to
    poison — the higher it is, the more effort a given impact required.
    """
    if metric not in baseline_metrics or metric not in poisoned_metrics:
        raise KeyError(f"metric {metric!r} missing from the metric snapshots")
    if not 0.0 <= poison_fraction <= 1.0:
        raise ValueError("poison_fraction must be in [0, 1]")
    drift = baseline_metrics[metric] - poisoned_metrics[metric]
    impact = float(np.clip(drift, 0.0, 1.0))
    details = {
        "baseline": float(baseline_metrics[metric]),
        "poisoned": float(poisoned_metrics[metric]),
        "drift": float(drift),
        "metric_is_" + metric: 1.0,
    }
    if extra:
        details.update(extra)
    return ResilienceReport(
        kind="poisoning",
        impact=impact,
        complexity=poison_fraction,
        details=details,
    )
