"""Federated learning substrate (the Fig. 2(c) architecture).

§III: "Currently, a global model is trained by data contributions of
clients collected in a privacy-preserving manner, e.g., using federated
learning, once trained, this model is then propagated to all the end
devices … the model is updated by a global aggregator, which combines
contributions from clients."

This package implements that distributed-ML architecture over the repo's
MLP models: clients train locally, an aggregator combines weight updates
(FedAvg, or robust variants — coordinate-wise median and trimmed mean —
against the poisoning clients Fig. 1 attributes to federated learning),
and the resulting global model plugs into the same SPATIAL sensors as the
centralised pipeline.
"""

from repro.federated.client import FederatedClient, MaliciousClient
from repro.federated.aggregation import (
    fedavg,
    coordinate_median,
    trimmed_mean,
)
from repro.federated.server import FederatedTrainer, RoundRecord

__all__ = [
    "FederatedClient",
    "FederatedTrainer",
    "MaliciousClient",
    "RoundRecord",
    "coordinate_median",
    "fedavg",
    "trimmed_mean",
]
