"""Federated clients: honest local trainers and the poisoning adversaries.

Fig. 1 lists data poisoning, label flipping, backdoors and inference
attacks against federated learning; :class:`MaliciousClient` implements the
training-time ones the experiments need — label flipping on the local shard
and model-update poisoning (scaled/sign-flipped updates).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.neural import MLPClassifier


class FederatedClient:
    """One data-holding participant.

    Parameters
    ----------
    client_id:
        Stable identifier used in round records.
    X, y:
        The client's private shard; never leaves the object — only weight
        updates do (the architecture's privacy premise).
    """

    def __init__(self, client_id: int, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("client shard must be non-empty and aligned")
        self.client_id = client_id
        self._X = X
        self._y = y

    @property
    def n_samples(self) -> int:
        return self._X.shape[0]

    def _local_data(self):
        """The data the local update trains on (hook for adversaries)."""
        return self._X, self._y

    def local_update(
        self, global_model: MLPClassifier, local_epochs: int = 1
    ) -> List[np.ndarray]:
        """Train locally from the global weights; return new parameters."""
        model = MLPClassifier(
            hidden_layers=global_model.hidden_layers,
            learning_rate=global_model.learning_rate,
            batch_size=global_model.batch_size,
            l2=global_model.l2,
            seed=global_model.seed + self.client_id + 1,
        )
        model.initialize(self._X.shape[1], global_model.classes_)
        model.set_parameters(global_model.get_parameters())
        X, y = self._local_data()
        model.partial_fit(X, y, n_epochs=local_epochs)
        return self._transform_update(model.get_parameters())

    def _transform_update(self, params: List[np.ndarray]) -> List[np.ndarray]:
        """Hook for model-poisoning adversaries; honest clients pass through."""
        return params


class MaliciousClient(FederatedClient):
    """A poisoning participant.

    Parameters
    ----------
    flip_rate:
        Fraction of the local shard whose labels are flipped to a random
        other class before every local update (data poisoning).
    update_scale:
        Multiplier applied to the *delta* from the global weights; values
        < 0 implement sign-flipping model poisoning, large values implement
        boosted updates.  1.0 leaves the update honest.
    seed:
        RNG seed for the label flipping.
    """

    def __init__(
        self,
        client_id: int,
        X: np.ndarray,
        y: np.ndarray,
        flip_rate: float = 0.0,
        update_scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(client_id, X, y)
        if not 0.0 <= flip_rate <= 1.0:
            raise ValueError("flip_rate must be in [0, 1]")
        self.flip_rate = flip_rate
        self.update_scale = update_scale
        self.seed = seed
        self._global_params: Optional[List[np.ndarray]] = None

    def _local_data(self):
        X, y = super()._local_data()
        if self.flip_rate == 0.0:
            return X, y
        rng = np.random.default_rng(self.seed + self.client_id)
        y = np.array(y, copy=True)
        classes = np.unique(y)
        if len(classes) < 2:
            return X, y
        n_flip = int(round(len(y) * self.flip_rate))
        victims = rng.choice(len(y), size=n_flip, replace=False)
        for i in victims:
            others = classes[classes != y[i]]
            y[i] = rng.choice(others)
        return X, y

    def local_update(
        self, global_model: MLPClassifier, local_epochs: int = 1
    ) -> List[np.ndarray]:
        self._global_params = global_model.get_parameters()
        return super().local_update(global_model, local_epochs)

    def _transform_update(self, params: List[np.ndarray]) -> List[np.ndarray]:
        if self.update_scale == 1.0 or self._global_params is None:
            return params
        poisoned = []
        for new, old in zip(params, self._global_params):
            poisoned.append(old + self.update_scale * (new - old))
        return poisoned
