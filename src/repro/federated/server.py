"""The federated trainer: global model, rounds, propagation.

Implements the Fig. 2(c) loop: broadcast the global model, let each client
compute a local update on its private shard, aggregate, install the result,
repeat — with per-round records so SPATIAL sensors can monitor the global
model exactly like a centralised one (the architecture's design point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.federated.aggregation import ParameterList, fedavg
from repro.federated.client import FederatedClient
from repro.ml.neural import MLPClassifier

Aggregator = Callable[[Sequence[ParameterList]], ParameterList]


@dataclass
class RoundRecord:
    """Audit record of one federated round."""

    round_index: int
    participants: List[int]
    global_accuracy: Optional[float] = None
    extras: dict = field(default_factory=dict)


class FederatedTrainer:
    """Coordinates clients and the aggregation rule around a global model.

    Parameters
    ----------
    clients:
        The participating :class:`FederatedClient` objects.
    hidden_layers / learning_rate / batch_size / l2 / seed:
        Configuration of the global MLP (clients clone it for local work).
    aggregator:
        Combination rule; defaults to sample-weighted FedAvg.  Robust rules
        from :mod:`repro.federated.aggregation` slot in unchanged.
    weighted:
        Weight FedAvg-compatible aggregators by client sample counts.
    """

    def __init__(
        self,
        clients: Sequence[FederatedClient],
        hidden_layers: Sequence[int] = (32, 16),
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        l2: float = 1e-5,
        seed: int = 0,
        aggregator: Optional[Aggregator] = None,
        weighted: bool = True,
    ) -> None:
        if not clients:
            raise ValueError("need at least one client")
        self.clients = list(clients)
        self.aggregator = aggregator
        self.weighted = weighted
        self.seed = seed
        n_features = self.clients[0]._X.shape[1]
        classes = np.unique(
            np.concatenate([c._y for c in self.clients])
        )
        self.global_model = MLPClassifier(
            hidden_layers=hidden_layers,
            learning_rate=learning_rate,
            batch_size=batch_size,
            l2=l2,
            seed=seed,
        )
        self.global_model.initialize(n_features, classes)
        self.history: List[RoundRecord] = []

    def run_round(
        self,
        local_epochs: int = 1,
        participation: float = 1.0,
        eval_data=None,
    ) -> RoundRecord:
        """Execute one round: sample clients, update locally, aggregate."""
        if not 0.0 < participation <= 1.0:
            raise ValueError("participation must be in (0, 1]")
        rng = np.random.default_rng(self.seed + len(self.history))
        n_selected = max(1, int(round(len(self.clients) * participation)))
        selected_idx = rng.choice(
            len(self.clients), size=n_selected, replace=False
        )
        selected = [self.clients[i] for i in selected_idx]

        updates = [
            client.local_update(self.global_model, local_epochs)
            for client in selected
        ]
        if self.aggregator is None:
            weights = (
                [c.n_samples for c in selected] if self.weighted else None
            )
            aggregated = fedavg(updates, weights)
        else:
            aggregated = self.aggregator(updates)
        self.global_model.set_parameters(aggregated)

        record = RoundRecord(
            round_index=len(self.history),
            participants=[c.client_id for c in selected],
        )
        if eval_data is not None:
            X_eval, y_eval = eval_data
            record.global_accuracy = self.global_model.score(X_eval, y_eval)
        self.history.append(record)
        return record

    def run(
        self,
        n_rounds: int,
        local_epochs: int = 1,
        participation: float = 1.0,
        eval_data=None,
    ) -> List[RoundRecord]:
        """Run several rounds; returns their records."""
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        return [
            self.run_round(local_epochs, participation, eval_data)
            for __ in range(n_rounds)
        ]

    @property
    def n_rounds(self) -> int:
        return len(self.history)
