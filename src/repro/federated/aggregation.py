"""Aggregation rules for combining client parameter updates.

FedAvg is the paper's "global aggregator, which combines contributions from
clients"; the robust rules (coordinate-wise median, trimmed mean) are the
standard defences against the poisoning clients the Fig. 1 taxonomy lists
for federated learning, used by the federated ablation bench.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

ParameterList = List[np.ndarray]


def _validate(updates: Sequence[ParameterList]) -> None:
    if not updates:
        raise ValueError("need at least one client update")
    reference = updates[0]
    for update in updates[1:]:
        if len(update) != len(reference):
            raise ValueError("client updates disagree on parameter count")
        for a, b in zip(update, reference):
            if a.shape != b.shape:
                raise ValueError("client updates disagree on parameter shapes")


def fedavg(
    updates: Sequence[ParameterList],
    weights: Optional[Sequence[float]] = None,
) -> ParameterList:
    """Weighted average of client parameters (McMahan et al.'s FedAvg).

    ``weights`` defaults to uniform; pass client sample counts for the
    canonical data-weighted variant.
    """
    _validate(updates)
    if weights is None:
        weights = [1.0] * len(updates)
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != len(updates):
        raise ValueError("one weight per client update required")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    weights = weights / weights.sum()
    aggregated = []
    for index in range(len(updates[0])):
        stacked = np.stack([u[index] for u in updates])
        aggregated.append(
            np.tensordot(weights, stacked, axes=(0, 0))
        )
    return aggregated


def coordinate_median(updates: Sequence[ParameterList]) -> ParameterList:
    """Element-wise median across clients — robust to < 50 % outliers."""
    _validate(updates)
    return [
        np.median(np.stack([u[index] for u in updates]), axis=0)
        for index in range(len(updates[0]))
    ]


def trimmed_mean(
    updates: Sequence[ParameterList], trim: int = 1
) -> ParameterList:
    """Per-coordinate mean after dropping the ``trim`` largest and smallest
    values — tolerates up to ``trim`` poisoned clients per coordinate."""
    _validate(updates)
    n = len(updates)
    if trim < 0 or 2 * trim >= n:
        raise ValueError(f"trim={trim} leaves no clients out of {n}")
    aggregated = []
    for index in range(len(updates[0])):
        stacked = np.sort(np.stack([u[index] for u in updates]), axis=0)
        kept = stacked[trim : n - trim]
        aggregated.append(kept.mean(axis=0))
    return aggregated
