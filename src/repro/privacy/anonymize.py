"""k-anonymity by quantile generalisation.

The second obfuscation family §VIII names ("data anonymity techniques"):
continuous features are generalised into quantile bins (each value replaced
by its bin midpoint) and the binning is coarsened until every combination
of generalised values — every equivalence class — contains at least ``k``
rows, so no record is distinguishable from k−1 others.
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

import numpy as np


def _generalize(X: np.ndarray, n_bins: int) -> np.ndarray:
    """Replace each value with the midpoint of its per-feature quantile bin."""
    out = np.empty_like(X)
    for j in range(X.shape[1]):
        column = X[:, j]
        edges = np.unique(np.quantile(column, np.linspace(0, 1, n_bins + 1)))
        if len(edges) <= 2:
            out[:, j] = column.mean()
            continue
        assignment = np.clip(
            np.searchsorted(edges, column, side="right") - 1,
            0,
            len(edges) - 2,
        )
        midpoints = 0.5 * (edges[:-1] + edges[1:])
        out[:, j] = midpoints[assignment]
    return out


def smallest_group_size(X: np.ndarray) -> int:
    """Size of the smallest equivalence class (rows with identical values)."""
    X = np.asarray(X, dtype=np.float64)
    counts = Counter(row.tobytes() for row in X)
    return min(counts.values())


def k_anonymize(
    X: np.ndarray, k: int, max_bins: int = 32
) -> Tuple[np.ndarray, int]:
    """Generalise ``X`` until every equivalence class has ≥ k rows.

    Starts from ``max_bins`` quantile bins per feature and halves the bin
    count until the k-anonymity constraint holds (1 bin per feature — every
    row identical — always satisfies it for k ≤ n).  Returns the
    generalised matrix and the bin count used.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ValueError("X must be a non-empty 2-D array")
    if not 1 <= k <= X.shape[0]:
        raise ValueError(f"k must be in [1, {X.shape[0]}]")
    n_bins = max(1, max_bins)
    while True:
        generalized = _generalize(X, n_bins)
        if smallest_group_size(generalized) >= k or n_bins == 1:
            return generalized, n_bins
        n_bins = max(1, n_bins // 2)
