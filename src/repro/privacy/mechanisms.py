"""Core differential-privacy mechanisms.

Standard building blocks: the Laplace mechanism for ε-DP, the Gaussian
mechanism for (ε, δ)-DP, and randomized response for label privacy.  All
mechanisms are seeded for reproducibility of the experiments that use them.
"""

from __future__ import annotations

import numpy as np


def laplace_mechanism(
    values: np.ndarray,
    sensitivity: float,
    epsilon: float,
    seed: int = 0,
) -> np.ndarray:
    """Add Laplace(Δ/ε) noise — the classic ε-DP release.

    Parameters
    ----------
    values:
        The exact query answers (any shape).
    sensitivity:
        L1 sensitivity Δ of the query.
    epsilon:
        Privacy budget; smaller = noisier = more private.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    values = np.asarray(values, dtype=np.float64)
    rng = np.random.default_rng(seed)
    scale = sensitivity / epsilon
    return values + rng.laplace(0.0, scale, size=values.shape)


def gaussian_mechanism(
    values: np.ndarray,
    sensitivity: float,
    epsilon: float,
    delta: float = 1e-5,
    seed: int = 0,
) -> np.ndarray:
    """Add calibrated Gaussian noise for (ε, δ)-DP.

    Uses the analytic calibration σ = Δ · sqrt(2 ln(1.25/δ)) / ε (valid for
    ε ≤ 1; conservative above).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    values = np.asarray(values, dtype=np.float64)
    rng = np.random.default_rng(seed)
    sigma = sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon
    return values + rng.normal(0.0, sigma, size=values.shape)


def randomized_response(
    labels: np.ndarray, epsilon: float, seed: int = 0
) -> np.ndarray:
    """ε-DP label release: keep the true label w.p. e^ε/(e^ε + k − 1),
    otherwise answer uniformly among the other labels.

    Works for any discrete label set (k classes inferred from the data).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    labels = np.asarray(labels)
    classes = np.unique(labels)
    k = len(classes)
    if k < 2:
        return labels.copy()
    rng = np.random.default_rng(seed)
    keep_probability = np.exp(epsilon) / (np.exp(epsilon) + k - 1)
    out = np.array(labels, copy=True)
    for i in range(len(labels)):
        if rng.random() >= keep_probability:
            others = classes[classes != labels[i]]
            out[i] = rng.choice(others)
    return out
