"""Privacy-preserving data substrate (§VIII "Privacy-preserving data and
computations").

"Regulatory guidelines in the use of data, e.g., EU GDPR, forbid the
inclusion of private and sensitive data … Thus, data is required to be
obfuscated before it can be used within the AI pipelines.  Existing
solutions … include differential privacy and data anonymity techniques.
However, data removal degrades the decision making process performance."

This package provides both families — differential-privacy mechanisms and
k-anonymous generalisation — plus the membership-inference risk metric the
privacy sensor reports, so the accuracy-vs-privacy trade-off the paper
describes is measurable end to end (see the privacy ablation bench).
"""

from repro.privacy.mechanisms import (
    gaussian_mechanism,
    laplace_mechanism,
    randomized_response,
)
from repro.privacy.dp_data import privatize_dataset
from repro.privacy.anonymize import k_anonymize, smallest_group_size
from repro.privacy.membership import membership_inference_risk

__all__ = [
    "gaussian_mechanism",
    "k_anonymize",
    "laplace_mechanism",
    "membership_inference_risk",
    "privatize_dataset",
    "randomized_response",
    "smallest_group_size",
]
