"""Differentially-private dataset release for the obfuscation stage.

§VIII: "data is required to be obfuscated before it can be used within the
AI pipelines" — this module perturbs the full feature matrix under a
per-row privacy budget, splitting ε equally across features and using each
feature's observed range as its sensitivity (input perturbation).  Training
on the release exercises exactly the accuracy-degradation trade-off the
paper discusses.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.mechanisms import laplace_mechanism


def privatize_dataset(
    X: np.ndarray,
    epsilon: float,
    clip_to_range: bool = True,
    seed: int = 0,
) -> np.ndarray:
    """Release an ε-DP perturbed copy of ``X`` (input perturbation).

    The budget is split equally over columns; each column's sensitivity is
    its empirical range.  ``clip_to_range`` projects the noisy values back
    into the original per-feature ranges so downstream scalers stay sane.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n_features = X.shape[1]
    per_feature_epsilon = epsilon / n_features
    lows = X.min(axis=0)
    highs = X.max(axis=0)
    out = np.empty_like(X)
    for j in range(n_features):
        sensitivity = float(highs[j] - lows[j])
        out[:, j] = laplace_mechanism(
            X[:, j], sensitivity, per_feature_epsilon, seed=seed + j
        )
        if clip_to_range:
            out[:, j] = np.clip(out[:, j], lows[j], highs[j])
    return out
