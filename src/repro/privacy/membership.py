"""Membership-inference risk: the confidentiality metric behind the
privacy sensor.

§IV's confidentiality definition covers "ensuring that its output
predictions do not leak information that can be used to … reconstruct its
training data"; the standard test is the confidence-threshold membership
attack (Shokri et al. / Yeom et al.): an overfit model is systematically
more confident on rows it trained on.  The risk score is the attacker's
*advantage* — how much better than coin-flipping they distinguish members
from non-members at the best confidence threshold.
"""

from __future__ import annotations

import numpy as np

from repro.ml.model import Classifier


def membership_inference_risk(
    model: Classifier,
    X_members: np.ndarray,
    X_non_members: np.ndarray,
) -> float:
    """Best-threshold membership advantage in [0, 1].

    0 means predictions leak nothing about membership (TPR = FPR at every
    threshold); values approaching 1 mean members are near-perfectly
    identifiable from prediction confidence — a confidentiality breach.
    """
    X_members = np.asarray(X_members, dtype=np.float64)
    X_non_members = np.asarray(X_non_members, dtype=np.float64)
    if X_members.shape[0] == 0 or X_non_members.shape[0] == 0:
        raise ValueError("need non-empty member and non-member sets")
    member_conf = model.predict_proba(X_members).max(axis=1)
    outsider_conf = model.predict_proba(X_non_members).max(axis=1)
    thresholds = np.unique(np.concatenate([member_conf, outsider_conf]))
    best = 0.0
    for threshold in thresholds:
        tpr = float(np.mean(member_conf >= threshold))
        fpr = float(np.mean(outsider_conf >= threshold))
        best = max(best, tpr - fpr)
    return best
