#!/usr/bin/env python3
"""Use case 1: the medical e-calling application, monitored by SPATIAL.

Reproduces the Fig. 6 story interactively:

1. train the five paper models and report clean baselines;
2. poison the training labels at increasing rates and watch
   accuracy/precision/recall degrade;
3. detect the poisoning with the SHAP-dissimilarity sensor (Fig. 6a-iv);
4. let the operator react with label sanitisation and verify recovery.

Run:  python examples/fall_detection_monitoring.py
"""

import numpy as np

from repro.attacks import RandomLabelFlippingAttack
from repro.core.feedback import sanitize_labels_knn
from repro.datasets import generate_unimib_like, to_binary_fall_task
from repro.ml import (
    DNNClassifier,
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    MLPClassifier,
    RandomForestClassifier,
    StandardScaler,
    accuracy_score,
    precision_score,
    recall_score,
    train_test_split,
)
from repro.xai import KernelShapExplainer, knn_explanation_dissimilarity

MODELS = {
    "LR": lambda: LogisticRegressionClassifier(n_epochs=30, seed=0),
    "DT": lambda: DecisionTreeClassifier(max_depth=14, seed=0),
    "RF": lambda: RandomForestClassifier(n_estimators=30, max_depth=14, seed=0),
    "MLP": lambda: MLPClassifier(hidden_layers=(64, 32), n_epochs=40, seed=0),
    "DNN": lambda: DNNClassifier(hidden_layers=(128, 64, 32), n_epochs=40, seed=0),
}


def main() -> None:
    print("generating synthetic UniMiB-SHAR-like data ...")
    dataset = generate_unimib_like(n_samples=3000, seed=0)
    X, y = to_binary_fall_task(dataset)
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, seed=0)
    scaler = StandardScaler().fit(X_train)
    X_train, X_test = scaler.transform(X_train), scaler.transform(X_test)

    # 1. clean baselines (paper: LR 73, DT 90, RF/MLP/DNN 97)
    print("\n== clean baselines ==")
    for name, factory in MODELS.items():
        model = factory().fit(X_train, y_train)
        print(f"  {name:4s} accuracy={model.score(X_test, y_test):.3f}")

    # 2. label-flipping sweep on the random forest (the resilient model)
    print("\n== label flipping vs RF (paper: stable to ~30%) ==")
    for rate in (0.0, 0.1, 0.3, 0.5):
        result = RandomLabelFlippingAttack(rate=rate, seed=0).apply(
            X_train, y_train
        )
        model = MODELS["RF"]().fit(result.X, result.y)
        y_pred = model.predict(X_test)
        print(
            f"  p={rate:4.0%}  acc={accuracy_score(y_test, y_pred):.3f}"
            f"  prec={precision_score(y_test, y_pred):.3f}"
            f"  rec={recall_score(y_test, y_pred):.3f}"
        )

    # 3. SHAP-dissimilarity poisoning detector on the DNN (Fig. 6a-iv)
    print("\n== SHAP dissimilarity detector (rises with poison rate) ==")
    falls = X_test[y_test == 1][:15]
    for rate in (0.0, 0.2, 0.5):
        result = RandomLabelFlippingAttack(rate=rate, seed=0).apply(
            X_train, y_train
        )
        model = MLPClassifier(
            hidden_layers=(32,), n_epochs=25, learning_rate=0.01, seed=0
        ).fit(result.X, result.y)
        explainer = KernelShapExplainer(
            model.predict_proba, X_train[:30], n_coalitions=48, seed=0
        )
        explanations = explainer.shap_values_batch(falls, class_index=1)
        metric = knn_explanation_dissimilarity(falls, explanations, k=5)
        print(f"  p={rate:4.0%}  dissimilarity={metric:.4f}")

    # 4. operator countermeasure: label sanitisation
    print("\n== operator reaction: kNN label sanitisation at p=30% ==")
    poisoned = RandomLabelFlippingAttack(rate=0.3, seed=0).apply(X_train, y_train)
    before = MODELS["DT"]().fit(poisoned.X, poisoned.y).score(X_test, y_test)
    repaired_labels = sanitize_labels_knn(poisoned.X, poisoned.y, k=7, threshold=0.7)
    after = MODELS["DT"]().fit(poisoned.X, repaired_labels).score(X_test, y_test)
    flipped_remaining = int(np.sum(repaired_labels != y_train))
    print(f"  DT accuracy poisoned:   {before:.3f}")
    print(f"  DT accuracy sanitised:  {after:.3f}")
    print(f"  labels still wrong:     {flipped_remaining}/{len(y_train)}")


if __name__ == "__main__":
    main()
