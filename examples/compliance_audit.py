#!/usr/bin/env python3
"""Compliance artifacts: model card, dashboard export, audit verification.

The regulatory thread of the paper (§I, §III): the dashboard "facilitates
the verification of AI systems for potential audits and ensures compliance
with accountability regulations".  This example produces the artifacts an
audit binder needs — a generated model card, the dashboard's JSON export,
an integrity verification of that export — and renders the same readings
for three stakeholder audiences.

Run:  python examples/compliance_audit.py
"""

from repro.core import (
    AIDashboard,
    AlertRule,
    Audience,
    ContinuousMonitor,
    DataQualitySensor,
    ModelContext,
    PerformanceSensor,
    PrivacySensor,
    SensorRegistry,
    generate_model_card,
    narrate_report,
    verify_export,
)
from repro.datasets import generate_unimib_like, to_binary_fall_task
from repro.ml import RandomForestClassifier, StandardScaler
from repro.ml.pipeline import AIPipeline


def main() -> None:
    dataset = generate_unimib_like(n_samples=1500, seed=0)
    X, y = to_binary_fall_task(dataset)
    X = StandardScaler().fit_transform(X)
    pipeline = AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=15, max_depth=12, seed=0
        ),
        seed=0,
    )

    registry = SensorRegistry()
    registry.register(PerformanceSensor(clock=lambda: 1.0))
    registry.register(DataQualitySensor(clock=lambda: 1.0))
    registry.register(PrivacySensor(n_samples=60, clock=lambda: 1.0))
    dashboard = AIDashboard()
    dashboard.add_rule(
        AlertRule(sensor="performance", threshold=0.85, message="SLO breach")
    )
    monitor = ContinuousMonitor(
        registry,
        dashboard,
        lambda: ModelContext(
            model=pipeline.context.model,
            X_train=pipeline.context.X_train,
            y_train=pipeline.context.y_train,
            X_test=pipeline.context.X_test,
            y_test=pipeline.context.y_test,
            model_version=pipeline.context.model_version,
        ),
    )

    pipeline.run()
    monitor.on_model_update()
    monitor.run(2)

    print("=" * 64)
    print(
        generate_model_card(
            pipeline,
            dashboard=dashboard,
            registry=registry,
            model_name="fall-detection-rf",
            intended_use=(
                "Detect falls of elderly users from pocket accelerometer "
                "windows and trigger e-calling. Decision support only."
            ),
        )
    )

    print("=" * 64)
    print("audit verification of the dashboard export:")
    export = dashboard.to_json()
    report = verify_export(export)
    print(f"  sensors={report.n_sensors} readings={report.n_readings} "
          f"alerts={report.n_alerts}")
    print(f"  audit passed: {report.passed}")
    for finding in report.findings:
        print(f"  [{finding.severity}] {finding.sensor}: {finding.message}")

    print("=" * 64)
    latest = [dashboard.latest(s) for s in dashboard.sensors]
    for audience in Audience:
        print(f"\n-- narrated for {audience.value} --")
        for line in narrate_report(latest, audience):
            print("  " + line)


if __name__ == "__main__":
    main()
