#!/usr/bin/env python3
"""Capacity-load experiments on the simulated Fig. 8(a) deployment.

Stands up the six-machine SPATIAL deployment (Kong gateway + five metric
micro-services) in the discrete-event simulator and replays the paper's
JMeter experiments:

* Experiment 1 — 100 concurrent threads against the impact-resilience and
  SHAP/LIME micro-services (Fig. 8b/8c);
* Experiment 2 — image-LIME under 5→25 concurrent requests (Fig. 8d).

Run:  python examples/capacity_load.py
"""

from repro.gateway import LoadGenerator, ThreadGroup, build_paper_deployment


def run(route, n_threads, iterations, payload="tabular", seed=1):
    sim, gateway = build_paper_deployment(seed=seed)
    generator = LoadGenerator(sim, gateway)
    generator.add_thread_group(
        ThreadGroup(
            route=route,
            n_threads=n_threads,
            rampup_seconds=1.0,
            iterations=iterations,
            payload=payload,
        )
    )
    return generator.run()


def main() -> None:
    print("== Experiment 1: 100-thread groups (Fig. 8b/8c) ==")
    for route, paper_ms, iterations in (
        ("impact", 1600.0, 3),
        ("shap", 228.6, 60),
        ("lime", 243.4, 60),
    ):
        report = run(route, n_threads=100, iterations=iterations)
        print(
            f"  {route:8s} avg={report.avg_response_ms:7.1f} ms "
            f"(paper ≈ {paper_ms:6.1f} ms)  p95={report.p95_response_ms:7.1f} ms "
            f"tput={report.throughput_rps:6.1f}/s err={report.error_rate:.1%}"
        )

    print("\n== Experiment 2: image LIME, 5→25 threads (Fig. 8d) ==")
    for n in (5, 10, 15, 20, 25):
        report = run("lime", n_threads=n, iterations=3, payload="image")
        bar = "#" * int(report.avg_response_ms / 150)
        print(f"  threads={n:2d}  avg={report.avg_response_ms:7.1f} ms  {bar}")

    print("\n== gateway routing table ==")
    sim, gateway = build_paper_deployment()
    for route in gateway.routes:
        print(f"  /{route}")


if __name__ == "__main__":
    main()
