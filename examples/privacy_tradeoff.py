#!/usr/bin/env python3
"""The accuracy-vs-privacy trade-off (§VIII), measured end to end.

Sweeps the differential-privacy budget over the network-traffic dataset and
reports, for each ε: the model's accuracy (trained and evaluated on the
obfuscated release) and the membership-inference risk the privacy sensor
would show on the dashboard.  Also demonstrates k-anonymity generalisation
and the negotiation layer proposing trust-score weights with the
privacy↔accuracy conflict surfaced to the operator.

Run:  python examples/privacy_tradeoff.py
"""

import numpy as np

from repro.datasets import generate_network_dataset
from repro.ml import (
    StandardScaler,
    lightgbm_like,
    train_test_split,
)
from repro.privacy import (
    k_anonymize,
    membership_inference_risk,
    privatize_dataset,
    smallest_group_size,
)
from repro.trust import TrustProperty, negotiate_weights


def main() -> None:
    dataset = generate_network_dataset(
        class_counts={"web": 120, "interactive": 25, "video": 30}, seed=0
    )
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=0
    )

    print("== differential privacy: budget sweep ==")
    print(f"  {'epsilon':>8s} {'accuracy':>9s} {'memb.risk':>10s}")
    results = {}
    for epsilon in (1000.0, 50.0, 10.0, 2.0):
        X_tr = privatize_dataset(X_train, epsilon=epsilon, seed=0)
        X_te = privatize_dataset(X_test, epsilon=epsilon, seed=1)
        scaler = StandardScaler().fit(X_tr)
        model = lightgbm_like(n_estimators=15, seed=0).fit(
            scaler.transform(X_tr), y_train
        )
        accuracy = model.score(scaler.transform(X_te), y_test)
        risk = membership_inference_risk(
            model, scaler.transform(X_tr)[:60], scaler.transform(X_te)[:60]
        )
        results[epsilon] = (accuracy, risk)
        print(f"  {epsilon:8.1f} {accuracy:9.3f} {risk:10.3f}")

    print("\n== k-anonymity generalisation (duration features) ==")
    for k in (2, 5, 20):
        generalized, bins = k_anonymize(X_train[:, :2], k=k)
        print(
            f"  k={k:3d}: quantile bins={bins:2d}, "
            f"smallest group={smallest_group_size(generalized)}"
        )

    print("\n== negotiating trust-score weights (privacy prioritised) ==")
    accuracy, risk = results[10.0]
    readings = {
        TrustProperty.ACCURACY: accuracy,
        TrustProperty.PRIVACY: 1.0 - risk,
        TrustProperty.ROBUSTNESS: 0.8,
    }
    outcome = negotiate_weights(
        readings, priorities={TrustProperty.PRIVACY: 3.0}
    )
    print(f"  proposed trust score: {outcome.score.value:.3f}")
    for prop, weight in sorted(outcome.weights.items(), key=lambda kv: -kv[1]):
        print(f"    weight[{prop.value}] = {weight:.3f}")
    for note in outcome.notes:
        print(f"  note: {note}")


if __name__ == "__main__":
    main()
