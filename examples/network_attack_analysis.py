#!/usr/bin/env python3
"""Use case 2: network activity classification under attack.

Reproduces the Fig. 7 story: train NN / LightGBM-like / XGBoost-like
classifiers on the 382-trace dataset, launch the white-box FGSM evasion
(generated on the NN, transferred to the tree ensembles), quantify
resilience with impact & complexity, run the poisoning family (label
flipping, swapping, GAN) and read the SHAP feature-ranking shift.

Run:  python examples/network_attack_analysis.py
"""

import numpy as np

from repro.attacks import (
    FgsmAttack,
    GanPoisoningAttack,
    RandomLabelSwappingAttack,
    TargetedLabelFlippingAttack,
    ThreatModel,
)
from repro.datasets import generate_network_dataset
from repro.datasets.nettraffic import FEATURE_NAMES
from repro.ml import (
    MLPClassifier,
    StandardScaler,
    accuracy_score,
    lightgbm_like,
    train_test_split,
    xgboost_like,
)
from repro.trust.resilience import evasion_resilience, poisoning_resilience
from repro.xai import KernelShapExplainer


def train_models(X_train, y_train):
    return {
        "NN": MLPClassifier(
            hidden_layers=(32, 16), n_epochs=150, learning_rate=0.01, seed=0
        ).fit(X_train, y_train),
        "LightGBM-like": lightgbm_like(n_estimators=30, seed=0).fit(
            X_train, y_train
        ),
        "XGBoost-like": xgboost_like(n_estimators=30, seed=0).fit(
            X_train, y_train
        ),
    }


def main() -> None:
    print("generating the 382-trace network dataset (304 web / 34 interactive / 44 video) ...")
    dataset = generate_network_dataset(seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.27, seed=0
    )
    scaler = StandardScaler().fit(X_train)
    X_train, X_test = scaler.transform(X_train), scaler.transform(X_test)
    print(f"test set: {len(y_test)} samples (paper: 103)")

    models = train_models(X_train, y_train)
    print("\n== clean baselines (paper: NN 96, LGBM 94, XGB 94) ==")
    for name, model in models.items():
        print(f"  {name:14s} accuracy={model.score(X_test, y_test):.3f}")

    # white-box FGSM generated on the NN, transferred to the others
    print("\n== FGSM evasion (white-box on NN, transferred) ==")
    attack = FgsmAttack(
        models["NN"], epsilon=0.9, threat_model=ThreatModel.white_box()
    )
    adversarial = attack.apply(X_test, y_test)
    print(f"  generated {adversarial.n_affected} adversarial samples "
          f"in {adversarial.details['per_sample_us']:.1f} µs/sample")
    for name, model in models.items():
        report = evasion_resilience(
            model, X_test, adversarial.X, y_test, adversarial.cost_seconds
        )
        print(
            f"  {name:14s} adv.accuracy={report.details['adversarial_accuracy']:.3f}"
            f"  impact={report.impact_percent:.0f}%"
            f"  complexity={report.complexity:.2f} µs"
        )

    # poisoning family on the NN
    print("\n== poisoning attacks vs NN (impact/complexity, Fig. 7c/d) ==")
    baseline_metrics = {
        "accuracy": accuracy_score(y_test, models["NN"].predict(X_test))
    }
    attacks = {
        "targeted flip->video": lambda r: TargetedLabelFlippingAttack(
            rate=r, target_label="video", seed=0
        ),
        "random swap": lambda r: RandomLabelSwappingAttack(rate=r, seed=0),
        "GAN (CTGAN-like)": lambda r: GanPoisoningAttack(
            n_synthetic=int(r * len(y_train) * 4),
            poison_label="video",
            seed=0,
        ),
    }
    for attack_name, make_attack in attacks.items():
        print(f"  -- {attack_name}")
        for rate in (0.1, 0.3, 0.5):
            result = make_attack(rate).apply(X_train, y_train)
            poisoned_model = MLPClassifier(
                hidden_layers=(32, 16), n_epochs=100, learning_rate=0.01, seed=0
            ).fit(result.X, result.y)
            poisoned_metrics = {
                "accuracy": accuracy_score(y_test, poisoned_model.predict(X_test))
            }
            report = poisoning_resilience(
                baseline_metrics, poisoned_metrics, poison_fraction=rate
            )
            print(
                f"     rate={rate:3.0%}  impact={report.impact_percent:5.1f}%"
                f"  complexity={report.complexity:.2f}"
            )

    # SHAP ranking shift (Fig. 7a/b)
    print("\n== SHAP top features for the web class, benign vs adversarial ==")
    nn = models["NN"]
    web_class = int(np.flatnonzero(nn.classes_ == "web")[0])
    explainer = KernelShapExplainer(
        nn.predict_proba, X_train[:40], n_coalitions=96, seed=0
    )
    benign_imp = explainer.mean_abs_importance(X_test[:10], web_class)
    adv_imp = explainer.mean_abs_importance(adversarial.X[:10], web_class)
    print(f"  {'feature':28s} {'benign':>8s} {'evasion':>8s}")
    order = np.argsort(-benign_imp)[:8]
    for j in order:
        print(
            f"  {FEATURE_NAMES[j]:28s} {benign_imp[j]:8.4f} {adv_imp[j]:8.4f}"
        )


if __name__ == "__main__":
    main()
