#!/usr/bin/env python3
"""Crash-safe monitoring: WAL replay rebuilds the dashboard bit-for-bit.

The telemetry subsystem's core promise, demonstrated end to end:

1. run a monitored deployment where every sensor reading flows over the
   telemetry bus into a write-ahead log and windowed rollups;
2. "crash" the process — no clean shutdown, a torn record on disk;
3. replay the WAL into a fresh dashboard and rollup store;
4. verify the rebuilt state matches the live run exactly, then query the
   stream (per-source rollups, worst sensors) from the cold tier alone.

Run:  python examples/telemetry_replay.py
"""

import tempfile
from pathlib import Path

from repro.core.dashboard import AIDashboard
from repro.core.monitor import ContinuousMonitor
from repro.core.registry import SensorRegistry
from repro.core.sensors import AISensor, ModelContext, SensorReading
from repro.telemetry import TelemetryPipeline, TelemetryQuery, replay
from repro.trust.properties import TrustProperty


class DriftingSensor(AISensor):
    """Deterministic stand-in for a trust probe; no ML needed here."""

    property = TrustProperty.ACCURACY

    def __init__(self, name, base, drift, clock):
        super().__init__(name, clock)
        self.base = base
        self.drift = drift
        self._calls = 0

    def measure(self, context):
        self._calls += 1
        value = self.base + self.drift * self._calls + 0.05 * (self._calls % 3)
        return self._reading(value, context, details={"call": self._calls})


def main() -> None:
    wal_dir = Path(tempfile.mkdtemp(prefix="spatial-telemetry-")) / "wal"
    clock = {"t": 0.0}

    def tick():
        clock["t"] += 0.5
        return clock["t"]

    # 1. live monitored run: monitor → bus → (dashboard, WAL, rollups)
    registry = SensorRegistry()
    registry.register(DriftingSensor("performance", 0.95, -0.004, tick))
    registry.register(DriftingSensor("fairness", 0.70, -0.001, tick))
    live_dashboard = AIDashboard()
    pipeline = TelemetryPipeline(wal_dir=wal_dir, window_seconds=5.0)
    monitor = ContinuousMonitor(
        registry,
        live_dashboard,
        lambda: ModelContext(model_version=3),
        telemetry=pipeline,
    )
    print(f"running 60 monitoring rounds (WAL at {wal_dir}) ...")
    monitor.run(60)

    # 2. crash: buffers reach the disk but close() never runs, and the
    # final record is torn mid-write
    pipeline.wal.flush()
    with open(pipeline.wal.segments[-1], "a", encoding="utf-8") as fh:
        fh.write('{"crc": 1, "event": {"source": "performance", "val')
    pipeline.rollups.flush()
    print("simulated crash: no clean shutdown, torn record appended")

    # 3. recovery: replay the WAL into a fresh dashboard
    rebuilt_dashboard = AIDashboard()
    n_events = 0
    for event in replay(wal_dir):
        rebuilt_dashboard.add_reading(SensorReading.from_event(event))
        n_events += 1
    print(f"replayed {n_events} events (torn tail dropped)")

    # 4. the rebuilt state matches the live run exactly
    for sensor in live_dashboard.sensors:
        live = live_dashboard.values(sensor)
        cold = rebuilt_dashboard.values(sensor)
        status = "MATCH" if live == cold else "MISMATCH"
        print(
            f"  {sensor:<14} live={len(live):>3} readings, "
            f"replayed={len(cold):>3} -> {status}"
        )
        assert live == cold

    # ... and the cold tier alone answers the monitoring questions
    query = TelemetryQuery(wal_dir=wal_dir)
    rollups = query.rebuild_rollups(window_seconds=5.0)
    print("\nper-sensor rollups rebuilt from the WAL (5s windows):")
    for source in rollups.sources:
        totals = rollups.totals(source)
        print(
            f"  {source:<14} count={int(totals['count']):>3} "
            f"mean={totals['mean']:.3f} min={totals['min']:.3f} "
            f"max={totals['max']:.3f}"
        )
    hot = TelemetryQuery(rollups=rollups)
    worst, score = hot.top_k(1)[0]
    print(f"\nworst sensor by mean value: {worst} ({score:.3f})")


if __name__ == "__main__":
    main()
