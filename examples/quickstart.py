#!/usr/bin/env python3
"""Quickstart: augment an application with SPATIAL in ~60 lines.

Trains a fall-detection model through the standard AI pipeline, instruments
it with AI sensors, streams readings to the AI dashboard, and prints the
operator view — the minimal end-to-end tour of the architecture.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    AIDashboard,
    AlertRule,
    ContinuousMonitor,
    DataQualitySensor,
    ModelContext,
    PerformanceSensor,
    SensorRegistry,
)
from repro.datasets import generate_unimib_like, to_binary_fall_task
from repro.ml import RandomForestClassifier, StandardScaler
from repro.ml.pipeline import AIPipeline


def main() -> None:
    # 1. the application's data and model (use case 1, scaled down)
    dataset = generate_unimib_like(n_samples=2000, seed=0)
    X, y = to_binary_fall_task(dataset)
    X = StandardScaler().fit_transform(X)

    pipeline = AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=20, max_depth=12, seed=0
        ),
        seed=0,
    )

    # 2. instrument the application with AI sensors
    registry = SensorRegistry()
    registry.register(PerformanceSensor())
    registry.register(DataQualitySensor())

    # 3. the AI dashboard: operator thresholds + alerting
    dashboard = AIDashboard()
    dashboard.add_rule(
        AlertRule(
            sensor="performance",
            threshold=0.90,
            message="fall detection below the operator's comfort threshold",
        )
    )

    monitor = ContinuousMonitor(
        registry,
        dashboard,
        lambda: ModelContext(
            model=pipeline.context.model,
            X_train=pipeline.context.X_train,
            y_train=pipeline.context.y_train,
            X_test=pipeline.context.X_test,
            y_test=pipeline.context.y_test,
            model_version=pipeline.context.model_version,
        ),
    )

    # 4. run the pipeline and take a few monitoring rounds
    context = pipeline.run()
    print(f"deployed model v{context.model_version}; "
          f"accuracy={context.evaluation['accuracy']:.3f}")
    monitor.on_model_update()
    monitor.run(3)

    # 5. the operator's view
    print()
    print(dashboard.render_text())
    print()
    score = dashboard.trust_panel()
    print(f"aggregate trust score: {score.value:.3f}")
    weakest = score.weakest_property()
    print(f"weakest property:      {weakest.value if weakest else 'n/a'}")
    print()
    print("instrumentation blind spots (Fig. 3 vulnerabilities without a sensor):")
    for name in registry.coverage_report()["unmonitored_vulnerabilities"][:5]:
        print(f"  - {name}")


if __name__ == "__main__":
    main()
