#!/usr/bin/env python3
"""Federated learning under SPATIAL oversight (the Fig. 2(c) architecture).

Trains a fall-detection model federatedly across 8 clients, two of which
turn malicious (sign-flipped model-poisoning updates).  The global model is
monitored by the same SPATIAL sensors as a centralised one; the dashboard
alert fires when the attack lands, and the operator responds by switching
the aggregator to a robust rule — the human-in-the-loop countermeasure.

Run:  python examples/federated_monitoring.py
"""

import numpy as np

from repro.core import (
    AIDashboard,
    AlertRule,
    Audience,
    ModelContext,
    PerformanceSensor,
    narrate_reading,
)
from repro.datasets import generate_unimib_like, to_binary_fall_task
from repro.federated import (
    FederatedClient,
    FederatedTrainer,
    MaliciousClient,
    coordinate_median,
)
from repro.ml import StandardScaler, train_test_split

N_CLIENTS = 8
N_MALICIOUS = 2


def build_clients(X, y, malicious_from_round):
    """Shard the data; client objects are fixed, maliciousness is a flag."""
    per = len(y) // N_CLIENTS
    clients = []
    for i in range(N_CLIENTS):
        shard = slice(i * per, (i + 1) * per)
        if i < N_MALICIOUS and malicious_from_round:
            clients.append(
                MaliciousClient(i, X[shard], y[shard], update_scale=-4.0)
            )
        else:
            clients.append(FederatedClient(i, X[shard], y[shard]))
    return clients


def monitor_round(trainer, dashboard, sensor, X_test, y_test, round_index):
    context = ModelContext(
        model=trainer.global_model,
        X_test=X_test,
        y_test=y_test,
        model_version=round_index,
    )
    reading = sensor.measure(context)
    dashboard.add_reading(reading)
    return reading


def main() -> None:
    dataset = generate_unimib_like(n_samples=2400, seed=0)
    X, y = to_binary_fall_task(dataset)
    X = StandardScaler().fit_transform(X)
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, seed=0)

    sensor = PerformanceSensor(clock=lambda: 0.0)
    dashboard = AIDashboard()
    dashboard.add_rule(
        AlertRule(
            sensor="performance",
            threshold=0.8,
            message="global model degraded — suspect poisoned clients",
        )
    )

    print("== phase 1: honest federation (FedAvg) ==")
    trainer = FederatedTrainer(
        build_clients(X_train, y_train, malicious_from_round=False),
        hidden_layers=(32,),
        learning_rate=3e-3,
        seed=0,
    )
    for round_index in range(8):
        trainer.run_round(local_epochs=5)
        reading = monitor_round(
            trainer, dashboard, sensor, X_test, y_test, round_index
        )
    print(f"  accuracy after 8 honest rounds: {reading.value:.3f}")

    print("\n== phase 2: two clients turn malicious (FedAvg) ==")
    poisoned = FederatedTrainer(
        build_clients(X_train, y_train, malicious_from_round=True),
        hidden_layers=(32,),
        learning_rate=3e-3,
        seed=0,
    )
    poisoned.global_model.set_parameters(trainer.global_model.get_parameters())
    for round_index in range(8, 14):
        poisoned.run_round(local_epochs=5)
        reading = monitor_round(
            poisoned, dashboard, sensor, X_test, y_test, round_index
        )
    print(f"  accuracy after poisoned rounds:  {reading.value:.3f}")
    print(f"  dashboard alerts pending:        {len(dashboard.alerts())}")
    print("  " + narrate_reading(reading, Audience.DEVELOPER))

    print("\n== phase 3: operator switches to coordinate-median aggregation ==")
    defended = FederatedTrainer(
        build_clients(X_train, y_train, malicious_from_round=True),
        hidden_layers=(32,),
        learning_rate=3e-3,
        seed=0,
        aggregator=coordinate_median,
    )
    for round_index in range(14, 22):
        defended.run_round(local_epochs=5)
        reading = monitor_round(
            defended, dashboard, sensor, X_test, y_test, round_index
        )
    print(f"  accuracy with robust aggregation: {reading.value:.3f}")
    print("  " + narrate_reading(reading, Audience.END_USER))

    print()
    print(dashboard.render_text())


if __name__ == "__main__":
    main()
