"""Tests for permutation importance, including the SHAP cross-check."""

import numpy as np
import pytest

from repro.ml import MLPClassifier
from repro.xai import KernelShapExplainer, permutation_importance


@pytest.fixture(scope="module")
def two_signal_model():
    """Model where feature 1 matters most, feature 3 a little, rest noise."""
    gen = np.random.default_rng(0)
    X = gen.normal(size=(600, 5))
    logits = 2.5 * X[:, 1] + 0.8 * X[:, 3]
    y = (logits > 0).astype(int)
    model = MLPClassifier(
        hidden_layers=(16,), n_epochs=60, learning_rate=0.01, seed=0
    ).fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_identifies_dominant_feature(self, two_signal_model):
        model, X, y = two_signal_model
        imp = permutation_importance(model, X, y, seed=0)
        assert int(np.argmax(imp)) == 1

    def test_noise_features_near_zero(self, two_signal_model):
        model, X, y = two_signal_model
        imp = permutation_importance(model, X, y, seed=0)
        for j in (0, 2, 4):
            assert abs(imp[j]) < 0.05

    def test_secondary_feature_ranked_second(self, two_signal_model):
        model, X, y = two_signal_model
        imp = permutation_importance(model, X, y, seed=0)
        assert list(np.argsort(-imp)[:2]) == [1, 3]

    def test_shape(self, two_signal_model):
        model, X, y = two_signal_model
        assert permutation_importance(model, X[:50], y[:50]).shape == (5,)

    def test_custom_scorer(self, two_signal_model):
        from repro.ml.metrics import f1_score

        model, X, y = two_signal_model
        imp = permutation_importance(
            model, X[:100], y[:100], scorer=f1_score, seed=0
        )
        assert int(np.argmax(imp)) == 1

    def test_deterministic(self, two_signal_model):
        model, X, y = two_signal_model
        a = permutation_importance(model, X[:100], y[:100], seed=5)
        b = permutation_importance(model, X[:100], y[:100], seed=5)
        assert np.allclose(a, b)

    def test_invalid_inputs_raise(self, two_signal_model):
        model, X, y = two_signal_model
        with pytest.raises(ValueError):
            permutation_importance(model, X[:10], y[:9])
        with pytest.raises(ValueError):
            permutation_importance(model, X[:10], y[:10], n_repeats=0)

    def test_agrees_with_kernel_shap_ranking(self, two_signal_model):
        """Two independent importance estimators must crown the same top
        feature — the cross-validation of the SHAP implementation."""
        model, X, y = two_signal_model
        perm = permutation_importance(model, X[:150], y[:150], seed=0)
        explainer = KernelShapExplainer(
            model.predict_proba, X[:30], n_coalitions=64, seed=0
        )
        shap_imp = explainer.mean_abs_importance(X[:12], class_index=1)
        assert int(np.argmax(perm)) == int(np.argmax(shap_imp)) == 1
