"""``shap_values_batch_exact``: bitwise-faithful batch explanation.

The serving layer's fusion promise rests on this method: a batch must
return *exactly* the bits the per-row path would, for any batch width
and row order.  (The fully-fused ``shap_values_batch`` cannot promise
that — folding instances into one multi-column solve changes BLAS
blocking — which is why the serving engine calls this variant.)
"""

import numpy as np
import pytest

from repro.xai.shap import KernelShapExplainer

D = 5


def _predict(X):
    X = np.asarray(X, dtype=np.float64)
    # row-wise reductions only: bitwise row-stable across batch widths
    return np.stack(
        [X.sum(axis=1), np.abs(X).sum(axis=1), (X * X).sum(axis=1)], axis=1
    )


@pytest.fixture()
def explainer():
    rng = np.random.default_rng(0)
    return KernelShapExplainer(
        _predict, rng.normal(size=(24, D)), n_coalitions=32, seed=0
    )


class TestBitwiseEquality:
    @pytest.mark.parametrize("n", [1, 2, 3, 8])
    def test_matches_per_row_path_bitwise(self, explainer, n):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, D))
        batch = explainer.shap_values_batch_exact(X)
        singles = np.stack([explainer.shap_values(x) for x in X])
        assert np.array_equal(batch, singles)  # no tolerance: same bits

    def test_row_order_does_not_change_bits(self, explainer):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(6, D))
        forward = explainer.shap_values_batch_exact(X)
        reversed_ = explainer.shap_values_batch_exact(X[::-1])
        assert np.array_equal(forward, reversed_[::-1])

    def test_class_index_slice_matches(self, explainer):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(4, D))
        sliced = explainer.shap_values_batch_exact(X, class_index=1)
        full = explainer.shap_values_batch_exact(X)
        assert np.array_equal(sliced, full[:, :, 1])


class TestShapesAndValidation:
    def test_empty_batch(self, explainer):
        assert explainer.shap_values_batch_exact(
            np.zeros((0, D))
        ).shape == (0, D, 3)
        assert explainer.shap_values_batch_exact(
            np.zeros((0, D)), class_index=0
        ).shape == (0, D)

    def test_rejects_bad_shapes(self, explainer):
        with pytest.raises(ValueError):
            explainer.shap_values_batch_exact(np.zeros(D))
        with pytest.raises(ValueError):
            explainer.shap_values_batch_exact(np.zeros((2, D + 1)))

    def test_additivity_holds_per_row(self, explainer):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(3, D))
        phi = explainer.shap_values_batch_exact(X)
        reconstructed = explainer.base_values_ + phi.sum(axis=1)
        np.testing.assert_allclose(reconstructed, _predict(X), atol=1e-7)
