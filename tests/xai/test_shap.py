"""Tests for Kernel SHAP: additivity, symmetry, null-player, sampling."""

import numpy as np
import pytest

from repro.ml import MLPClassifier
from repro.xai.shap import KernelShapExplainer, exact_shap_values


@pytest.fixture(scope="module")
def linear_predict():
    """A known linear function f(x) = 2*x0 - 3*x1 + x2 (single output)."""
    weights = np.array([2.0, -3.0, 1.0])

    def predict(X):
        X = np.asarray(X)
        return (X @ weights).reshape(-1, 1)

    return predict, weights


class TestExactShap:
    def test_linear_model_recovers_weights(self, linear_predict):
        """For a linear model with independent background features the
        Shapley value of feature j is w_j * (x_j - E[x_j])."""
        predict, weights = linear_predict
        gen = np.random.default_rng(0)
        background = gen.normal(size=(100, 3))
        x = np.array([1.0, 2.0, -1.0])
        phi = exact_shap_values(predict, x, background)
        expected = weights * (x - background.mean(axis=0))
        assert np.allclose(phi[:, 0], expected, atol=1e-9)

    def test_additivity(self, linear_predict):
        predict, __ = linear_predict
        gen = np.random.default_rng(1)
        background = gen.normal(size=(40, 3))
        x = gen.normal(size=3)
        phi = exact_shap_values(predict, x, background)
        base = predict(background).mean(axis=0)
        assert np.allclose(base + phi.sum(axis=0), predict(x.reshape(1, -1))[0])

    def test_null_player_gets_zero(self):
        """A feature the model ignores must get zero attribution."""

        def predict(X):
            X = np.asarray(X)
            return X[:, [0]]  # only feature 0 matters

        gen = np.random.default_rng(2)
        background = gen.normal(size=(30, 3))
        phi = exact_shap_values(predict, np.array([1.0, 5.0, -3.0]), background)
        assert abs(phi[1, 0]) < 1e-9
        assert abs(phi[2, 0]) < 1e-9

    def test_symmetry(self):
        """Two interchangeable features get equal attributions."""

        def predict(X):
            X = np.asarray(X)
            return (X[:, [0]] + X[:, [1]])

        background = np.zeros((10, 2))
        phi = exact_shap_values(predict, np.array([3.0, 3.0]), background)
        assert phi[0, 0] == pytest.approx(phi[1, 0])

    def test_too_many_features_raises(self):
        with pytest.raises(ValueError):
            exact_shap_values(lambda X: np.zeros((len(X), 1)), np.zeros(20), np.zeros((5, 20)))


class TestKernelShapExplainer:
    def test_matches_exact_on_small_d(self, linear_predict):
        predict, __ = linear_predict
        gen = np.random.default_rng(3)
        background = gen.normal(size=(50, 3))
        x = gen.normal(size=3)
        explainer = KernelShapExplainer(predict, background, n_coalitions=64)
        phi_kernel = explainer.shap_values(x)
        phi_exact = exact_shap_values(predict, x, background)
        assert np.allclose(phi_kernel, phi_exact, atol=1e-6)

    def test_additivity_on_mlp(self, trained_mlp, blobs):
        X, __ = blobs
        explainer = KernelShapExplainer(
            trained_mlp.predict_proba, X[:30], n_coalitions=64, seed=0
        )
        phi = explainer.shap_values(X[0])
        f_x = trained_mlp.predict_proba(X[:1])[0]
        assert np.allclose(explainer.base_values_ + phi.sum(axis=0), f_x, atol=1e-8)

    def test_class_index_slices(self, trained_mlp, blobs):
        X, __ = blobs
        explainer = KernelShapExplainer(
            trained_mlp.predict_proba, X[:20], n_coalitions=32, seed=0
        )
        phi_all = explainer.shap_values(X[0])
        phi_1 = explainer.shap_values(X[0], class_index=1)
        assert phi_1.shape == (X.shape[1],)
        assert np.allclose(phi_all[:, 1], phi_1)

    def test_batch_shape(self, trained_mlp, blobs):
        X, __ = blobs
        explainer = KernelShapExplainer(
            trained_mlp.predict_proba, X[:20], n_coalitions=32, seed=0
        )
        batch = explainer.shap_values_batch(X[:4], class_index=0)
        assert batch.shape == (4, X.shape[1])

    def test_sampling_mode_on_larger_d(self):
        """d=18 forces coalition sampling; additivity must still hold
        (it is enforced by the constraint)."""
        gen = np.random.default_rng(4)
        weights = gen.normal(size=18)

        def predict(X):
            return (np.asarray(X) @ weights).reshape(-1, 1)

        background = gen.normal(size=(30, 18))
        x = gen.normal(size=18)
        explainer = KernelShapExplainer(predict, background, n_coalitions=300, seed=0)
        phi = explainer.shap_values(x)
        base = predict(background).mean(axis=0)
        assert np.allclose(base + phi.sum(axis=0), predict(x.reshape(1, -1))[0], atol=1e-6)
        # linear case: sampled values close to analytic
        expected = weights * (x - background.mean(axis=0))
        assert np.corrcoef(phi[:, 0], expected)[0, 1] > 0.95

    def test_mean_abs_importance_ranks_signal_feature(self, blobs):
        X, y = blobs
        m = MLPClassifier(hidden_layers=(8,), n_epochs=30, seed=0).fit(X, y)
        explainer = KernelShapExplainer(
            m.predict_proba, X[:30], n_coalitions=64, seed=0
        )
        imp = explainer.mean_abs_importance(X[:10], class_index=1)
        assert imp.shape == (X.shape[1],)
        assert (imp >= 0).all()

    def test_wrong_feature_count_raises(self, trained_mlp, blobs):
        X, __ = blobs
        explainer = KernelShapExplainer(
            trained_mlp.predict_proba, X[:10], n_coalitions=32
        )
        with pytest.raises(ValueError):
            explainer.shap_values(np.zeros(X.shape[1] + 1))

    def test_empty_background_raises(self, trained_mlp):
        with pytest.raises(ValueError):
            KernelShapExplainer(trained_mlp.predict_proba, np.empty((0, 5)))

    def test_too_few_coalitions_raises(self, trained_mlp, blobs):
        X, __ = blobs
        with pytest.raises(ValueError):
            KernelShapExplainer(trained_mlp.predict_proba, X[:5], n_coalitions=4)
