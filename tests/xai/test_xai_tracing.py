"""Duck-typed tracing in the explainers (xai imports no tracing)."""

import numpy as np
import pytest

from repro.tracing import TraceCollector, Tracer
from repro.xai import KernelShapExplainer, LimeTabularExplainer


def make_tracer():
    collector = TraceCollector()
    clock = {"now": 0.0}
    tracer = Tracer(clock=lambda: clock["now"], collector=collector, seed=0)
    return tracer, collector


@pytest.fixture
def linear_predict():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 4))
    w = np.array([1.0, -2.0, 0.5, 0.0])

    def predict(data):
        return np.asarray(data) @ w

    return predict, X


class TestShapTracing:
    def test_traced_call_records_one_span(self, linear_predict):
        predict, X = linear_predict
        tracer, collector = make_tracer()
        explainer = KernelShapExplainer(predict, X[:20], n_coalitions=32)
        root = tracer.start_span("req")
        traced = explainer.shap_values(X[0], tracer=tracer, parent=root)
        root.end()
        tree = collector.get(root.trace_id)
        [span] = tree.children(tree.root)
        assert span.name == "xai.shap"
        assert span.attributes["n_coalitions"] == 32.0
        assert span.attributes["n_features"] == 4.0
        assert span.ended
        assert tracer.active_spans == 0
        # tracing must not change the numbers
        untraced = explainer.shap_values(X[0])
        np.testing.assert_allclose(traced, untraced)

    def test_untraced_call_needs_no_tracer(self, linear_predict):
        predict, X = linear_predict
        explainer = KernelShapExplainer(predict, X[:20], n_coalitions=32)
        values = explainer.shap_values(X[0], class_index=0)
        assert values.shape == (4,)


class TestLimeTracing:
    def test_traced_call_records_one_span(self, linear_predict):
        predict, X = linear_predict

        def predict_proba(data):
            scores = np.asarray(data) @ np.array([1.0, -2.0, 0.5, 0.0])
            p = 1.0 / (1.0 + np.exp(-scores))
            return np.column_stack([1.0 - p, p])

        tracer, collector = make_tracer()
        explainer = LimeTabularExplainer(predict_proba, X, n_samples=64)
        root = tracer.start_span("req")
        traced = explainer.explain(X[0], 1, tracer=tracer, parent=root)
        root.end()
        tree = collector.get(root.trace_id)
        [span] = tree.children(tree.root)
        assert span.name == "xai.lime"
        assert span.attributes["n_samples"] == 64.0
        assert tracer.active_spans == 0
        np.testing.assert_allclose(traced, explainer.explain(X[0], 1))
