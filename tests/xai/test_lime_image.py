"""Tests for image LIME on grid superpixels."""

import numpy as np
import pytest

from repro.xai.lime_image import LimeImageExplainer, grid_superpixels


class TestGridSuperpixels:
    def test_covers_every_pixel(self):
        segments = grid_superpixels((12, 12), patch=4)
        assert segments.shape == (12, 12)
        assert segments.min() == 0
        assert segments.max() == 8  # 3x3 grid

    def test_remainder_absorbed_by_edges(self):
        segments = grid_superpixels((10, 10), patch=4)
        # 2x2 grid of patches, edge patches absorb the remainder
        assert segments.max() == 3
        assert (segments >= 0).all()

    def test_patch_equal_to_image_is_single_segment(self):
        segments = grid_superpixels((8, 8), patch=8)
        assert segments.max() == 0

    def test_invalid_patch_raises(self):
        with pytest.raises(ValueError):
            grid_superpixels((8, 8), patch=0)
        with pytest.raises(ValueError):
            grid_superpixels((8, 8), patch=9)

    def test_segments_contiguous_blocks(self):
        segments = grid_superpixels((8, 8), patch=4)
        assert segments[0, 0] == segments[3, 3]
        assert segments[0, 0] != segments[0, 4]


class TestLimeImageExplainer:
    @pytest.fixture(scope="class")
    def corner_predictor(self):
        """Probability of class 0 = mean brightness of the top-left 6x6."""

        def predict(batch):
            batch = np.asarray(batch)
            p = batch[:, :6, :6].mean(axis=(1, 2))
            p = np.clip(p, 0.0, 1.0)
            return np.stack([p, 1.0 - p], axis=1)

        return predict

    def test_weights_shape(self, corner_predictor):
        lime = LimeImageExplainer(corner_predictor, patch=6, n_samples=60, seed=0)
        image = np.ones((12, 12))
        weights = lime.explain(image, class_index=0)
        assert weights.shape == (4,)

    def test_important_patch_found(self, corner_predictor):
        lime = LimeImageExplainer(corner_predictor, patch=6, n_samples=120, seed=0)
        image = np.zeros((12, 12))
        image[:6, :6] = 1.0  # bright top-left drives class 0
        weights = lime.explain(image, class_index=0)
        assert int(np.argmax(weights)) == 0  # top-left segment

    def test_heatmap_shape_and_constant_per_patch(self, corner_predictor):
        lime = LimeImageExplainer(corner_predictor, patch=6, n_samples=60, seed=0)
        image = np.ones((12, 12)) * 0.5
        heat = lime.heatmap(image, class_index=0)
        assert heat.shape == (12, 12)
        assert np.unique(heat[:6, :6]).size == 1

    def test_non_2d_image_raises(self, corner_predictor):
        lime = LimeImageExplainer(corner_predictor, patch=4, n_samples=20)
        with pytest.raises(ValueError):
            lime.explain(np.zeros((3, 8, 8)), 0)

    def test_too_few_samples_raises(self, corner_predictor):
        with pytest.raises(ValueError):
            LimeImageExplainer(corner_predictor, n_samples=5)

    def test_deterministic(self, corner_predictor):
        image = np.random.default_rng(0).random((12, 12))
        a = LimeImageExplainer(corner_predictor, patch=6, n_samples=50, seed=3)
        b = LimeImageExplainer(corner_predictor, patch=6, n_samples=50, seed=3)
        assert np.allclose(a.explain(image, 0), b.explain(image, 0))

    def test_on_real_shape_classifier(self, shape_images):
        from repro.ml import MLPClassifier

        images, labels = shape_images
        X = images.reshape(len(images), -1)
        model = MLPClassifier(
            hidden_layers=(32,), n_epochs=40, learning_rate=0.01, seed=0
        ).fit(X, labels)

        def predict(batch):
            batch = np.asarray(batch)
            return model.predict_proba(batch.reshape(len(batch), -1))

        lime = LimeImageExplainer(predict, patch=4, n_samples=80, seed=0)
        weights = lime.explain(images[0], class_index=0)
        assert np.all(np.isfinite(weights))
