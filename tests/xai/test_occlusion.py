"""Tests for occlusion sensitivity."""

import numpy as np
import pytest

from repro.xai.occlusion import occlusion_sensitivity


@pytest.fixture(scope="module")
def corner_predictor():
    """P(class 0) proportional to brightness of the top-left 4x4 block."""

    def predict(batch):
        batch = np.asarray(batch)
        p = np.clip(batch[:, :4, :4].mean(axis=(1, 2)), 0.0, 1.0)
        return np.stack([p, 1.0 - p], axis=1)

    return predict


class TestOcclusionSensitivity:
    def test_map_shape(self, corner_predictor):
        image = np.ones((8, 8))
        heat = occlusion_sensitivity(corner_predictor, image, 0, window=4)
        assert heat.shape == (8, 8)

    def test_relevant_region_has_highest_drop(self, corner_predictor):
        image = np.zeros((8, 8))
        image[:4, :4] = 1.0
        heat = occlusion_sensitivity(
            corner_predictor, image, 0, window=4, baseline=0.0
        )
        assert heat[:4, :4].mean() > heat[4:, 4:].mean()

    def test_irrelevant_region_near_zero(self, corner_predictor):
        image = np.zeros((8, 8))
        image[:4, :4] = 1.0
        heat = occlusion_sensitivity(
            corner_predictor, image, 0, window=4, baseline=0.0
        )
        assert abs(heat[4:, 4:].mean()) < 1e-9

    def test_stride_smaller_than_window(self, corner_predictor):
        image = np.random.default_rng(0).random((8, 8))
        heat = occlusion_sensitivity(
            corner_predictor, image, 0, window=4, stride=2
        )
        assert heat.shape == (8, 8)
        assert np.all(np.isfinite(heat))

    def test_window_out_of_range_raises(self, corner_predictor):
        with pytest.raises(ValueError):
            occlusion_sensitivity(corner_predictor, np.zeros((8, 8)), 0, window=9)
        with pytest.raises(ValueError):
            occlusion_sensitivity(corner_predictor, np.zeros((8, 8)), 0, window=0)

    def test_invalid_stride_raises(self, corner_predictor):
        with pytest.raises(ValueError):
            occlusion_sensitivity(
                corner_predictor, np.zeros((8, 8)), 0, window=2, stride=0
            )

    def test_non_2d_image_raises(self, corner_predictor):
        with pytest.raises(ValueError):
            occlusion_sensitivity(corner_predictor, np.zeros((2, 8, 8)), 0)

    def test_on_real_shape_classifier(self, shape_images):
        from repro.ml import MLPClassifier

        images, labels = shape_images
        X = images.reshape(len(images), -1)
        model = MLPClassifier(
            hidden_layers=(32,), n_epochs=40, learning_rate=0.01, seed=0
        ).fit(X, labels)

        def predict(batch):
            batch = np.asarray(batch)
            return model.predict_proba(batch.reshape(len(batch), -1))

        class_idx = int(np.flatnonzero(model.classes_ == labels[0])[0])
        heat = occlusion_sensitivity(predict, images[0], class_idx, window=4)
        assert heat.shape == images[0].shape
        assert np.all(np.isfinite(heat))
