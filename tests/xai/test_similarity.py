"""Tests for the explanation-similarity (Fig. 6a-iv) metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xai.similarity import (
    explanation_distance,
    knn_explanation_dissimilarity,
    nearest_neighbours,
)


class TestExplanationDistance:
    def test_zero_for_identical(self):
        e = np.array([1.0, -2.0, 3.0])
        assert explanation_distance(e, e) == 0.0

    def test_euclidean(self):
        assert explanation_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_symmetric(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        assert explanation_distance(a, b) == explanation_distance(b, a)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            explanation_distance(np.zeros(3), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=8))
    def test_triangle_inequality_property(self, values):
        a = np.array(values)
        b = np.zeros_like(a)
        c = np.ones_like(a)
        assert explanation_distance(a, c) <= (
            explanation_distance(a, b) + explanation_distance(b, c) + 1e-9
        )


class TestNearestNeighbours:
    def test_finds_obvious_neighbours(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1]])
        nn = nearest_neighbours(X, k=1)
        assert nn[0, 0] == 1
        assert nn[1, 0] == 0
        assert nn[2, 0] == 3
        assert nn[3, 0] == 2

    def test_never_own_neighbour(self, rng):
        X = rng.normal(size=(20, 3))
        nn = nearest_neighbours(X, k=5)
        for i in range(20):
            assert i not in nn[i]

    def test_shape(self, rng):
        X = rng.normal(size=(10, 2))
        assert nearest_neighbours(X, k=3).shape == (10, 3)

    def test_invalid_k_raises(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            nearest_neighbours(X, k=5)
        with pytest.raises(ValueError):
            nearest_neighbours(X, k=0)


class TestKnnExplanationDissimilarity:
    def test_zero_when_explanations_identical(self, rng):
        X = rng.normal(size=(20, 4))
        explanations = np.tile(rng.normal(size=4), (20, 1))
        assert knn_explanation_dissimilarity(X, explanations, k=3) == 0.0

    def test_locally_consistent_lower_than_random(self, rng):
        """Explanations that track input space beat shuffled ones — the
        discriminative power behind the Fig. 6(a)-iv detector."""
        X = rng.normal(size=(40, 3))
        consistent = X * 2.0  # explanation = smooth function of input
        shuffled = consistent[rng.permutation(40)]
        d_consistent = knn_explanation_dissimilarity(X, consistent, k=5)
        d_shuffled = knn_explanation_dissimilarity(X, shuffled, k=5)
        assert d_consistent < d_shuffled

    def test_count_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            knn_explanation_dissimilarity(
                rng.normal(size=(10, 2)), rng.normal(size=(9, 2))
            )

    def test_too_few_instances_raises(self, rng):
        with pytest.raises(ValueError):
            knn_explanation_dissimilarity(
                rng.normal(size=(4, 2)), rng.normal(size=(4, 2)), k=5
            )

    def test_non_negative(self, rng):
        X = rng.normal(size=(15, 3))
        E = rng.normal(size=(15, 6))
        assert knn_explanation_dissimilarity(X, E, k=4) >= 0.0

    def test_scales_with_explanation_noise(self, rng):
        X = rng.normal(size=(30, 3))
        base = X * 1.5
        small_noise = base + rng.normal(0, 0.1, size=base.shape)
        big_noise = base + rng.normal(0, 5.0, size=base.shape)
        assert knn_explanation_dissimilarity(
            X, small_noise, k=4
        ) < knn_explanation_dissimilarity(X, big_noise, k=4)
