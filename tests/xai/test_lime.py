"""Tests for tabular LIME."""

import numpy as np
import pytest

from repro.ml import MLPClassifier
from repro.xai.lime import LimeTabularExplainer


@pytest.fixture(scope="module")
def signal_model():
    """Model that depends only on feature 1 of 4."""
    gen = np.random.default_rng(0)
    X = gen.normal(size=(400, 4))
    y = (X[:, 1] > 0).astype(int)
    model = MLPClassifier(hidden_layers=(8,), n_epochs=40, learning_rate=0.01, seed=0)
    model.fit(X, y)
    return model, X


class TestLimeTabular:
    def test_coefficient_shape(self, signal_model):
        model, X = signal_model
        lime = LimeTabularExplainer(model.predict_proba, X, n_samples=300, seed=0)
        assert lime.explain(X[0], 1).shape == (4,)

    def test_identifies_signal_feature(self, signal_model):
        model, X = signal_model
        lime = LimeTabularExplainer(model.predict_proba, X, n_samples=500, seed=0)
        coefs = lime.explain(X[0], 1)
        assert int(np.argmax(np.abs(coefs))) == 1

    def test_sign_matches_class_direction(self, signal_model):
        """Raising feature 1 raises P(class 1), so its coefficient for
        class 1 must be positive."""
        model, X = signal_model
        lime = LimeTabularExplainer(model.predict_proba, X, n_samples=500, seed=0)
        coefs = lime.explain(np.zeros(4), 1)
        assert coefs[1] > 0

    def test_feature_ranking(self, signal_model):
        model, X = signal_model
        lime = LimeTabularExplainer(model.predict_proba, X, n_samples=500, seed=0)
        ranking = lime.feature_ranking(X[0], 1)
        assert ranking[0] == 1

    def test_deterministic_given_seed(self, signal_model):
        model, X = signal_model
        a = LimeTabularExplainer(model.predict_proba, X, n_samples=200, seed=5)
        b = LimeTabularExplainer(model.predict_proba, X, n_samples=200, seed=5)
        assert np.allclose(a.explain(X[0], 1), b.explain(X[0], 1))

    def test_wrong_dimension_raises(self, signal_model):
        model, X = signal_model
        lime = LimeTabularExplainer(model.predict_proba, X, n_samples=100)
        with pytest.raises(ValueError):
            lime.explain(np.zeros(7), 0)

    def test_requires_enough_samples(self, signal_model):
        model, X = signal_model
        with pytest.raises(ValueError):
            LimeTabularExplainer(model.predict_proba, X, n_samples=5)

    def test_requires_2d_training_data(self, signal_model):
        model, __ = signal_model
        with pytest.raises(ValueError):
            LimeTabularExplainer(model.predict_proba, np.zeros(10))

    def test_works_with_1d_predict_fn(self):
        """Regression-style predict functions (1-D output) are accepted."""
        gen = np.random.default_rng(1)
        X = gen.normal(size=(100, 3))

        def predict(Z):
            return np.asarray(Z)[:, 0] * 2.0

        lime = LimeTabularExplainer(predict, X, n_samples=200, seed=0)
        coefs = lime.explain(X[0], class_index=0)
        assert int(np.argmax(np.abs(coefs))) == 0
