"""Equivalence contract of the vectorized Kernel SHAP engine.

The single-call batched engine must reproduce the per-coalition loop
reference (``repro.xai._reference``) given the same seed: the coalition
masks are identical by construction (same RNG call sequence), so the only
admissible differences are summation-order effects in the grouped mean —
bounded far below 1e-8.  Efficiency (``base + Σφ ≈ f(x)``) is asserted
directly, and the batch path must agree with per-row calls.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xai._reference import loop_shap_values, loop_shap_values_batch
from repro.xai.shap import (
    KernelShapExplainer,
    _enumerate_masks,
    _kernel_weights_by_size,
    exact_shap_values,
)


def _softmax_predict(w):
    def predict(X):
        z = np.asarray(X) @ w
        e = np.exp(z - z.max(axis=1, keepdims=True))
        return e / e.sum(axis=1, keepdims=True)

    return predict


class TestMaskAndWeightVectorization:
    def test_enumeration_matches_bit_twiddling(self):
        for d in (2, 3, 5, 8):
            expected = np.array(
                [[(i >> j) & 1 for j in range(d)] for i in range(1, 2**d - 1)],
                dtype=bool,
            )
            assert np.array_equal(_enumerate_masks(d), expected)

    def test_trivial_masks_included_on_request(self):
        masks = _enumerate_masks(3, include_trivial=True)
        assert masks.shape == (8, 3)
        assert not masks[0].any() and masks[-1].all()

    def test_weight_table_matches_per_mask_formula(self):
        import math

        for d in (2, 4, 9, 15):
            table = _kernel_weights_by_size(d)
            assert table[0] == table[d] == 1e9
            for size in range(1, d):
                expected = (d - 1) / (math.comb(d, size) * size * (d - size))
                assert table[size] == expected


class TestLoopEquivalence:
    @pytest.mark.parametrize("d,n_coalitions", [(5, 256), (12, 64)])
    def test_single_instance_matches_reference(self, d, n_coalitions):
        # d=5 exercises full enumeration, d=12 the antithetic sampler
        gen = np.random.default_rng(7)
        w = gen.normal(size=(d, 3))
        predict = _softmax_predict(w)
        background = gen.normal(size=(60, d))
        x = gen.normal(size=d)
        explainer = KernelShapExplainer(
            predict, background, n_coalitions=n_coalitions, seed=11
        )
        phi = explainer.shap_values(x)
        ref = loop_shap_values(
            predict, background, x, n_coalitions=n_coalitions, seed=11
        )
        np.testing.assert_allclose(phi, ref, atol=1e-8)

    def test_batch_matches_reference_rows(self):
        gen = np.random.default_rng(3)
        w = gen.normal(size=(10, 2))
        predict = _softmax_predict(w)
        background = gen.normal(size=(40, 10))
        X = gen.normal(size=(5, 10))
        explainer = KernelShapExplainer(predict, background, n_coalitions=48, seed=5)
        batch = explainer.shap_values_batch(X, class_index=1)
        ref = loop_shap_values_batch(
            predict, background, X, n_coalitions=48, seed=5, class_index=1
        )
        assert batch.shape == (5, 10)
        np.testing.assert_allclose(batch, ref, atol=1e-8)

    def test_batch_matches_per_row_calls(self):
        gen = np.random.default_rng(9)
        w = gen.normal(size=(6, 3))
        predict = _softmax_predict(w)
        background = gen.normal(size=(30, 6))
        X = gen.normal(size=(4, 6))
        explainer = KernelShapExplainer(predict, background, n_coalitions=32, seed=2)
        batch = explainer.shap_values_batch(X)
        rows = np.array([explainer.shap_values(x) for x in X])
        np.testing.assert_allclose(batch, rows, atol=1e-10)

    def test_exact_matches_reference_implementation(self):
        gen = np.random.default_rng(1)
        w = gen.normal(size=5)

        def predict(X):
            return (np.asarray(X) @ w).reshape(-1, 1)

        background = gen.normal(size=(25, 5))
        x = gen.normal(size=5)
        phi = exact_shap_values(predict, x, background)
        # a linear model's exact Shapley value has a closed form:
        # phi_j = w_j * (x_j - mean(background_j))
        closed = w * (x - background.mean(axis=0))
        np.testing.assert_allclose(phi[:, 0], closed, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), d=st.integers(2, 9))
def test_efficiency_property(seed, d):
    """base + Σφ = f(x) to 1e-8 across random models and widths."""
    gen = np.random.default_rng(seed)
    w = gen.normal(size=(d, 2))
    predict = _softmax_predict(w)
    background = gen.normal(size=(20, d))
    x = gen.normal(size=d)
    explainer = KernelShapExplainer(predict, background, n_coalitions=64, seed=seed)
    phi = explainer.shap_values(x)
    reconstructed = explainer.base_values_ + phi.sum(axis=0)
    np.testing.assert_allclose(reconstructed, predict(x.reshape(1, -1))[0], atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 300))
def test_sampled_batch_equals_loop_reference_property(seed):
    gen = np.random.default_rng(seed)
    w = gen.normal(size=(11, 2))
    predict = _softmax_predict(w)
    background = gen.normal(size=(15, 11))
    X = gen.normal(size=(3, 11))
    explainer = KernelShapExplainer(predict, background, n_coalitions=32, seed=seed)
    np.testing.assert_allclose(
        explainer.shap_values_batch(X),
        loop_shap_values_batch(predict, background, X, n_coalitions=32, seed=seed),
        atol=1e-8,
    )


class TestBatchValidation:
    def test_rejects_non_2d(self):
        explainer = KernelShapExplainer(
            lambda X: X.sum(axis=1), np.zeros((4, 3)), n_coalitions=8
        )
        with pytest.raises(ValueError):
            explainer.shap_values_batch(np.zeros(3))

    def test_rejects_feature_mismatch(self):
        explainer = KernelShapExplainer(
            lambda X: X.sum(axis=1), np.zeros((4, 3)), n_coalitions=8
        )
        with pytest.raises(ValueError):
            explainer.shap_values_batch(np.zeros((2, 5)))

    def test_empty_batch(self):
        explainer = KernelShapExplainer(
            lambda X: X.sum(axis=1), np.zeros((4, 3)), n_coalitions=8
        )
        assert explainer.shap_values_batch(np.zeros((0, 3))).shape == (0, 3, 1)
        assert explainer.shap_values_batch(
            np.zeros((0, 3)), class_index=0
        ).shape == (0, 3)
