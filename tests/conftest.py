"""Shared fixtures: small, fast datasets and pre-trained models.

Session-scoped fixtures keep the suite quick — models train once and are
reused read-only across tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    generate_network_dataset,
    generate_shape_images,
    generate_unimib_like,
    to_binary_fall_task,
)
from repro.ml import (
    MLPClassifier,
    StandardScaler,
    train_test_split,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def blobs():
    """Two well-separated Gaussian blobs: (X, y) with y in {0, 1}."""
    gen = np.random.default_rng(7)
    X0 = gen.normal(loc=-2.0, scale=1.0, size=(150, 5))
    X1 = gen.normal(loc=2.0, scale=1.0, size=(150, 5))
    X = np.vstack([X0, X1])
    y = np.array([0] * 150 + [1] * 150)
    order = gen.permutation(300)
    return X[order], y[order]


@pytest.fixture(scope="session")
def three_blobs():
    """Three-class Gaussian blobs for multi-class paths."""
    gen = np.random.default_rng(11)
    centers = np.array([[-3.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
    X = np.vstack([gen.normal(c, 0.8, size=(80, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 80)
    order = gen.permutation(len(y))
    return X[order], y[order]


@pytest.fixture(scope="session")
def xor_data():
    """XOR pattern — linearly inseparable, separable by trees/nets."""
    gen = np.random.default_rng(3)
    X = gen.uniform(-1, 1, size=(400, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    X = X + gen.normal(0, 0.05, size=X.shape)
    return X, y


@pytest.fixture(scope="session")
def trained_mlp(blobs):
    X, y = blobs
    return MLPClassifier(hidden_layers=(16,), n_epochs=40, seed=0).fit(X, y)


@pytest.fixture(scope="session")
def unimib_small():
    """A 600-sample UniMiB-like dataset (fast; all 17 classes present)."""
    return generate_unimib_like(n_samples=600, seed=42)


@pytest.fixture(scope="session")
def fall_task_split(unimib_small):
    """Standardised train/test split of the binary fall task."""
    X, y = to_binary_fall_task(unimib_small)
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, seed=0)
    scaler = StandardScaler().fit(X_train)
    return (
        scaler.transform(X_train),
        scaler.transform(X_test),
        y_train,
        y_test,
    )


@pytest.fixture(scope="session")
def net_small():
    """A reduced 60/12/12 network-traffic dataset (fast to generate)."""
    return generate_network_dataset(
        class_counts={"web": 60, "interactive": 12, "video": 12}, seed=5
    )


@pytest.fixture(scope="session")
def shape_images():
    return generate_shape_images(n_samples=90, size=12, seed=1)
