"""Tests for critical paths, latency summaries and text renderers."""

import pytest

from repro.tracing import (
    TraceCollector,
    Tracer,
    critical_path,
    latency_summary,
    render_critical_path,
    render_latency_table,
    render_waterfall,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def build(spec):
    """Build one trace from ``(name, parent_key, start, end)`` rows.

    ``parent_key`` names an earlier row; the first row is the root.
    Returns the assembled tree.
    """
    collector = TraceCollector()
    tracer = Tracer(clock=FakeClock(), collector=collector, seed=0)
    spans = {}
    for name, parent_key, start, end in spec:
        parent = spans[parent_key] if parent_key else None
        spans[name] = tracer.start_span(name, parent=parent, start_time=start)
    for name, _, _, end in reversed(spec):
        spans[name].end(at=end)
    trace_id = next(iter(spans.values())).trace_id
    return collector.get(trace_id)


def assert_partitions(tree, segments):
    assert sum(s.seconds for s in segments) == pytest.approx(
        tree.duration, abs=1e-12
    )
    assert all(s.seconds >= 0.0 for s in segments)


class TestCriticalPath:
    def test_sequential_children_partition_the_root(self):
        tree = build(
            [
                ("root", None, 0.0, 1.0),
                ("a", "root", 0.1, 0.4),
                ("b", "root", 0.4, 0.9),
            ]
        )
        segments = critical_path(tree)
        assert_partitions(tree, segments)
        contributions = {}
        for seg in segments:
            contributions[seg.span.name] = (
                contributions.get(seg.span.name, 0.0) + seg.seconds
            )
        # Root owns the gaps before a and after b: 0.1 + 0.1.
        assert contributions == {
            "root": pytest.approx(0.2),
            "a": pytest.approx(0.3),
            "b": pytest.approx(0.5),
        }

    def test_parallel_children_only_gate_goes_on_the_path(self):
        tree = build(
            [
                ("root", None, 0.0, 1.0),
                ("fast", "root", 0.0, 0.3),
                ("slow", "root", 0.0, 1.0),
            ]
        )
        segments = critical_path(tree)
        assert_partitions(tree, segments)
        names = {seg.span.name for seg in segments}
        assert "slow" in names
        assert "fast" not in names  # hidden behind the gating sibling

    def test_nested_grandchildren_walk_recursively(self):
        tree = build(
            [
                ("root", None, 0.0, 1.0),
                ("mid", "root", 0.2, 0.8),
                ("leaf", "mid", 0.3, 0.7),
            ]
        )
        segments = critical_path(tree)
        assert_partitions(tree, segments)
        contributions = {}
        for seg in segments:
            contributions[seg.span.name] = (
                contributions.get(seg.span.name, 0.0) + seg.seconds
            )
        assert contributions["leaf"] == pytest.approx(0.4)
        assert contributions["mid"] == pytest.approx(0.2)
        assert contributions["root"] == pytest.approx(0.4)

    def test_zero_duration_child_at_parent_end_is_kept(self):
        # A sensor probe materialised at process end: start == end == cursor.
        tree = build(
            [
                ("root", None, 0.0, 1.0),
                ("probe", "root", 1.0, 1.0),
            ]
        )
        segments = critical_path(tree)
        assert_partitions(tree, segments)

    def test_single_span_trace(self):
        tree = build([("root", None, 0.0, 0.5)])
        segments = critical_path(tree)
        assert len(segments) == 1
        assert segments[0].span.name == "root"
        assert segments[0].seconds == pytest.approx(0.5)

    def test_unrooted_tree_raises(self):
        collector = TraceCollector()
        tracer = Tracer(clock=FakeClock(), collector=collector, seed=0)
        root = tracer.start_span("root")
        tracer.start_span("child", parent=root).end()
        tree = collector.get(root.trace_id)
        with pytest.raises(ValueError, match="no root"):
            critical_path(tree)


class TestLatencySummary:
    def test_groups_by_name_with_percentiles_and_errors(self):
        collector = TraceCollector()
        tracer = Tracer(clock=FakeClock(), collector=collector, seed=0)
        for i in range(10):
            tracer.start_span("op", start_time=0.0).end(at=(i + 1) / 10)
        bad = tracer.start_span("op", start_time=0.0)
        bad.record_error("boom")
        bad.end(at=2.0)
        tracer.start_span("other", start_time=0.0).end(at=0.5)
        stats = latency_summary(collector.all_spans())
        assert [s.name for s in stats] == ["op", "other"]
        op = stats[0]
        assert op.count == 11
        assert op.errors == 1
        assert op.max == pytest.approx(2.0)
        assert op.p50 <= op.p95 <= op.p99 <= op.max
        row = op.to_dict()
        assert row["max_ms"] == pytest.approx(2000.0)

    def test_open_spans_are_skipped(self):
        tracer = Tracer(clock=FakeClock(), seed=0)
        open_span = tracer.start_span("open")
        done = tracer.start_span("done").end()
        stats = latency_summary([open_span, done])
        assert [s.name for s in stats] == ["done"]

    def test_empty_durations_raise(self):
        from repro.tracing import SpanLatencyStats

        with pytest.raises(ValueError):
            SpanLatencyStats.from_durations("op", [])


class TestRenderers:
    def test_waterfall_lists_every_span_with_bars(self):
        tree = build(
            [
                ("root", None, 0.0, 1.0),
                ("a", "root", 0.1, 0.4),
                ("b", "root", 0.4, 0.9),
            ]
        )
        text = render_waterfall(tree, width=32)
        lines = text.splitlines()
        assert len(lines) == 1 + len(tree)
        assert tree.trace_id in lines[0]
        assert "root" in lines[1]
        assert "a" in text and "b" in text
        assert "ERROR" not in text

    def test_waterfall_flags_errors(self):
        collector = TraceCollector()
        tracer = Tracer(clock=FakeClock(), collector=collector, seed=0)
        root = tracer.start_span("root", start_time=0.0)
        root.record_error("bad payload")
        root.end(at=1.0)
        text = render_waterfall(collector.get(root.trace_id))
        assert "[ERROR]" in text
        assert "bad payload" in text

    def test_critical_path_table_orders_by_contribution(self):
        tree = build(
            [
                ("root", None, 0.0, 1.0),
                ("big", "root", 0.0, 0.9),
            ]
        )
        text = render_critical_path(critical_path(tree))
        lines = text.splitlines()
        assert "1000.00ms total" in lines[0]
        assert lines[1].strip().startswith("big")
        assert "90.0%" in lines[1]
        assert render_critical_path([]) == "critical path: (empty)"

    def test_latency_table_has_header_and_rows(self):
        tracer = Tracer(clock=FakeClock(), seed=0)
        spans = [tracer.start_span("op", start_time=0.0).end(at=0.1)]
        text = render_latency_table(latency_summary(spans))
        lines = text.splitlines()
        assert "p95" in lines[0]
        assert "op" in lines[1]
