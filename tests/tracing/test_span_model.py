"""Tests for the span model and tracer: ids, lifecycle, null behaviour."""

import pytest

from repro.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_UNSET,
    SpanIdAllocator,
    TraceCollector,
    Tracer,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_tracer(seed=0, collector=None):
    clock = FakeClock()
    return Tracer(clock=clock, collector=collector, seed=seed), clock


class TestIds:
    def test_ids_are_deterministic_across_allocators(self):
        a, b = SpanIdAllocator(seed=42), SpanIdAllocator(seed=42)
        assert [a.next_id() for _ in range(10)] == [
            b.next_id() for _ in range(10)
        ]

    def test_ids_differ_across_seeds_and_calls(self):
        alloc = SpanIdAllocator(seed=1)
        ids = {alloc.next_id() for _ in range(100)}
        assert len(ids) == 100
        assert SpanIdAllocator(seed=2).next_id() not in ids

    def test_ids_are_16_hex_chars(self):
        span_id = SpanIdAllocator().next_id()
        assert len(span_id) == 16
        int(span_id, 16)  # must parse as hex

    def test_traces_reproducible_across_runs(self):
        def run():
            tracer, _ = make_tracer(seed=7)
            root = tracer.start_span("root")
            child = tracer.start_span("child", parent=root)
            return root.trace_id, root.span_id, child.span_id

        assert run() == run()


class TestSpanLifecycle:
    def test_parenting_links_trace_and_span_ids(self):
        tracer, _ = make_tracer()
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        grandchild = tracer.start_span("gc", parent=child.context)
        assert root.is_root and root.parent_span_id is None
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_span_id == child.span_id

    def test_no_parent_roots_a_new_trace(self):
        tracer, _ = make_tracer()
        assert (
            tracer.start_span("a").trace_id != tracer.start_span("b").trace_id
        )

    def test_clock_and_override_timestamps(self):
        tracer, clock = make_tracer()
        clock.now = 1.5
        span = tracer.start_span("op")
        assert span.start_time == 1.5
        clock.now = 2.0
        span.end()
        assert span.end_time == 2.0
        assert span.duration == pytest.approx(0.5)
        retro = tracer.start_span("retro", start_time=0.25).end(at=0.75)
        assert retro.duration == pytest.approx(0.5)

    def test_double_end_raises(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("op").end()
        with pytest.raises(RuntimeError, match="ended twice"):
            span.end()

    def test_end_before_start_raises(self):
        tracer, clock = make_tracer()
        clock.now = 5.0
        span = tracer.start_span("op")
        with pytest.raises(ValueError, match="before"):
            span.end(at=1.0)

    def test_duration_raises_while_open(self):
        tracer, _ = make_tracer()
        with pytest.raises(RuntimeError, match="not ended"):
            _ = tracer.start_span("op").duration

    def test_status_transitions(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("op")
        assert span.status == STATUS_UNSET and span.ok
        span.set_status(STATUS_OK)
        assert span.ok
        span.record_error("boom")
        assert span.status == STATUS_ERROR and not span.ok
        assert span.attributes["error"] == 1.0
        assert span.status_message == "boom"
        with pytest.raises(ValueError):
            span.set_status("weird")

    def test_context_manager_marks_escaping_exception(self):
        tracer, _ = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op") as span:
                raise RuntimeError("kaboom")
        assert span.ended
        assert span.status == STATUS_ERROR
        assert "kaboom" in span.status_message

    def test_active_span_accounting(self):
        tracer, _ = make_tracer()
        spans = [tracer.start_span(f"s{i}") for i in range(3)]
        assert tracer.active_spans == 3
        for span in spans:
            span.end()
        assert tracer.active_spans == 0

    def test_finished_spans_reach_the_collector(self):
        collector = TraceCollector()
        tracer, _ = make_tracer(collector=collector)
        span = tracer.start_span("op")
        assert span.trace_id not in collector
        span.end()
        assert span.trace_id in collector


class TestNullTracer:
    def test_start_span_returns_the_shared_null_span(self):
        assert NULL_TRACER.start_span("anything") is NULL_SPAN
        assert NULL_TRACER.span("anything", parent=NULL_SPAN) is NULL_SPAN

    def test_null_span_is_inert(self):
        span = NULL_TRACER.start_span("op")
        span.set_attribute("k", 1).record_error("x").end().end()
        assert span.attributes == {}
        assert span.ok and span.ended and span.duration == 0.0
        assert span.context.trace_labels() == {}
        assert not span.is_recording

    def test_null_parent_roots_a_real_trace(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("op", parent=NULL_SPAN)
        assert span.is_root

    def test_null_tracer_reports_no_activity(self):
        assert NULL_TRACER.active_spans == 0
        assert not NULL_TRACER.is_recording
