"""Tests for the bounded trace collector and trace trees."""

import pytest

from repro.tracing import TraceCollector, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def tracer_and_clock():
    collector = TraceCollector(max_traces=4)
    clock = FakeClock()
    return Tracer(clock=clock, collector=collector, seed=0), clock, collector


def finish_trace(tracer, clock, name="req", children=2):
    """One root with ``children`` sequential children, all ended."""
    root = tracer.start_span(name)
    for i in range(children):
        clock.now += 0.1
        child = tracer.start_span(f"{name}.step{i}", parent=root)
        clock.now += 0.1
        child.end()
    root.end()
    return root


class TestTraceTree:
    def test_tree_assembly_and_navigation(self, tracer_and_clock):
        tracer, clock, collector = tracer_and_clock
        root = finish_trace(tracer, clock, children=3)
        tree = collector.get(root.trace_id)
        assert len(tree) == 4
        assert tree.root.name == "req"
        assert [c.name for c in tree.children(tree.root)] == [
            "req.step0",
            "req.step1",
            "req.step2",
        ]
        assert tree.get(root.span_id) is root
        assert tree.span_names() == [
            "req",
            "req.step0",
            "req.step1",
            "req.step2",
        ]
        assert tree.duration == root.duration
        assert tree.ok
        assert tree.depth_of(tree.root) == 0
        assert tree.depth_of(tree.children(tree.root)[0]) == 1

    def test_children_sorted_by_start_time(self, tracer_and_clock):
        tracer, clock, collector = tracer_and_clock
        root = tracer.start_span("req")
        clock.now = 0.5
        late = tracer.start_span("late", parent=root)
        late.end()
        # An earlier child that *ends* after the late one started.
        early = tracer.start_span("early", parent=root, start_time=0.1)
        early.end()
        root.end()
        tree = collector.get(root.trace_id)
        assert [c.name for c in tree.children(tree.root)] == ["early", "late"]

    def test_unrooted_fragment_has_no_root(self, tracer_and_clock):
        tracer, clock, collector = tracer_and_clock
        root = tracer.start_span("req")
        tracer.start_span("child", parent=root).end()
        # Root never ends: the fragment is queryable but not a tree.
        tree = collector.get(root.trace_id)
        assert tree.root is None
        with pytest.raises(RuntimeError, match="no root"):
            _ = tree.duration


class TestCollector:
    def test_fifo_eviction_at_capacity(self, tracer_and_clock):
        tracer, clock, collector = tracer_and_clock
        roots = [finish_trace(tracer, clock, name=f"t{i}") for i in range(6)]
        assert len(collector) == 4
        assert collector.trace_ids == [r.trace_id for r in roots[2:]]
        assert roots[0].trace_id not in collector
        assert collector.evicted_traces == 2

    def test_late_spans_of_evicted_traces_are_dropped(self, tracer_and_clock):
        tracer, clock, collector = tracer_and_clock
        doomed = tracer.start_span("doomed")
        tracer.start_span("doomed.child", parent=doomed).end()
        for i in range(4):
            finish_trace(tracer, clock, name=f"t{i}", children=0)
        assert doomed.trace_id not in collector
        dropped_before = collector.dropped_spans
        doomed.end()  # arrives after its trace was evicted
        assert collector.dropped_spans == dropped_before + 1
        assert doomed.trace_id not in collector

    def test_rooted_only_filtering(self, tracer_and_clock):
        tracer, clock, collector = tracer_and_clock
        finish_trace(tracer, clock, name="done")
        dangling = tracer.start_span("dangling")
        tracer.start_span("dangling.child", parent=dangling).end()
        assert [t.root.name for t in collector.traces()] == ["done"]
        assert len(collector.traces(rooted_only=False)) == 2

    def test_get_unknown_trace_raises(self, tracer_and_clock):
        _, _, collector = tracer_and_clock
        with pytest.raises(KeyError):
            collector.get("deadbeefdeadbeef")

    def test_stats_and_all_spans(self, tracer_and_clock):
        tracer, clock, collector = tracer_and_clock
        finish_trace(tracer, clock, children=2)
        stats = collector.stats()
        assert stats == {
            "traces": 1,
            "finished_spans": 3,
            "evicted_traces": 0,
            "dropped_spans": 0,
        }
        assert len(collector.all_spans()) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceCollector(max_traces=0)
