"""Tests for exemplar linking: rollup windows → events → trace trees."""

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.rollup import WindowStat
from repro.tracing import (
    TraceCollector,
    Tracer,
    exemplar_trace_ids,
    resolve_window,
    slowest_windows,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def event(source, timestamp, trace_id=None, span_id="feedfacefeedface"):
    evt = TelemetryEvent(source=source, value=1.0, timestamp=timestamp)
    if trace_id is not None:
        evt.with_trace(trace_id, span_id)
    return evt


def window(source="shap", start=0.0, seconds=1.0, mean=1.0, count=4):
    return WindowStat(
        source=source,
        window_start=start,
        window_seconds=seconds,
        count=count,
        mean=mean,
        min=mean,
        max=mean,
        p50=mean,
        p95=mean,
    )


class TestExemplarTraceIds:
    def test_filters_by_source_and_time_and_dedups(self):
        events = [
            event("shap", 0.1, "aaaa"),
            event("shap", 0.2, "bbbb"),
            event("shap", 0.3, "aaaa"),  # duplicate: first-seen wins
            event("lime", 0.4, "cccc"),  # wrong source
            event("shap", 1.5, "dddd"),  # outside [0, 1)
            event("shap", 0.5),  # unlabelled: no trace to offer
        ]
        assert exemplar_trace_ids(events, source="shap", start=0.0, end=1.0) == [
            "aaaa",
            "bbbb",
        ]

    def test_no_filters_returns_all_labelled(self):
        events = [event("a", 0.0, "x"), event("b", 9.0, "y")]
        assert exemplar_trace_ids(events) == ["x", "y"]

    def test_end_is_exclusive(self):
        events = [event("s", 1.0, "edge")]
        assert exemplar_trace_ids(events, end=1.0) == []


class TestSlowestWindows:
    def test_orders_by_mean_descending(self):
        windows = [
            window(start=0.0, mean=1.0),
            window(start=1.0, mean=5.0),
            window(start=2.0, mean=3.0),
        ]
        picked = slowest_windows(windows, k=2)
        assert [w.mean for w in picked] == [5.0, 3.0]

    def test_ties_break_by_window_start(self):
        windows = [window(start=2.0, mean=4.0), window(start=0.0, mean=4.0)]
        assert slowest_windows(windows, k=1)[0].window_start == 0.0

    def test_empty_input(self):
        assert slowest_windows([], k=3) == []


class TestResolveWindow:
    def make_trace(self, tracer, clock):
        root = tracer.start_span("gateway.request")
        clock.now += 0.2
        root.end()
        return root

    def test_window_resolves_to_recorded_traces(self):
        collector = TraceCollector()
        clock = FakeClock()
        tracer = Tracer(clock=clock, collector=collector, seed=0)
        root = self.make_trace(tracer, clock)
        events = [event("shap", 0.1, root.trace_id, root.span_id)]
        resolution = resolve_window(window(), events, collector)
        assert resolution.resolved
        assert resolution.trace_ids == [root.trace_id]
        assert resolution.traces[0].trace_id == root.trace_id
        assert resolution.missing == []
        text = resolution.render_text()
        assert root.trace_id in text
        assert "window [0s, 1s)" in text

    def test_evicted_traces_land_in_missing(self):
        collector = TraceCollector(max_traces=1)
        clock = FakeClock()
        tracer = Tracer(clock=clock, collector=collector, seed=0)
        old = self.make_trace(tracer, clock)
        self.make_trace(tracer, clock)  # evicts `old`
        events = [event("shap", 0.1, old.trace_id, old.span_id)]
        resolution = resolve_window(window(), events, collector)
        assert not resolution.resolved
        assert resolution.missing == [old.trace_id]
        assert "evicted" in resolution.render_text()

    def test_unlabelled_window_renders_gracefully(self):
        resolution = resolve_window(
            window(), [event("shap", 0.1)], TraceCollector()
        )
        assert resolution.trace_ids == []
        assert "no exemplar-labelled events" in resolution.render_text()

    def test_max_traces_caps_resolution(self):
        collector = TraceCollector()
        clock = FakeClock()
        tracer = Tracer(clock=clock, collector=collector, seed=0)
        roots = [self.make_trace(tracer, clock) for _ in range(5)]
        events = [
            event("shap", 0.1 * i, r.trace_id, r.span_id)
            for i, r in enumerate(roots)
        ]
        resolution = resolve_window(window(), events, collector, max_traces=2)
        assert len(resolution.traces) == 2
        assert resolution.trace_ids == [r.trace_id for r in roots[:2]]
