"""Tests for the trustworthy-property model and trade-off matrix."""

import pytest

from repro.trust.properties import (
    PROPERTY_TRADEOFFS,
    TrustProperty,
    conflicting_properties,
    property_catalog,
    tradeoff_between,
)


class TestTradeoffs:
    def test_paper_named_tradeoffs_present(self):
        """§IV names robustness vs privacy, accuracy vs fairness,
        transparency vs security explicitly."""
        assert tradeoff_between(TrustProperty.ROBUSTNESS, TrustProperty.PRIVACY)
        assert tradeoff_between(TrustProperty.ACCURACY, TrustProperty.FAIRNESS)
        assert tradeoff_between(TrustProperty.TRANSPARENCY, TrustProperty.SECURITY)

    def test_symmetric_lookup(self):
        a = tradeoff_between(TrustProperty.PRIVACY, TrustProperty.ROBUSTNESS)
        b = tradeoff_between(TrustProperty.ROBUSTNESS, TrustProperty.PRIVACY)
        assert a == b

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            tradeoff_between(TrustProperty.SAFETY, TrustProperty.VALIDITY)

    def test_conflicting_properties(self):
        conflicts = conflicting_properties(TrustProperty.PRIVACY)
        assert TrustProperty.ROBUSTNESS in conflicts
        assert TrustProperty.ACCURACY in conflicts

    def test_no_self_tradeoffs(self):
        for a, b, __ in PROPERTY_TRADEOFFS:
            assert a is not b

    def test_all_reasons_non_empty(self):
        for __, __, why in PROPERTY_TRADEOFFS:
            assert why


class TestCatalog:
    def test_thirteen_properties(self):
        """§I lists 13 qualities of trustworthy AI."""
        assert len(TrustProperty) == 13

    def test_catalog_partition(self):
        catalog = property_catalog()
        technical = catalog["technical"]
        socio = catalog["socio_technical"]
        assert not technical & socio
        assert technical | socio == frozenset(TrustProperty)

    def test_resilience_is_technical(self):
        assert TrustProperty.RESILIENCE in property_catalog()["technical"]

    def test_explainability_is_socio_technical(self):
        assert TrustProperty.EXPLAINABILITY in property_catalog()["socio_technical"]
