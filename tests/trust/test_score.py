"""Tests for trust-score aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trust.properties import TrustProperty
from repro.trust.score import aggregate_trust_score


class TestAggregateTrustScore:
    def test_uniform_average(self):
        score = aggregate_trust_score(
            {TrustProperty.ACCURACY: 0.9, TrustProperty.FAIRNESS: 0.7}
        )
        assert score.value == pytest.approx(0.8)

    def test_weighted(self):
        score = aggregate_trust_score(
            {TrustProperty.ACCURACY: 1.0, TrustProperty.FAIRNESS: 0.0},
            weights={TrustProperty.ACCURACY: 3.0, TrustProperty.FAIRNESS: 1.0},
        )
        assert score.value == pytest.approx(0.75)

    def test_decomposition_preserved(self):
        readings = {TrustProperty.ACCURACY: 0.9, TrustProperty.RESILIENCE: 0.5}
        score = aggregate_trust_score(readings)
        assert score.per_property == readings

    def test_weakest_property(self):
        score = aggregate_trust_score(
            {
                TrustProperty.ACCURACY: 0.9,
                TrustProperty.RESILIENCE: 0.4,
                TrustProperty.FAIRNESS: 0.7,
            }
        )
        assert score.weakest_property() is TrustProperty.RESILIENCE

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_trust_score({})

    def test_out_of_range_reading_raises(self):
        with pytest.raises(ValueError):
            aggregate_trust_score({TrustProperty.ACCURACY: 1.2})

    def test_weight_without_reading_raises(self):
        """Scoring an unmeasured property is the §VIII homogeneity trap."""
        with pytest.raises(ValueError, match="lack readings"):
            aggregate_trust_score(
                {TrustProperty.ACCURACY: 0.9},
                weights={
                    TrustProperty.ACCURACY: 1.0,
                    TrustProperty.PRIVACY: 1.0,
                },
            )

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            aggregate_trust_score(
                {TrustProperty.ACCURACY: 0.9},
                weights={TrustProperty.ACCURACY: -1.0},
            )

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError):
            aggregate_trust_score(
                {TrustProperty.ACCURACY: 0.9},
                weights={TrustProperty.ACCURACY: 0.0},
            )

    def test_zero_weight_property_excluded(self):
        score = aggregate_trust_score(
            {TrustProperty.ACCURACY: 1.0, TrustProperty.FAIRNESS: 0.0},
            weights={TrustProperty.ACCURACY: 1.0, TrustProperty.FAIRNESS: 0.0},
        )
        assert score.value == 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=13, unique=False)
    )
    def test_score_bounded_property(self, values):
        props = list(TrustProperty)[: len(values)]
        readings = dict(zip(props, values))
        score = aggregate_trust_score(readings)
        assert 0.0 <= score.value <= 1.0
        assert min(values) - 1e-9 <= score.value <= max(values) + 1e-9
