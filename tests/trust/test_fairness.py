"""Tests for group-fairness metrics."""

import numpy as np
import pytest

from repro.trust.fairness import (
    demographic_parity_difference,
    disparate_impact_ratio,
    equal_opportunity_difference,
)


class TestDemographicParity:
    def test_perfectly_fair(self):
        y_pred = np.array([1, 0, 1, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert demographic_parity_difference(y_pred, groups) == 0.0

    def test_maximally_unfair(self):
        y_pred = np.array([1, 1, 0, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert demographic_parity_difference(y_pred, groups) == 1.0

    def test_known_gap(self):
        y_pred = np.array([1, 1, 1, 0, 1, 0, 0, 0])
        groups = np.array(["a"] * 4 + ["b"] * 4)
        assert demographic_parity_difference(y_pred, groups) == pytest.approx(0.5)

    def test_custom_positive_label(self):
        y_pred = np.array(["yes", "no", "yes", "yes"])
        groups = np.array([0, 0, 1, 1])
        gap = demographic_parity_difference(y_pred, groups, positive_label="yes")
        assert gap == pytest.approx(0.5)

    def test_more_than_two_groups_raises(self):
        with pytest.raises(ValueError):
            demographic_parity_difference(
                np.array([1, 0, 1]), np.array(["a", "b", "c"])
            )


class TestDisparateImpact:
    def test_fair_is_one(self):
        y_pred = np.array([1, 0, 1, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert disparate_impact_ratio(y_pred, groups) == 1.0

    def test_four_fifths_rule(self):
        # group a: 40% positive, group b: 80% positive -> ratio 0.5
        y_pred = np.array([1, 1, 0, 0, 0] + [1, 1, 1, 1, 0])
        groups = np.array(["a"] * 5 + ["b"] * 5)
        assert disparate_impact_ratio(y_pred, groups) == pytest.approx(0.5)

    def test_one_group_zero_positives(self):
        y_pred = np.array([0, 0, 1, 1])
        groups = np.array(["a", "a", "b", "b"])
        assert disparate_impact_ratio(y_pred, groups) == 0.0

    def test_both_groups_zero_positives(self):
        y_pred = np.array([0, 0, 0, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert disparate_impact_ratio(y_pred, groups) == 1.0


class TestEqualOpportunity:
    def test_equal_tpr_is_zero(self):
        y_true = np.array([1, 1, 1, 1])
        y_pred = np.array([1, 0, 1, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert equal_opportunity_difference(y_true, y_pred, groups) == 0.0

    def test_tpr_gap(self):
        y_true = np.array([1, 1, 1, 1])
        y_pred = np.array([1, 1, 1, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert equal_opportunity_difference(y_true, y_pred, groups) == pytest.approx(
            0.5
        )

    def test_group_without_positives_raises(self):
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.array([1, 1, 0, 0])
        groups = np.array(["a", "a", "b", "b"])
        with pytest.raises(ValueError):
            equal_opportunity_difference(y_true, y_pred, groups)
