"""Tests for the impact/complexity resilience metrics."""

import numpy as np
import pytest

from repro.attacks import FgsmAttack
from repro.trust.resilience import (
    ResilienceReport,
    evasion_resilience,
    poisoning_resilience,
)


class TestEvasionResilience:
    def test_impact_counts_successful_flips(self, trained_mlp, blobs):
        X, y = blobs
        result = FgsmAttack(trained_mlp, epsilon=2.5).apply(X[:100], y[:100])
        report = evasion_resilience(
            trained_mlp, X[:100], result.X, y[:100], result.cost_seconds
        )
        assert report.kind == "evasion"
        assert 0.0 <= report.impact <= 1.0
        assert report.impact > 0.1  # strong attack must flip something
        assert report.details["n_successful"] == report.impact * 100

    def test_no_perturbation_zero_impact(self, trained_mlp, blobs):
        X, y = blobs
        report = evasion_resilience(trained_mlp, X[:50], X[:50], y[:50], 0.001)
        assert report.impact == 0.0

    def test_complexity_is_per_sample_microseconds(self, trained_mlp, blobs):
        X, y = blobs
        report = evasion_resilience(trained_mlp, X[:50], X[:50], y[:50], 0.005)
        assert report.complexity == pytest.approx(1e6 * 0.005 / 50)

    def test_complexity_constant_across_victims(self, fall_task_split):
        """Paper: FGSM generated once on the NN → identical complexity for
        every victim model it is transferred to."""
        from repro.ml import MLPClassifier, lightgbm_like

        X_train, X_test, y_train, y_test = fall_task_split
        nn = MLPClassifier(hidden_layers=(16,), n_epochs=20, seed=0).fit(
            X_train, y_train
        )
        gbdt = lightgbm_like(n_estimators=5, seed=0).fit(X_train, y_train)
        result = FgsmAttack(nn, epsilon=0.5).apply(X_test, y_test)
        report_nn = evasion_resilience(
            nn, X_test, result.X, y_test, result.cost_seconds
        )
        report_gbdt = evasion_resilience(
            gbdt, X_test, result.X, y_test, result.cost_seconds
        )
        assert report_nn.complexity == report_gbdt.complexity

    def test_shape_mismatch_raises(self, trained_mlp, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            evasion_resilience(trained_mlp, X[:10], X[:9], y[:10], 0.1)

    def test_empty_set_raises(self, trained_mlp):
        empty = np.empty((0, 5))
        with pytest.raises(ValueError):
            evasion_resilience(trained_mlp, empty, empty, np.empty(0), 0.1)

    def test_impact_percent(self, trained_mlp, blobs):
        X, y = blobs
        report = evasion_resilience(trained_mlp, X[:10], X[:10], y[:10], 0.0)
        assert report.impact_percent == 0.0


class TestPoisoningResilience:
    def test_impact_is_metric_drift(self):
        report = poisoning_resilience(
            {"accuracy": 0.95}, {"accuracy": 0.80}, poison_fraction=0.2
        )
        assert report.kind == "poisoning"
        assert report.impact == pytest.approx(0.15)
        assert report.complexity == 0.2

    def test_improvement_clipped_to_zero(self):
        report = poisoning_resilience(
            {"accuracy": 0.8}, {"accuracy": 0.9}, poison_fraction=0.1
        )
        assert report.impact == 0.0

    def test_custom_metric(self):
        report = poisoning_resilience(
            {"f1": 0.9}, {"f1": 0.5}, poison_fraction=0.3, metric="f1"
        )
        assert report.impact == pytest.approx(0.4)

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError):
            poisoning_resilience({"accuracy": 0.9}, {"f1": 0.8}, 0.1, metric="f1")

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            poisoning_resilience({"accuracy": 1.0}, {"accuracy": 1.0}, 1.5)

    def test_extra_details_merged(self):
        report = poisoning_resilience(
            {"accuracy": 0.9},
            {"accuracy": 0.8},
            0.2,
            extra={"attack": 1.0},
        )
        assert report.details["attack"] == 1.0
        assert report.details["baseline"] == 0.9

    def test_report_dataclass(self):
        report = ResilienceReport(kind="poisoning", impact=0.25, complexity=0.5)
        assert report.impact_percent == 25.0
