"""Tests for the adaptive-trustworthiness negotiator."""

import pytest

from repro.trust.negotiation import negotiate_weights
from repro.trust.properties import TrustProperty


BASE_READINGS = {
    TrustProperty.ACCURACY: 0.9,
    TrustProperty.PRIVACY: 0.6,
    TrustProperty.ROBUSTNESS: 0.8,
    TrustProperty.FAIRNESS: 0.7,
}


class TestNegotiateWeights:
    def test_weights_sum_to_one(self):
        outcome = negotiate_weights(BASE_READINGS)
        assert sum(outcome.weights.values()) == pytest.approx(1.0)

    def test_all_measured_properties_weighted(self):
        outcome = negotiate_weights(BASE_READINGS)
        assert set(outcome.weights) == set(BASE_READINGS)
        assert all(w > 0 for w in outcome.weights.values())

    def test_priority_raises_weight(self):
        neutral = negotiate_weights(BASE_READINGS)
        prioritised = negotiate_weights(
            BASE_READINGS, priorities={TrustProperty.PRIVACY: 5.0}
        )
        assert (
            prioritised.weights[TrustProperty.PRIVACY]
            > neutral.weights[TrustProperty.PRIVACY]
        )

    def test_emphasis_leans_on_strong_properties(self):
        flat = negotiate_weights(BASE_READINGS, emphasis=1.0)
        sharp = negotiate_weights(BASE_READINGS, emphasis=4.0)
        assert (
            sharp.weights[TrustProperty.ACCURACY]
            > flat.weights[TrustProperty.ACCURACY]
        )

    def test_conflicts_surfaced(self):
        """Emphasising accuracy must surface the accuracy↔fairness tension."""
        outcome = negotiate_weights(
            BASE_READINGS, priorities={TrustProperty.ACCURACY: 5.0}
        )
        pairs = {(a, b) for a, b, __ in outcome.conflicts}
        assert (TrustProperty.ACCURACY, TrustProperty.FAIRNESS) in pairs

    def test_weak_property_note(self):
        readings = dict(BASE_READINGS)
        readings[TrustProperty.PRIVACY] = 0.3
        outcome = negotiate_weights(readings)
        assert any("privacy" in note for note in outcome.notes)

    def test_score_attached(self):
        outcome = negotiate_weights(BASE_READINGS)
        assert 0.0 <= outcome.score.value <= 1.0
        assert outcome.score.per_property == BASE_READINGS

    def test_empty_readings_raise(self):
        with pytest.raises(ValueError):
            negotiate_weights({})

    def test_unmeasured_priority_raises(self):
        with pytest.raises(ValueError, match="unmeasured"):
            negotiate_weights(
                {TrustProperty.ACCURACY: 0.9},
                priorities={TrustProperty.SAFETY: 1.0},
            )

    def test_negative_priority_raises(self):
        with pytest.raises(ValueError):
            negotiate_weights(
                BASE_READINGS, priorities={TrustProperty.ACCURACY: -1.0}
            )

    def test_invalid_emphasis_raises(self):
        with pytest.raises(ValueError):
            negotiate_weights(BASE_READINGS, emphasis=0.5)

    def test_single_property(self):
        outcome = negotiate_weights({TrustProperty.ACCURACY: 0.8})
        assert outcome.weights[TrustProperty.ACCURACY] == pytest.approx(1.0)
