"""Trace exemplar labels on events survive the full durability path.

The exemplar join (rollup bucket → trace) only works if ``trace_id`` /
``span_id`` ride every serialisation boundary losslessly: JSON dict
round trip, WAL append → replay, and replay after a crash mid-write.
"""

from repro.telemetry import (
    SPAN_ID_LABEL,
    TRACE_ID_LABEL,
    TelemetryEvent,
    WriteAheadLog,
    replay,
)

TRACE = "8c9f86d5b0a1e2f3"
SPAN = "0123456789abcdef"


def traced_event(i=0, trace_id=TRACE, span_id=SPAN):
    return TelemetryEvent(
        source="shap",
        value=120.0 + i,
        timestamp=float(i),
        kind="response",
        attrs={"queue_ms": 3.0},
        labels={"route": "shap"},
    ).with_trace(trace_id, span_id)


class TestEventStamping:
    def test_with_trace_sets_labels_and_properties(self):
        event = traced_event()
        assert event.labels[TRACE_ID_LABEL] == TRACE
        assert event.labels[SPAN_ID_LABEL] == SPAN
        assert event.trace_id == TRACE
        assert event.span_id == SPAN

    def test_unstamped_event_has_no_trace(self):
        event = TelemetryEvent(source="s", value=1.0, timestamp=0.0)
        assert event.trace_id is None
        assert event.span_id is None

    def test_restamping_overwrites(self):
        event = traced_event().with_trace("aaaa", "bbbb")
        assert event.trace_id == "aaaa"
        assert event.span_id == "bbbb"

    def test_json_dict_round_trip_is_lossless(self):
        event = traced_event()
        clone = TelemetryEvent.from_json_dict(event.to_json_dict())
        assert clone.trace_id == TRACE
        assert clone.span_id == SPAN
        assert clone.labels == event.labels


class TestWalRoundTrip:
    def test_labels_survive_append_and_replay(self, tmp_path):
        events = [traced_event(i, trace_id=f"{i:016x}") for i in range(8)]
        with WriteAheadLog(tmp_path) as wal:
            for event in events:
                wal.append(event)
        replayed = list(replay(tmp_path))
        assert len(replayed) == 8
        for original, clone in zip(events, replayed):
            assert clone.trace_id == original.trace_id
            assert clone.span_id == original.span_id
            assert clone.labels == original.labels
            assert clone.attrs == original.attrs

    def test_mixed_traced_and_untraced_streams(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(traced_event(0))
            wal.append(TelemetryEvent(source="shap", value=1.0, timestamp=1.0))
        traced, bare = replay(tmp_path)
        assert traced.trace_id == TRACE
        assert bare.trace_id is None
        assert TRACE_ID_LABEL not in bare.labels

    def test_labels_survive_a_torn_tail(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(traced_event(0))
            wal.append(traced_event(1, trace_id="b" * 16))
        # Simulate a crash mid-append: garbage after the durable records.
        [segment] = list(tmp_path.glob("wal-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write('{"half written')
        replayed = list(replay(tmp_path))
        assert [e.trace_id for e in replayed] == [TRACE, "b" * 16]
