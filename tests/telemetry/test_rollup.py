"""Tests for tumbling-window rollups and cascading downsampling."""

import numpy as np
import pytest

from repro.telemetry import TelemetryEvent, TumblingWindowAggregator


def stream(values_by_time, source="s"):
    return [
        TelemetryEvent(source=source, value=v, timestamp=t)
        for t, v in values_by_time
    ]


class TestWindowing:
    def test_window_stats_are_exact(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        values = [0.2, 0.8, 0.5, 0.9]
        agg.ingest_many(stream([(0.1 + 0.2 * i, v) for i, v in enumerate(values)]))
        agg.flush()
        (window,) = agg.windows(source="s")
        assert window.count == 4
        assert window.mean == pytest.approx(np.mean(values))
        assert window.min == 0.2
        assert window.max == 0.9
        assert window.p50 == pytest.approx(np.percentile(values, 50))
        assert window.p95 == pytest.approx(np.percentile(values, 95))
        assert window.exact_percentiles

    def test_windows_tumble_on_boundaries(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        agg.ingest_many(stream([(0.5, 1.0), (1.5, 2.0), (2.5, 3.0)]))
        agg.flush()
        windows = agg.windows(source="s")
        assert [w.window_start for w in windows] == [0.0, 1.0, 2.0]
        assert all(w.count == 1 for w in windows)

    def test_sources_isolated(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        agg.ingest_many(stream([(0.1, 0.1)], source="a"))
        agg.ingest_many(stream([(0.2, 0.9)], source="b"))
        agg.flush()
        assert agg.sources == ["a", "b"]
        assert agg.windows(source="a")[0].mean == pytest.approx(0.1)
        assert agg.windows(source="b")[0].mean == pytest.approx(0.9)

    def test_windows_finalise_only_past_watermark(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        agg.ingest_many(stream([(0.5, 1.0)]))
        assert agg.windows(source="s") == []  # window [0,1) still open
        agg.ingest_many(stream([(1.1, 2.0)]))
        assert len(agg.windows(source="s")) == 1  # watermark crossed 1.0


class TestCascade:
    def test_cascade_counts_and_means_exact(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=(10.0,))
        events = stream([(i * 0.1, float(i % 7)) for i in range(250)])
        agg.ingest_many(events)
        agg.flush()
        level1 = agg.windows(source="s", level=1)
        assert sum(w.count for w in level1) == 250
        first = level1[0]
        in_range = [e.value for e in events if 0 <= e.timestamp < 10.0]
        assert first.count == len(in_range)
        assert first.mean == pytest.approx(np.mean(in_range))
        assert first.min == min(in_range)
        assert first.max == max(in_range)
        assert not first.exact_percentiles

    def test_cascade_requires_integer_multiples(self):
        with pytest.raises(ValueError):
            TumblingWindowAggregator(window_seconds=1.0, cascades=(2.5,))
        with pytest.raises(ValueError):
            TumblingWindowAggregator(window_seconds=2.0, cascades=(1.0,))

    def test_three_levels(self):
        agg = TumblingWindowAggregator(
            window_seconds=1.0, cascades=(10.0, 60.0)
        )
        agg.ingest_many(
            stream([(float(i), 0.5) for i in range(130)])
        )
        agg.flush()
        assert len(agg.windows(source="s", level=2)) == 3  # 0, 60, 120


class TestBoundedMemory:
    def test_retention_evicts_oldest_windows(self):
        agg = TumblingWindowAggregator(
            window_seconds=1.0, cascades=(), retention=5
        )
        agg.ingest_many(stream([(float(i) + 0.5, 1.0) for i in range(50)]))
        agg.flush()
        windows = agg.windows(source="s")
        assert len(windows) == 5
        assert windows[0].window_start == 45.0  # only the newest survive

    def test_late_events_are_counted_not_applied(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        agg.ingest_many(stream([(0.5, 1.0), (5.0, 1.0)]))
        before = agg.windows(source="s")[0].count
        agg.ingest(TelemetryEvent(source="s", value=9.9, timestamp=0.6))
        assert agg.late_events == 1
        assert agg.windows(source="s")[0].count == before

    def test_allowed_lateness_admits_stragglers(self):
        agg = TumblingWindowAggregator(
            window_seconds=1.0, cascades=(), allowed_lateness=5.0
        )
        agg.ingest_many(stream([(0.5, 1.0), (5.0, 1.0)]))
        agg.ingest(TelemetryEvent(source="s", value=3.0, timestamp=0.6))
        assert agg.late_events == 0
        agg.flush()
        assert agg.windows(source="s")[0].count == 2


class TestQueriesAndStats:
    def test_time_bounded_windows(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        agg.ingest_many(stream([(float(i) + 0.5, 1.0) for i in range(10)]))
        agg.flush()
        bounded = agg.windows(source="s", start=3.0, end=6.0)
        assert [w.window_start for w in bounded] == [3.0, 4.0, 5.0]

    def test_totals_match_raw_stream(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        values = [float(i % 11) / 10 for i in range(500)]
        agg.ingest_many(
            stream([(i * 0.01, v) for i, v in enumerate(values)])
        )
        agg.flush()
        totals = agg.totals("s")
        assert totals["count"] == 500
        assert totals["mean"] == pytest.approx(np.mean(values))
        assert totals["min"] == min(values)
        assert totals["max"] == max(values)

    def test_totals_unknown_source_raises(self):
        agg = TumblingWindowAggregator()
        with pytest.raises(KeyError):
            agg.totals("ghost")

    def test_invalid_level_raises(self):
        agg = TumblingWindowAggregator(cascades=())
        with pytest.raises(ValueError):
            agg.windows(level=1)

    def test_stats_counters(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=(10.0,))
        agg.ingest_many(stream([(float(i), 0.5) for i in range(25)]))
        snapshot = agg.stats()
        assert snapshot["ingested"] == 25
        assert snapshot["watermark"] == 24.0
        assert snapshot["open_windows"] >= 1
        agg.flush()
        assert agg.stats()["open_windows"] == 0
