"""Tests for the write-ahead log: durability, rotation, recovery."""

import os

import pytest

from repro.telemetry import (
    TelemetryEvent,
    WalCorruptionError,
    WriteAheadLog,
    replay,
)


def make_events(n, source="s"):
    return [
        TelemetryEvent(
            source=source,
            value=float(i) / 10.0,
            timestamp=float(i),
            attrs={"round": float(i)},
            labels={"property": "accuracy"},
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_append_then_replay_preserves_everything(self, tmp_path):
        events = make_events(25)
        with WriteAheadLog(tmp_path / "wal") as wal:
            for event in events:
                wal.append(event)
        back = list(replay(tmp_path / "wal"))
        assert back == events

    def test_replay_filters(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            for event in make_events(10, source="a"):
                wal.append(event)
            for event in make_events(10, source="b"):
                wal.append(event)
        only_b = list(replay(tmp_path / "wal", sources=["b"]))
        assert {e.source for e in only_b} == {"b"}
        bounded = list(replay(tmp_path / "wal", start=3.0, end=7.0))
        assert all(3.0 <= e.timestamp < 7.0 for e in bounded)
        assert len(bounded) == 8  # 4 per source

    def test_replay_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(replay(tmp_path / "nothing"))

    def test_reopen_appends_after_existing_records(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(make_events(1)[0])
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(make_events(2)[1])
        assert len(list(replay(tmp_path / "wal"))) == 2


class TestRotation:
    def test_segments_rotate_at_size_threshold(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", max_segment_bytes=500)
        for event in make_events(50):
            wal.append(event)
        wal.close()
        assert len(wal.segments) > 1
        # order is preserved across the segment boundary
        back = list(replay(tmp_path / "wal"))
        assert [e.timestamp for e in back] == [float(i) for i in range(50)]

    def test_rotated_segments_stay_bounded(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", max_segment_bytes=500)
        for event in make_events(50):
            wal.append(event)
        wal.close()
        # every closed segment stopped within one record of the threshold
        for path in wal.segments[:-1]:
            assert os.path.getsize(path) < 800


class TestCrashRecovery:
    def _write_then_tear(self, tmp_path, n=10, tear_bytes=20):
        wal = WriteAheadLog(tmp_path / "wal")
        for event in make_events(n):
            wal.append(event)
        wal.close()
        tail = wal.segments[-1]
        with open(tail, "rb+") as fh:
            fh.truncate(os.path.getsize(tail) - tear_bytes)
        return tmp_path / "wal"

    def test_replay_tolerates_torn_tail(self, tmp_path):
        wal_dir = self._write_then_tear(tmp_path)
        back = list(replay(wal_dir))
        assert len(back) == 9  # last record torn off mid-line

    def test_reopen_heals_torn_tail_and_appends(self, tmp_path):
        wal_dir = self._write_then_tear(tmp_path)
        wal = WriteAheadLog(wal_dir)
        assert wal.recovered_truncated_records == 1
        wal.append(make_events(1)[0])
        wal.close()
        back = list(replay(wal_dir))
        assert len(back) == 10  # 9 intact + 1 fresh; no damaged remnants

    def test_bitflip_in_tail_record_detected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for event in make_events(5):
            wal.append(event)
        wal.close()
        tail = wal.segments[-1]
        lines = open(tail, "r", encoding="utf-8").readlines()
        lines[-1] = lines[-1].replace('"value":0.4', '"value":0.9')
        with open(tail, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        assert len(list(replay(tmp_path / "wal"))) == 4  # CRC catches it

    def test_mid_stream_corruption_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for event in make_events(5):
            wal.append(event)
        wal.close()
        tail = wal.segments[-1]
        lines = open(tail, "r", encoding="utf-8").readlines()
        lines[1] = "garbage\n"
        with open(tail, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(WalCorruptionError):
            list(replay(tmp_path / "wal"))


class TestLifecycle:
    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        with pytest.raises(RuntimeError):
            wal.append(make_events(1)[0])

    def test_stats_shape(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", max_segment_bytes=400)
        for event in make_events(20):
            wal.append(event)
        stats = wal.stats()
        assert stats["appended"] == 20
        assert stats["segments"] >= 2
        assert stats["recovered_truncated_records"] == 0
        wal.close()

    def test_invalid_segment_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal", max_segment_bytes=0)
