"""Tests for the query engine over hot rollups and cold WAL."""

import numpy as np
import pytest

from repro.telemetry import (
    TelemetryEvent,
    TelemetryQuery,
    TumblingWindowAggregator,
    WriteAheadLog,
    resample,
)


def make_stream(n=60, sources=("good", "bad")):
    """Interleaved two-source stream; 'bad' is consistently worse."""
    events = []
    for i in range(n):
        t = i * 0.5
        events.append(
            TelemetryEvent(source="good", value=0.9 + 0.001 * i, timestamp=t)
        )
        events.append(
            TelemetryEvent(source="bad", value=0.3 - 0.001 * i, timestamp=t)
        )
    return [e for e in events if e.source in sources]


@pytest.fixture()
def hot():
    agg = TumblingWindowAggregator(window_seconds=1.0, cascades=(10.0,))
    agg.ingest_many(make_stream())
    agg.flush()
    return TelemetryQuery(rollups=agg)


@pytest.fixture()
def cold(tmp_path):
    with WriteAheadLog(tmp_path / "wal") as wal:
        for event in make_stream():
            wal.append(event)
    return TelemetryQuery(wal_dir=tmp_path / "wal")


class TestConstruction:
    def test_needs_some_tier(self):
        with pytest.raises(ValueError):
            TelemetryQuery()

    def test_hot_only_rejects_event_queries(self, hot):
        with pytest.raises(RuntimeError):
            hot.events()

    def test_cold_only_rejects_window_queries(self, cold):
        with pytest.raises(RuntimeError):
            cold.windows()


class TestHotQueries:
    def test_windows_source_and_time_filters(self, hot):
        subset = hot.windows(sources=["good"], start=5.0, end=10.0)
        assert {w.source for w in subset} == {"good"}
        assert all(5.0 <= w.window_start < 10.0 for w in subset)

    def test_windows_resampled_inline(self, hot):
        coarse = hot.windows(sources=["good"], window_seconds=5.0)
        assert all(w.window_seconds == 5.0 for w in coarse)
        fine = hot.windows(sources=["good"])
        assert sum(w.count for w in coarse) == sum(w.count for w in fine)

    def test_top_k_worst_lowest(self, hot):
        ranking = hot.top_k(2)
        assert [name for name, __ in ranking] == ["bad", "good"]
        assert ranking[0][1] < ranking[1][1]

    def test_top_k_worst_highest_for_latencies(self, hot):
        ranking = hot.top_k(1, worst="highest")
        assert ranking[0][0] == "good"

    def test_top_k_respects_k(self, hot):
        assert len(hot.top_k(1)) == 1

    def test_top_k_validation(self, hot):
        with pytest.raises(ValueError):
            hot.top_k(0)
        with pytest.raises(ValueError):
            hot.top_k(1, metric="nope")
        with pytest.raises(ValueError):
            hot.top_k(1, worst="sideways")


class TestResample:
    def test_exact_fields_survive_resampling(self):
        agg = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        values = [float(i % 5) for i in range(40)]
        agg.ingest_many(
            [
                TelemetryEvent(source="s", value=v, timestamp=i * 0.25)
                for i, v in enumerate(values)
            ]
        )
        agg.flush()
        coarse = resample(agg.windows(source="s"), 10.0)
        assert len(coarse) == 1
        assert coarse[0].count == 40
        assert coarse[0].mean == pytest.approx(np.mean(values))
        assert coarse[0].min == 0.0
        assert coarse[0].max == 4.0

    def test_rejects_non_multiple_target(self, hot):
        with pytest.raises(ValueError):
            resample(hot.windows(sources=["good"]), 1.5)

    def test_rejects_mixed_window_sizes(self, hot):
        mixed = hot.windows(sources=["good"], level=0) + hot.windows(
            sources=["good"], level=1
        )
        with pytest.raises(ValueError):
            resample(mixed, 20.0)

    def test_empty_input(self):
        assert resample([], 10.0) == []


class TestColdQueries:
    def test_events_in_append_order(self, cold):
        events = cold.events()
        assert len(events) == 120
        assert events == sorted(events, key=lambda e: e.timestamp)

    def test_events_filters_and_limit(self, cold):
        subset = cold.events(sources=["bad"], start=5.0, end=20.0, limit=7)
        assert len(subset) == 7
        assert all(e.source == "bad" for e in subset)
        assert all(5.0 <= e.timestamp < 20.0 for e in subset)

    def test_rebuild_rollups_equals_live_aggregation(self, cold, hot):
        rebuilt = cold.rebuild_rollups(window_seconds=1.0, cascades=(10.0,))
        for source in ("good", "bad"):
            assert rebuilt.totals(source) == hot.rollups.totals(source)


class TestWindowFilters:
    """The time-range/trailing helpers under the burn-rate evaluator."""

    def windows(self, hot):
        return hot.rollups.windows(source="good")

    def test_window_range_uses_overlap_not_containment(self, hot):
        from repro.telemetry import window_range

        # [2.5, 4.5) clips windows [2,3) and [4,5) partially: both kept
        kept = window_range(self.windows(hot), start=2.5, end=4.5)
        assert [w.window_start for w in kept] == [2.0, 3.0, 4.0]

    def test_window_range_bounds_are_half_open(self, hot):
        from repro.telemetry import window_range

        kept = window_range(self.windows(hot), start=2.0, end=4.0)
        assert [w.window_start for w in kept] == [2.0, 3.0]

    def test_window_range_open_ends(self, hot):
        from repro.telemetry import window_range

        windows = self.windows(hot)
        assert window_range(windows) == windows
        assert window_range(windows, start=28.0) == windows[-2:]
        assert window_range(windows, end=2.0) == windows[:2]

    def test_window_range_rejects_empty_ranges(self, hot):
        from repro.telemetry import window_range

        with pytest.raises(ValueError, match="empty range"):
            window_range(self.windows(hot), start=5.0, end=5.0)

    def test_trailing_defaults_to_the_newest_window_end(self, hot):
        from repro.telemetry import trailing_windows

        kept = trailing_windows(self.windows(hot), 3.0)
        # newest end is 30.0 -> [27, 30)
        assert [w.window_start for w in kept] == [27.0, 28.0, 29.0]

    def test_trailing_at_an_explicit_instant(self, hot):
        from repro.telemetry import trailing_windows

        kept = trailing_windows(self.windows(hot), 2.0, at=10.5)
        # [8.5, 10.5) overlaps [8,9), [9,10), [10,11)
        assert [w.window_start for w in kept] == [8.0, 9.0, 10.0]

    def test_trailing_rejects_nonpositive_lookback(self, hot):
        from repro.telemetry import trailing_windows

        with pytest.raises(ValueError, match="positive"):
            trailing_windows(self.windows(hot), 0.0)

    def test_trailing_over_no_windows_is_empty(self):
        from repro.telemetry import trailing_windows

        assert trailing_windows([], 5.0) == []
