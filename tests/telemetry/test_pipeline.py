"""Tests for the TelemetryPipeline façade (bus → WAL → rollups)."""

import pytest

from repro.telemetry import (
    TelemetryEvent,
    TelemetryPipeline,
    replay,
)


def make_event(i, source="s"):
    return TelemetryEvent(source=source, value=0.5, timestamp=float(i))


class TestLifecycle:
    def test_publish_before_start_raises(self, tmp_path):
        pipe = TelemetryPipeline(wal_dir=tmp_path / "wal")
        with pytest.raises(RuntimeError):
            pipe.publish("t", make_event(0))

    def test_double_start_raises(self):
        pipe = TelemetryPipeline().start()
        with pytest.raises(RuntimeError):
            pipe.start()

    def test_close_is_idempotent_and_final(self, tmp_path):
        pipe = TelemetryPipeline(wal_dir=tmp_path / "wal").start()
        pipe.publish("t", make_event(0))
        pipe.close()
        pipe.close()
        with pytest.raises(RuntimeError):
            pipe.start()

    def test_context_manager_flushes_to_wal(self, tmp_path):
        with TelemetryPipeline(wal_dir=tmp_path / "wal") as pipe:
            for i in range(5):
                pipe.publish("t", make_event(i))
        assert len(list(replay(tmp_path / "wal"))) == 5

    def test_memory_only_mode(self):
        with TelemetryPipeline() as pipe:
            pipe.publish("t", make_event(0))
            pipe.publish("t", make_event(1))
        assert pipe.wal is None
        assert pipe.rollups.ingested == 2
        assert pipe.stats()["wal"] is None


class TestWiring:
    def test_events_reach_wal_and_rollups(self, tmp_path):
        with TelemetryPipeline(wal_dir=tmp_path / "wal") as pipe:
            for i in range(20):
                pipe.publish("t", make_event(i))
            pipe.flush()
            assert pipe.wal.appended == 20
            assert pipe.rollups.ingested == 20

    def test_extra_subscribers_coexist(self, tmp_path):
        seen = []
        with TelemetryPipeline(wal_dir=tmp_path / "wal") as pipe:
            pipe.bus.subscribe("spy", topics="t", callback=seen.append)
            pipe.publish("t", make_event(0))
            pipe.pump()
        assert len(seen) == 1

    def test_auto_pump_bounds_queues(self, tmp_path):
        pipe = TelemetryPipeline(
            wal_dir=tmp_path / "wal", auto_pump_every=10
        ).start()
        for i in range(100):
            pipe.publish("t", make_event(i))
        # queues were drained every 10 events, not left to pile up
        stats = pipe.stats()["bus"]["subscriptions"]
        assert stats["wal"]["backlog"] == 0
        assert pipe.wal.appended == 100
        pipe.close()

    def test_auto_pump_validation(self):
        with pytest.raises(ValueError):
            TelemetryPipeline(auto_pump_every=0)

    def test_query_spans_both_tiers(self, tmp_path):
        with TelemetryPipeline(wal_dir=tmp_path / "wal") as pipe:
            for i in range(12):
                pipe.publish("t", make_event(i))
            pipe.flush()
            query = pipe.query()
            assert len(query.events()) == 12
            assert sum(w.count for w in query.windows()) >= 11

    def test_stats_snapshot_shape(self, tmp_path):
        with TelemetryPipeline(wal_dir=tmp_path / "wal") as pipe:
            pipe.publish("t", make_event(0))
            pipe.flush()
            snapshot = pipe.stats()
        assert snapshot["bus"]["topics"]["t"]["published"] == 1
        assert snapshot["wal"]["appended"] == 1
        assert snapshot["rollup"]["ingested"] == 1
