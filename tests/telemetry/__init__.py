"""Tests for the streaming telemetry subsystem."""
