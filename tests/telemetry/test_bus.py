"""Tests for the pub/sub telemetry bus and its backpressure policies."""

import pytest

from repro.telemetry import BackpressureError, TelemetryBus, TelemetryEvent


def make_event(i=0, source="s", topic_value=1.0):
    return TelemetryEvent(source=source, value=topic_value, timestamp=float(i))


@pytest.fixture()
def bus():
    return TelemetryBus()


class TestSubscriptions:
    def test_duplicate_name_raises(self, bus):
        bus.subscribe("a")
        with pytest.raises(ValueError):
            bus.subscribe("a")

    def test_unsubscribe_unknown_raises(self, bus):
        with pytest.raises(KeyError):
            bus.unsubscribe("ghost")

    def test_unsubscribed_consumer_stops_receiving(self, bus):
        sub = bus.subscribe("a", topics="t")
        bus.publish("t", make_event())
        bus.unsubscribe("a")
        bus.publish("t", make_event())
        assert sub.backlog == 1  # only the pre-unsubscribe event

    def test_invalid_policy_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.subscribe("a", policy="block")

    def test_invalid_capacity_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.subscribe("a", capacity=0)


class TestTopicRouting:
    def test_topic_isolation(self, bus):
        only_a = bus.subscribe("only-a", topics="a")
        only_b = bus.subscribe("only-b", topics="b")
        bus.publish("a", make_event())
        assert only_a.backlog == 1
        assert only_b.backlog == 0

    def test_wildcard_sees_everything(self, bus):
        sub = bus.subscribe("all")
        bus.publish("a", make_event())
        bus.publish("b", make_event())
        assert sub.backlog == 2

    def test_multi_topic_subscription(self, bus):
        sub = bus.subscribe("ab", topics=["a", "b"])
        bus.publish("a", make_event())
        bus.publish("b", make_event())
        bus.publish("c", make_event())
        assert sub.backlog == 2

    def test_publish_returns_placements(self, bus):
        bus.subscribe("x", topics="t")
        bus.subscribe("y", topics="t")
        bus.subscribe("z", topics="other")
        assert bus.publish("t", make_event()) == 2


class TestBackpressure:
    def test_drop_oldest_keeps_freshest(self, bus):
        sub = bus.subscribe("slow", topics="t", capacity=3, policy="drop_oldest")
        for i in range(10):
            bus.publish("t", make_event(i))
        batch = sub.poll()
        assert [e.timestamp for e in batch] == [7.0, 8.0, 9.0]
        assert sub.dropped == 7

    def test_drop_newest_keeps_history(self, bus):
        sub = bus.subscribe("slow", topics="t", capacity=3, policy="drop_newest")
        for i in range(10):
            bus.publish("t", make_event(i))
        batch = sub.poll()
        assert [e.timestamp for e in batch] == [0.0, 1.0, 2.0]
        assert sub.dropped == 7

    def test_error_policy_raises_at_publisher(self, bus):
        bus.subscribe("strict", topics="t", capacity=2, policy="error")
        bus.publish("t", make_event(0))
        bus.publish("t", make_event(1))
        with pytest.raises(BackpressureError):
            bus.publish("t", make_event(2))

    def test_slow_subscriber_never_blocks_publisher(self, bus):
        """Acceptance criterion: unbounded publishing against a slow
        drop_oldest consumer always completes, queue stays bounded, and
        the dropped counter accounts for every missing event."""
        n_events = 10_000
        capacity = 64
        sub = bus.subscribe(
            "slow", topics="t", capacity=capacity, policy="drop_oldest"
        )
        for i in range(n_events):
            bus.publish("t", make_event(i))
        assert sub.backlog == capacity
        assert sub.dropped == n_events - capacity
        assert sub.enqueued == n_events
        delivered = sub.poll()
        assert len(delivered) == capacity
        assert sub.enqueued - sub.dropped == sub.delivered


class TestDelivery:
    def test_poll_invokes_callback(self, bus):
        seen = []
        sub = bus.subscribe("cb", topics="t", callback=seen.append)
        bus.publish("t", make_event(1))
        sub.poll()
        assert len(seen) == 1

    def test_pump_drains_callback_subscribers_only(self, bus):
        seen = []
        bus.subscribe("cb", topics="t", callback=seen.append)
        pull = bus.subscribe("pull", topics="t")
        bus.publish("t", make_event())
        assert bus.pump() == 1
        assert len(seen) == 1
        assert pull.backlog == 1  # pull-style queue untouched

    def test_poll_respects_max_events(self, bus):
        sub = bus.subscribe("batch", topics="t")
        for i in range(5):
            bus.publish("t", make_event(i))
        assert len(sub.poll(max_events=2)) == 2
        assert sub.backlog == 3


class TestCounters:
    def test_topic_and_subscription_stats(self, bus):
        bus.subscribe("a", topics="t", capacity=1, policy="drop_newest")
        bus.publish("t", make_event(0))
        bus.publish("t", make_event(1))
        stats = bus.stats()
        assert stats["topics"]["t"] == {
            "published": 2,
            "delivered": 1,
            "dropped": 1,
        }
        assert stats["subscriptions"]["a"]["enqueued"] == 1
        assert stats["subscriptions"]["a"]["dropped"] == 1
        assert bus.topics == ["t"]
