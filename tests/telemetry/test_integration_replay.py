"""Integration: monitor → bus → WAL crash → replay → identical dashboard.

The subsystem's reason to exist (ISSUE acceptance criterion): after a
simulated crash — no clean shutdown, a torn record on disk — replaying the
WAL rebuilds a dashboard and rollup store whose per-sensor statistics
match the live run exactly.
"""

import pytest

from repro.core.dashboard import AIDashboard
from repro.core.monitor import ContinuousMonitor
from repro.core.registry import SensorRegistry
from repro.core.sensors import AISensor, ModelContext, SensorReading
from repro.telemetry import TelemetryPipeline, TelemetryQuery, replay
from repro.trust.properties import TrustProperty


class WavySensor(AISensor):
    """Deterministic sensor with per-round variation (no ML needed)."""

    property = TrustProperty.ACCURACY

    def __init__(self, name, amplitude, clock):
        super().__init__(name, clock)
        self.amplitude = amplitude
        self._calls = 0

    def measure(self, context):
        self._calls += 1
        value = 0.5 + self.amplitude * ((self._calls % 7) / 7.0 - 0.5)
        return self._reading(value, context, details={"call": self._calls})


@pytest.fixture()
def live_run(tmp_path):
    """A monitored live run that 'crashes' without closing anything."""
    clock = {"t": 0.0}

    def tick():
        clock["t"] += 0.25
        return clock["t"]

    registry = SensorRegistry()
    registry.register(WavySensor("perf", amplitude=0.6, clock=tick))
    registry.register(WavySensor("fair", amplitude=0.2, clock=tick))
    dashboard = AIDashboard()
    pipeline = TelemetryPipeline(wal_dir=tmp_path / "wal", window_seconds=1.0)
    monitor = ContinuousMonitor(
        registry,
        dashboard,
        lambda: ModelContext(model_version=1),
        telemetry=pipeline,
    )
    monitor.run(40)
    # crash simulation: the OS buffers reach disk but close() never runs,
    # and the final record is torn mid-write
    pipeline.wal.flush()
    tail = pipeline.wal.segments[-1]
    with open(tail, "a", encoding="utf-8") as fh:
        fh.write('{"crc": 1, "event": {"source": "perf", "val')
    pipeline.rollups.flush()
    return tmp_path / "wal", dashboard, pipeline


def test_replayed_dashboard_matches_live_dashboard(live_run):
    wal_dir, live_dashboard, __ = live_run
    rebuilt = AIDashboard()
    for event in replay(wal_dir):
        rebuilt.add_reading(SensorReading.from_event(event))
    assert rebuilt.sensors == live_dashboard.sensors
    for sensor in live_dashboard.sensors:
        assert rebuilt.values(sensor) == live_dashboard.values(sensor)
        live_latest = live_dashboard.latest(sensor)
        replay_latest = rebuilt.latest(sensor)
        assert replay_latest == live_latest  # full dataclass equality


def test_replayed_rollups_match_live_rollups(live_run):
    wal_dir, __, pipeline = live_run
    rebuilt = TelemetryQuery(wal_dir=wal_dir).rebuild_rollups(
        window_seconds=1.0
    )
    assert rebuilt.sources == pipeline.rollups.sources
    for sensor in rebuilt.sources:
        live = pipeline.rollups.totals(sensor)
        cold = rebuilt.totals(sensor)
        assert cold["count"] == live["count"] == 40
        assert cold["mean"] == live["mean"]
        assert cold["min"] == live["min"]
        assert cold["max"] == live["max"]


def test_replayed_windows_match_live_windows_exactly(live_run):
    wal_dir, __, pipeline = live_run
    rebuilt = TelemetryQuery(wal_dir=wal_dir).rebuild_rollups(
        window_seconds=1.0
    )
    for sensor in pipeline.rollups.sources:
        live = pipeline.rollups.windows(source=sensor)
        cold = rebuilt.windows(source=sensor)
        assert cold == live  # WindowStat dataclass equality, all fields


def test_torn_tail_did_not_poison_the_stream(live_run):
    wal_dir, __, pipeline = live_run
    events = list(replay(wal_dir))
    assert len(events) == 80  # 40 rounds x 2 sensors; torn record dropped
    stats = pipeline.stats()
    assert stats["bus"]["subscriptions"]["wal"]["dropped"] == 0
