"""End-to-end runs over synthetic trees: gating, baselines, reports."""

import json

from repro.analysis import Baseline, BaselineEntry, run_analysis


def write_tree(root, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


class TestGating:
    def test_clean_tree_exits_zero(self, tmp_path):
        write_tree(tmp_path, {"ml/good.py": "def f(x=None):\n    return x\n"})
        report = run_analysis(tmp_path)
        assert report.clean and report.exit_code == 0

    def test_seeded_violation_exits_nonzero(self, tmp_path):
        write_tree(tmp_path, {"ml/bad.py": 'msg = f"forgot the braces"\n'})
        report = run_analysis(tmp_path)
        assert not report.clean
        assert report.exit_code == 1
        assert report.findings[0].rule == "fstring-placeholder"

    def test_seeded_layer_violation_exits_nonzero(self, tmp_path):
        write_tree(
            tmp_path, {"ml/bad.py": "from repro.gateway import ApiGateway\n"}
        )
        report = run_analysis(tmp_path)
        assert report.exit_code == 1
        assert report.findings[0].rule == "layer-contract"

    def test_no_contracts_flag_skips_graph_checks(self, tmp_path):
        write_tree(
            tmp_path, {"ml/bad.py": "from repro.gateway import ApiGateway\n"}
        )
        report = run_analysis(tmp_path, contracts=False)
        assert report.clean
        assert report.package_edges == []


class TestBaselineIntegration:
    def test_baselined_finding_does_not_gate(self, tmp_path):
        write_tree(tmp_path, {"ml/bad.py": "def f(x=[]):\n    return x\n"})
        baseline_path = tmp_path / "lint-baseline.json"
        Baseline(
            [
                BaselineEntry(
                    rule="mutable-default",
                    path="ml/bad.py",
                    reason="fixture: accepted for the test",
                )
            ]
        ).save(baseline_path)
        report = run_analysis(tmp_path, baseline=baseline_path)
        assert report.clean
        assert len(report.suppressed) == 1
        assert report.baseline_path == str(baseline_path)

    def test_baseline_autodiscovered_beside_tree(self, tmp_path):
        write_tree(tmp_path, {"ml/bad.py": "def f(x=[]):\n    return x\n"})
        Baseline(
            [BaselineEntry("mutable-default", "ml/bad.py", "accepted")]
        ).save(tmp_path / "lint-baseline.json")
        report = run_analysis(tmp_path)  # no explicit baseline argument
        assert report.clean and len(report.suppressed) == 1

    def test_stale_entries_surface_in_report(self, tmp_path):
        write_tree(tmp_path, {"ml/good.py": "x = 1\n"})
        baseline_path = tmp_path / "lint-baseline.json"
        Baseline(
            [BaselineEntry("mutable-default", "ml/deleted.py", "old")]
        ).save(baseline_path)
        report = run_analysis(tmp_path, baseline=baseline_path)
        assert report.clean  # stale entries never gate…
        assert len(report.stale_entries) == 1  # …but they are reported
        assert "stale baseline entry" in report.render_text()


class TestReportShapes:
    def test_text_report_lists_findings(self, tmp_path):
        write_tree(tmp_path, {"ml/bad.py": 'msg = f"oops"\n'})
        text = run_analysis(tmp_path).render_text()
        assert "ml/bad.py:1: [fstring-placeholder]" in text
        assert "1 finding(s)" in text

    def test_json_dict_is_serialisable_and_stable(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "ml/bad.py": 'msg = f"oops"\n',
                "core/ok.py": "from repro.ml import thing\n",
            },
        )
        payload = json.loads(json.dumps(run_analysis(tmp_path).to_dict()))
        assert payload["clean"] is False
        assert payload["modules"] == 2
        assert payload["findings"][0]["rule"] == "fstring-placeholder"
        assert ["core", "ml"] in payload["package_edges"]
        assert set(payload) == {
            "root",
            "modules",
            "analyzed_modules",
            "reused_modules",
            "rules",
            "clean",
            "strict_baseline",
            "findings",
            "suppressed",
            "stale_baseline_entries",
            "package_edges",
            "baseline",
        }
        assert payload["findings"][0]["suppressed"] is False

    def test_rule_subset_recorded_in_report(self, tmp_path):
        write_tree(tmp_path, {"ml/ok.py": "x = 1\n"})
        report = run_analysis(tmp_path, rules=["mutable-default"])
        assert report.rule_ids == ["mutable-default"]

    def test_missing_root_raises(self, tmp_path):
        import pytest

        with pytest.raises(FileNotFoundError):
            run_analysis(tmp_path / "nope")
