"""Incremental cache: replay, dirty-closure invalidation, identity checks."""

import json

from repro.analysis import run_analysis
from repro.analysis.cache import AnalysisCache


def write_tree(root, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


TREE = {
    "ml/model.py": "def fit(X):\n    return X\n",
    "ml/helpers.py": "from repro.ml.model import fit\ndef train(X):\n    return fit(X)\n",
    "gateway/svc.py": "def handle(req):\n    return req\n",
}


class TestReplay:
    def test_cold_run_populates_cache_file(self, tmp_path):
        write_tree(tmp_path / "src", TREE)
        cache_path = tmp_path / "cache.json"
        report = run_analysis(tmp_path / "src", cache_path=cache_path)
        assert report.analyzed == 3 and report.reused == 0
        payload = json.loads(cache_path.read_text())
        assert set(payload["modules"]) == set(TREE)

    def test_warm_changed_run_replays_everything(self, tmp_path):
        write_tree(tmp_path / "src", TREE)
        cache_path = tmp_path / "cache.json"
        run_analysis(tmp_path / "src", cache_path=cache_path)
        report = run_analysis(
            tmp_path / "src", cache_path=cache_path, changed=True
        )
        assert report.analyzed == 0 and report.reused == 3
        assert report.modules == 3

    def test_replayed_findings_match_cold_findings(self, tmp_path):
        files = dict(TREE)
        files["ml/bad.py"] = 'x = f"oops"\ndef f(y=[]): pass\n'
        write_tree(tmp_path / "src", files)
        cache_path = tmp_path / "cache.json"
        cold = run_analysis(tmp_path / "src", cache_path=cache_path)
        warm = run_analysis(
            tmp_path / "src", cache_path=cache_path, changed=True
        )
        assert warm.analyzed == 0
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]


class TestInvalidation:
    def test_edit_dirties_module_and_reverse_importers(self, tmp_path):
        root = write_tree(tmp_path / "src", TREE)
        cache_path = tmp_path / "cache.json"
        run_analysis(root, cache_path=cache_path)
        (root / "ml/model.py").write_text(
            "def fit(X):\n    return X  # edited\n", encoding="utf-8"
        )
        report = run_analysis(root, cache_path=cache_path, changed=True)
        # model.py changed; helpers.py imports it; gateway/svc.py is clean
        assert report.analyzed == 2 and report.reused == 1

    def test_new_module_is_analyzed(self, tmp_path):
        root = write_tree(tmp_path / "src", TREE)
        cache_path = tmp_path / "cache.json"
        run_analysis(root, cache_path=cache_path)
        (root / "ml/extra.py").write_text("x = 1\n", encoding="utf-8")
        report = run_analysis(root, cache_path=cache_path, changed=True)
        assert report.analyzed == 1
        assert report.modules == 4

    def test_deleted_module_is_pruned(self, tmp_path):
        root = write_tree(tmp_path / "src", TREE)
        cache_path = tmp_path / "cache.json"
        run_analysis(root, cache_path=cache_path)
        (root / "gateway/svc.py").unlink()
        report = run_analysis(root, cache_path=cache_path, changed=True)
        assert report.modules == 2
        payload = json.loads(cache_path.read_text())
        assert "gateway/svc.py" not in payload["modules"]

    def test_rule_catalogue_change_invalidates_wholesale(self, tmp_path):
        root = write_tree(tmp_path / "src", TREE)
        cache_path = tmp_path / "cache.json"
        run_analysis(root, cache_path=cache_path)
        loaded = AnalysisCache.load(cache_path, ["only-this-rule"])
        assert loaded.records == {} and not loaded.loaded_from_disk

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        root = write_tree(tmp_path / "src", TREE)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{ not json", encoding="utf-8")
        report = run_analysis(root, cache_path=cache_path, changed=True)
        assert report.analyzed == 3  # fell back to analyzing everything


class TestGlobalPhaseStaysExact:
    def test_cross_module_taint_found_on_warm_run(self, tmp_path):
        files = {
            "telemetry/clock.py": "import time\ndef wall():\n    return time.time()\n",
            "ml/model.py": "from repro.telemetry.clock import wall\ndef fit():\n    return wall()\n",
        }
        root = write_tree(tmp_path / "src", files)
        cache_path = tmp_path / "cache.json"
        cold = run_analysis(root, cache_path=cache_path)
        warm = run_analysis(root, cache_path=cache_path, changed=True)
        for report in (cold, warm):
            assert any(f.rule == "wallclock-taint" for f in report.findings)
        assert warm.analyzed == 0  # taint came from cached summaries
