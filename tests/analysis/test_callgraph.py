"""Call-graph construction, resolution cases, and taint propagation."""

import ast

from repro.analysis.callgraph import (
    build_call_graph,
    external_name,
    is_external,
    node_id,
)
from repro.analysis.symbols import SymbolTable, summarize_module


def table_for(files):
    return SymbolTable(
        [
            summarize_module(relpath, ast.parse(source), source)
            for relpath, source in files.items()
        ]
    )


class TestResolution:
    def test_local_function_call(self):
        graph = build_call_graph(
            table_for({"ml/m.py": "def helper():\n    pass\ndef f():\n    helper()\n"})
        )
        assert "ml.m::helper" in graph.callees("ml.m::f")

    def test_self_method_call(self):
        graph = build_call_graph(
            table_for(
                {
                    "ml/m.py": "class C:\n"
                    "    def a(self):\n"
                    "        self.b()\n"
                    "    def b(self):\n"
                    "        pass\n"
                }
            )
        )
        assert "ml.m::C.b" in graph.callees("ml.m::C.a")

    def test_self_attr_method_via_constructor_inference(self):
        graph = build_call_graph(
            table_for(
                {
                    "tracing/t.py": "class Tracer:\n"
                    "    def start_span(self):\n"
                    "        pass\n",
                    "gateway/g.py": "from repro.tracing.t import Tracer\n"
                    "class Gateway:\n"
                    "    def __init__(self):\n"
                    "        self.tracer = Tracer()\n"
                    "    def handle(self):\n"
                    "        self.tracer.start_span()\n",
                }
            )
        )
        assert "tracing.t::Tracer.start_span" in graph.callees(
            "gateway.g::Gateway.handle"
        )

    def test_cross_module_import_alias(self):
        graph = build_call_graph(
            table_for(
                {
                    "ml/m.py": "def fit():\n    pass\n",
                    "core/c.py": "from repro.ml.m import fit\n"
                    "def run():\n    fit()\n",
                }
            )
        )
        assert "ml.m::fit" in graph.callees("core.c::run")

    def test_external_call_becomes_ext_node(self):
        graph = build_call_graph(
            table_for({"ml/m.py": "import time\ndef f():\n    time.time()\n"})
        )
        callees = graph.callees("ml.m::f")
        assert "ext::time.time" in callees
        assert is_external("ext::time.time")
        assert external_name("ext::time.time") == "time.time"

    def test_unresolvable_receiver_gets_no_edge(self):
        graph = build_call_graph(
            table_for({"ml/m.py": "def f(x):\n    x.mystery()\n"})
        )
        assert graph.callees("ml.m::f") == {}


class TestTaint:
    def test_chain_reconstructed_to_sink(self):
        graph = build_call_graph(
            table_for(
                {
                    "telemetry/h.py": "import time\n"
                    "def wall():\n    return time.time()\n",
                    "ml/m.py": "from repro.telemetry.h import wall\n"
                    "def fit():\n    return wall()\n",
                }
            )
        )
        tainted = graph.taint_from_sinks(
            lambda node, nargs: node == "ext::time.time"
        )
        assert "ml.m::fit" in tainted
        chain = graph.chain("ml.m::fit", tainted)
        assert [step for step, _ in chain] == [
            "ml.m::fit",
            "telemetry.h::wall",
            "ext::time.time",
        ]

    def test_sink_judged_per_edge_by_nargs(self):
        """Random(0) is seeded and fine; Random() in another caller is not."""
        graph = build_call_graph(
            table_for(
                {
                    "ml/ok.py": "import random\n"
                    "def seeded():\n    return random.Random(0)\n",
                    "ml/bad.py": "import random\n"
                    "def seedless():\n    return random.Random()\n",
                }
            )
        )
        tainted = graph.taint_from_sinks(
            lambda node, nargs: node == "ext::random.Random" and nargs == 0
        )
        assert "ml.bad::seedless" in tainted
        assert "ml.ok::seeded" not in tainted


class TestDotExport:
    def test_dot_renders_edges_and_boxes_externals(self):
        graph = build_call_graph(
            table_for(
                {
                    "ml/m.py": "import time\n"
                    "def helper():\n    time.time()\n"
                    "def f():\n    helper()\n"
                }
            )
        )
        dot = graph.to_dot()
        assert dot.startswith("digraph callgraph {")
        assert '"ml.m.f" -> "ml.m.helper";' in dot
        assert '"time.time" [shape=box, style=dashed];' in dot

    def test_package_filter_restricts_callers(self):
        table = table_for(
            {
                "ml/m.py": "def fit():\n    pass\n",
                "core/c.py": "from repro.ml.m import fit\n"
                "def run():\n    fit()\n",
            }
        )
        graph = build_call_graph(table, packages=["ml"])
        assert graph.callees("core.c::run") == {}
        assert node_id("core.c", "run") in graph.locations


class TestLoopEdges:
    KERNEL = "def predict(X):\n    return X\n"

    def test_call_inside_for_loop_is_a_loop_edge(self):
        graph = build_call_graph(
            table_for(
                {
                    "ml/m.py": self.KERNEL,
                    "gateway/g.py": "from repro.ml.m import predict\n"
                    "def pump(rows):\n"
                    "    for row in rows:\n"
                    "        predict(row)\n",
                }
            )
        )
        assert graph.loop_edges == {("gateway.g::pump", "ml.m::predict"): 4}

    def test_call_inside_while_loop_is_a_loop_edge(self):
        graph = build_call_graph(
            table_for(
                {
                    "ml/m.py": self.KERNEL,
                    "gateway/g.py": "from repro.ml.m import predict\n"
                    "def pump(queue):\n"
                    "    while queue:\n"
                    "        predict(queue.pop())\n",
                }
            )
        )
        assert ("gateway.g::pump", "ml.m::predict") in graph.loop_edges

    def test_straight_line_call_is_not_a_loop_edge(self):
        graph = build_call_graph(
            table_for(
                {
                    "ml/m.py": self.KERNEL,
                    "gateway/g.py": "from repro.ml.m import predict\n"
                    "def once(row):\n"
                    "    return predict(row)\n",
                }
            )
        )
        assert graph.loop_edges == {}
        assert "ml.m::predict" in graph.callees("gateway.g::once")
