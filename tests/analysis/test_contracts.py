"""Import-graph analyzer: layering contract + cycle detection.

Synthetic trees are written to ``tmp_path`` so the tests prove the
``networkx`` pass catches violations *before* they exist in the real
tree — including the acceptance-criterion case of ``ml`` importing
``gateway``.
"""

from pathlib import Path

import pytest

from repro.analysis import ALLOWED_IMPORTS, ImportGraphAnalyzer, run_analysis
from repro.analysis.contracts import _module_name


def write_tree(root: Path, files: dict) -> Path:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


class TestModuleNaming:
    def test_plain_module(self):
        assert _module_name("ml/model.py") == "ml.model"

    def test_package_init(self):
        assert _module_name("ml/__init__.py") == "ml"

    def test_root_module(self):
        assert _module_name("cli.py") == "cli"


class TestLayeringContract:
    def test_ml_may_not_import_gateway(self, tmp_path):
        """The acceptance-criterion case: a synthetic ml -> gateway import."""
        write_tree(
            tmp_path,
            {
                "ml/__init__.py": "",
                "ml/bad.py": "from repro.gateway import ApiGateway\n",
                "gateway/__init__.py": "",
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        findings = analyzer.contract_violations()
        assert len(findings) == 1
        assert findings[0].rule == "layer-contract"
        assert findings[0].path == "ml/bad.py"
        assert "'ml' may not import 'gateway'" in findings[0].message

    def test_telemetry_may_not_import_core(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "telemetry/events.py": (
                    "def f():\n"
                    "    from repro.core.sensors import SensorReading\n"
                ),
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        findings = analyzer.contract_violations()
        assert len(findings) == 1
        assert "'telemetry' may not import 'core'" in findings[0].message
        assert findings[0].line == 2  # lazy imports are still violations

    def test_allowed_edges_pass(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/monitor.py": "from repro.telemetry.bus import TelemetryBus\n",
                "gateway/services.py": "from repro.ml import DNNClassifier\n",
                "attacks/sponge.py": "from repro.gateway.gateway import ApiGateway\n",
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        assert analyzer.contract_violations() == []

    def test_root_modules_are_unrestricted(self, tmp_path):
        write_tree(
            tmp_path,
            {"cli.py": "from repro.gateway import ApiGateway\n"},
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        assert analyzer.contract_violations() == []

    def test_custom_contract_is_respected(self, tmp_path):
        write_tree(
            tmp_path,
            {"ml/bad.py": "from repro.gateway import ApiGateway\n"},
        )
        permissive = dict(ALLOWED_IMPORTS)
        permissive["ml"] = frozenset({"gateway"})
        analyzer = ImportGraphAnalyzer(allowed=permissive)
        analyzer.add_tree(tmp_path)
        assert analyzer.contract_violations() == []


class TestImportCycles:
    def test_synthetic_cycle_detected(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "ml/a.py": "from repro.ml.b import thing\n",
                "ml/b.py": "from repro.ml.c import thing\n",
                "ml/c.py": "from repro.ml.a import thing\n",
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        findings = analyzer.import_cycles()
        assert len(findings) == 1
        assert findings[0].rule == "import-cycle"
        assert "ml.a -> ml.b -> ml.c -> ml.a" in findings[0].message

    def test_two_module_cycle_detected(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": "from repro.core.y import f\n",
                "core/y.py": "from repro.core.x import g\n",
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        assert len(analyzer.import_cycles()) == 1

    def test_init_reexport_is_not_a_self_cycle(self, tmp_path):
        """``from repro.pkg import submodule`` inside pkg/__init__ resolves
        to the submodule, not to the package itself."""
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "from repro.pkg import helpers\n",
                "pkg/helpers.py": "x = 1\n",
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        assert analyzer.import_cycles() == []

    def test_acyclic_chain_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "ml/a.py": "from repro.ml.b import thing\n",
                "ml/b.py": "from repro.ml.c import thing\n",
                "ml/c.py": "x = 1\n",
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        assert analyzer.import_cycles() == []

    def test_relative_imports_resolve(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "ml/a.py": "from .b import thing\n",
                "ml/b.py": "from .a import other\n",
            },
        )
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(tmp_path)
        assert len(analyzer.import_cycles()) == 1


class TestRealTree:
    """The actual src/repro tree must satisfy its own declared contract."""

    def test_no_contract_violations_or_cycles(self):
        report = run_analysis(contracts=True)
        offenders = [
            f
            for f in report.findings + report.suppressed
            if f.rule in ("layer-contract", "import-cycle")
        ]
        assert offenders == [], [f.render() for f in offenders]

    def test_every_observed_edge_is_declared(self):
        """ALLOWED_IMPORTS must stay the superset of reality — if this
        fails, either fix the import or amend the contract + DESIGN.md."""
        import repro

        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(Path(repro.__file__).resolve().parent)
        for src, dst in analyzer.package_edges():
            if src in ALLOWED_IMPORTS:
                assert dst in ALLOWED_IMPORTS[src], (src, dst)

    def test_pure_substrates_import_nothing(self):
        for package in ("ml", "datasets", "telemetry", "analysis"):
            assert ALLOWED_IMPORTS[package] == frozenset()
