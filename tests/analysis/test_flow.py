"""CFG construction and dataflow: the substrate under the flow rules."""

import ast

from repro.analysis.flow import (
    build_cfg,
    def_use_chains,
    reaching_definitions,
)


def cfg_for(source):
    fn = ast.parse(source).body[0]
    return fn, build_cfg(fn)


class TestCfgShape:
    def test_straight_line_reaches_exit(self):
        _, cfg = cfg_for("def f(x):\n    y = x\n    return y\n")
        assert cfg.exit_id in cfg.reachable_from_entry()

    def test_if_makes_two_paths(self):
        _, cfg = cfg_for(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        entry_succs = cfg.blocks[cfg.entry].succs
        assert len(entry_succs) == 2

    def test_statement_after_return_is_unreachable(self):
        _, cfg = cfg_for("def f(x):\n    return x\n    y = 1\n")
        reachable = cfg.reachable_from_entry()
        dead = [
            b
            for b in cfg.iter_blocks()
            if b.stmts and b.block_id not in reachable
        ]
        assert len(dead) == 1

    def test_while_true_without_break_never_exits(self):
        _, cfg = cfg_for("def f():\n    while True:\n        work()\n")
        assert cfg.exit_id not in cfg.reachable_from_entry()

    def test_while_true_with_break_exits(self):
        _, cfg = cfg_for(
            "def f(q):\n"
            "    while True:\n"
            "        if q.done():\n"
            "            break\n"
            "    return 1\n"
        )
        assert cfg.exit_id in cfg.reachable_from_entry()


class TestFinallyRouting:
    """Abrupt exits must pass through enclosing finally blocks."""

    def find_blocks_containing(self, cfg, needle):
        out = set()
        for block in cfg.iter_blocks():
            for stmt in block.stmts:
                if needle in ast.dump(stmt):
                    out.add(block.block_id)
        return out

    def test_return_routes_through_finally(self):
        _, cfg = cfg_for(
            "def f():\n"
            "    try:\n"
            "        return work()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        cleanup_blocks = self.find_blocks_containing(cfg, "cleanup")
        assert cleanup_blocks
        # no path entry -> exit may dodge every cleanup copy
        assert not cfg.path_avoiding(
            cfg.entry, cfg.exit_id, frozenset(cleanup_blocks)
        )

    def test_raise_routes_through_finally(self):
        _, cfg = cfg_for(
            "def f():\n"
            "    try:\n"
            "        raise ValueError()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        cleanup_blocks = self.find_blocks_containing(cfg, "cleanup")
        assert not cfg.path_avoiding(
            cfg.entry, cfg.exit_id, frozenset(cleanup_blocks)
        )

    def test_break_runs_finally_nested_in_loop(self):
        _, cfg = cfg_for(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            if x:\n"
            "                break\n"
            "        finally:\n"
            "            cleanup()\n"
            "    return 1\n"
        )
        cleanup_blocks = self.find_blocks_containing(cfg, "cleanup")
        # the zero-iteration path legitimately skips the finally, but
        # from the break itself every path must run cleanup first
        break_block = next(
            b.block_id
            for b in cfg.iter_blocks()
            if any(isinstance(s, ast.Break) for s in b.stmts)
        )
        assert not cfg.path_avoiding(
            break_block, cfg.exit_id, frozenset(cleanup_blocks)
        )

    def test_plain_fallthrough_still_continues_after_try(self):
        _, cfg = cfg_for(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        cleanup()\n"
            "    after()\n"
        )
        after_blocks = self.find_blocks_containing(cfg, "after")
        assert after_blocks
        reachable = cfg.reachable_from_entry()
        assert all(b in reachable for b in after_blocks)


class TestDataflow:
    def test_reaching_definitions_merge_at_join(self):
        fn, cfg = cfg_for(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        in_sets = reaching_definitions(cfg, params=["x"])
        # the block holding `return a` sees both definitions of a
        return_block = next(
            b.block_id
            for b in cfg.iter_blocks()
            if any(isinstance(s, ast.Return) for s in b.stmts)
        )
        a_defs = {d for d in in_sets[return_block] if d.name == "a"}
        assert len(a_defs) == 2

    def test_def_use_chains_link_definition_to_use(self):
        fn, cfg = cfg_for("def f(x):\n    y = x + 1\n    return y\n")
        chains = def_use_chains(cfg, params=["x"])
        y_defs = [d for d in chains if d.name == "y"]
        assert len(y_defs) == 1
        uses = chains[y_defs[0]]
        assert any(use.id == "y" for _block, use in uses)

    def test_redefinition_kills_earlier_definition(self):
        fn, cfg = cfg_for(
            "def f():\n    a = 1\n    a = 2\n    return a\n"
        )
        chains = def_use_chains(cfg)
        # only the second definition reaches the use; the first is a
        # dead store and never appears in the chain map
        a_defs = [d for d in chains if d.name == "a"]
        assert [d.lineno for d in a_defs] == [3]
