"""Baseline suppressions: matching, reasons, staleness."""

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding


def finding(rule="mutable-default", path="ml/model.py", line=10, message="m"):
    return Finding(path=path, line=line, rule=rule, message=message)


class TestMatching:
    def test_rule_and_path_must_both_match(self):
        entry = BaselineEntry(rule="r", path="a.py", reason="why")
        assert entry.matches(finding(rule="r", path="a.py"))
        assert not entry.matches(finding(rule="r", path="b.py"))
        assert not entry.matches(finding(rule="other", path="a.py"))

    def test_contains_narrows_the_match(self):
        entry = BaselineEntry(
            rule="r", path="a.py", reason="why", contains="in f()"
        )
        assert entry.matches(finding(rule="r", path="a.py", message="bad in f()"))
        assert not entry.matches(finding(rule="r", path="a.py", message="in g()"))

    def test_line_numbers_do_not_affect_matching(self):
        entry = BaselineEntry(rule="r", path="a.py", reason="why")
        assert entry.matches(finding(rule="r", path="a.py", line=1))
        assert entry.matches(finding(rule="r", path="a.py", line=999))


class TestApply:
    def test_splits_active_and_suppressed(self):
        baseline = Baseline([BaselineEntry("r", "a.py", "accepted")])
        active, suppressed, stale = baseline.apply(
            [finding(rule="r", path="a.py"), finding(rule="r", path="b.py")]
        )
        assert [f.path for f in active] == ["b.py"]
        assert [f.path for f in suppressed] == ["a.py"]
        assert stale == []

    def test_unused_entries_reported_stale(self):
        baseline = Baseline(
            [
                BaselineEntry("r", "a.py", "used"),
                BaselineEntry("r", "gone.py", "module was deleted"),
            ]
        )
        __, __, stale = baseline.apply([finding(rule="r", path="a.py")])
        assert [e.path for e in stale] == ["gone.py"]


class TestRoundTrip:
    def test_save_load_round_trips(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        original = Baseline(
            [BaselineEntry("r", "a.py", "why", contains="detail")]
        )
        original.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == original.entries

    def test_reason_is_mandatory(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {"version": 1, "suppressions": [{"rule": "r", "path": "a.py"}]}
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="reason"):
            Baseline.load(path)

    def test_blank_reason_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {"rule": "r", "path": "a.py", "reason": "  "}
                    ],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="empty reason"):
            Baseline.load(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


def test_checked_in_baseline_is_loadable():
    """The repo's own lint-baseline.json must always parse."""
    from repro.analysis import find_baseline, default_root

    path = find_baseline(default_root())
    assert path is not None, "lint-baseline.json missing from the repo"
    Baseline.load(path)  # raises on malformed entries
