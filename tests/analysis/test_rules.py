"""Positive + negative fixture snippets for every rule in the catalogue.

Each rule gets at least one snippet that must fire and one that must stay
silent — a rule that cannot catch its planted offender is vacuous, and a
rule that fires on the sanctioned idiom would make the tier-1 gate
unadoptable.
"""

import textwrap

import pytest

from repro.analysis import AnalysisEngine


def run_rule(rule_id, source, relpath="mod.py"):
    engine = AnalysisEngine(rules=[rule_id])
    return engine.analyze_source(textwrap.dedent(source), relpath)


class TestFstringPlaceholder:
    def test_fires_on_placeholderless(self):
        assert len(run_rule("fstring-placeholder", 'x = f"oops"')) == 1

    def test_silent_on_interpolation(self):
        assert run_rule("fstring-placeholder", 'x = f"{y}"') == []

    def test_silent_on_format_spec(self):
        assert run_rule("fstring-placeholder", 'x = f"{v:8.3f} {n:<24}"') == []

    def test_silent_on_plain_string(self):
        assert run_rule("fstring-placeholder", 'x = "just text"') == []


class TestMutableDefault:
    @pytest.mark.parametrize(
        "src",
        [
            "def f(x=[]): pass",
            "def f(x={}): pass",
            "def f(*, x=set()): pass",
            "def f(x=list()): pass",
            "def f(x=dict()): pass",
            "async def f(x=[]): pass",
            "g = lambda x=[]: x",
        ],
    )
    def test_fires(self, src):
        assert len(run_rule("mutable-default", src)) == 1

    def test_silent_on_none_and_immutables(self):
        assert run_rule("mutable-default", "def f(x=None, y=(), z=1): pass") == []


class TestSwallowedExcept:
    def test_fires_on_bare_except(self):
        src = """
        try:
            work()
        except:
            raise
        """
        findings = run_rule("swallowed-except", src)
        assert len(findings) == 1 and "bare" in findings[0].message

    def test_fires_on_pass_only_handler(self):
        src = """
        try:
            work()
        except ValueError:
            pass
        """
        assert len(run_rule("swallowed-except", src)) == 1

    def test_fires_on_ellipsis_handler(self):
        src = """
        try:
            work()
        except OSError:
            ...
        """
        assert len(run_rule("swallowed-except", src)) == 1

    def test_silent_when_exception_recorded(self):
        src = """
        try:
            work()
        except ValueError as exc:
            log(exc)
        """
        assert run_rule("swallowed-except", src) == []

    def test_silent_on_contextlib_suppress(self):
        src = """
        import contextlib
        with contextlib.suppress(TypeError):
            work()
        """
        assert run_rule("swallowed-except", src) == []


class TestUnseededRng:
    def test_fires_on_global_random_module(self):
        src = "import random\nx = random.random()"
        assert len(run_rule("unseeded-rng", src)) == 1

    def test_fires_on_global_seed_call(self):
        # seeding the *global* generator is still shared hidden state
        src = "import random\nrandom.seed(0)"
        assert len(run_rule("unseeded-rng", src)) == 1

    def test_fires_on_from_import(self):
        src = "from random import randint\nx = randint(0, 9)"
        assert len(run_rule("unseeded-rng", src)) == 1

    def test_fires_on_legacy_np_random(self):
        src = "import numpy as np\nx = np.random.rand(3)"
        assert len(run_rule("unseeded-rng", src)) == 1

    def test_silent_on_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.normal()"
        assert run_rule("unseeded-rng", src) == []

    def test_silent_on_random_instance(self):
        src = "import random\nrng = random.Random(0)\nx = rng.random()"
        assert run_rule("unseeded-rng", src) == []

    def test_silent_without_random_import(self):
        # a local object that happens to be called `random` is not stdlib
        src = "random = make_rng()\nx = random.random()"
        assert run_rule("unseeded-rng", src) == []


class TestWallclockInCompute:
    def test_fires_in_pure_package(self):
        src = "import time\ndef f():\n    return time.time()"
        findings = run_rule("wallclock-in-compute", src, "ml/model.py")
        assert len(findings) == 1 and "inject a clock" in findings[0].message

    def test_fires_on_from_import_time(self):
        src = "from time import time\ndef f():\n    return time()"
        assert len(run_rule("wallclock-in-compute", src, "xai/shap.py")) == 1

    def test_fires_on_datetime_now(self):
        src = "from datetime import datetime\nstamp = datetime.utcnow()"
        assert len(run_rule("wallclock-in-compute", src, "trust/score.py")) == 1

    def test_silent_outside_pure_packages(self):
        # telemetry owns time handling; the contract only bans it below
        src = "import time\ndef f():\n    return time.time()"
        assert run_rule("wallclock-in-compute", src, "telemetry/bus.py") == []

    def test_silent_on_perf_counter(self):
        # duration measurement is not wall-clock dependence
        src = "import time\ndef f():\n    return time.perf_counter()"
        assert run_rule("wallclock-in-compute", src, "ml/model.py") == []


class TestAllDrift:
    def test_fires_on_phantom_export(self):
        src = "__all__ = ['missing']\ndef present(): pass"
        findings = run_rule("all-drift", src)
        assert len(findings) == 1 and "never binds" in findings[0].message

    def test_fires_on_public_name_missing_from_init_all(self):
        src = "from repro.ml.model import Classifier\n__all__ = []"
        findings = run_rule("all-drift", src, "ml/__init__.py")
        assert len(findings) == 1 and "missing from __all__" in findings[0].message

    def test_fires_on_duplicate_entry(self):
        src = "__all__ = ['a', 'a']\ndef a(): pass"
        findings = run_rule("all-drift", src)
        assert len(findings) == 1 and "twice" in findings[0].message

    def test_silent_when_in_sync(self):
        src = "from repro.ml.model import Classifier\n__all__ = ['Classifier']"
        assert run_rule("all-drift", src, "ml/__init__.py") == []

    def test_private_names_not_required_in_all(self):
        src = "import numpy as _np\ndef _helper(): pass\n__all__ = []"
        assert run_rule("all-drift", src, "ml/__init__.py") == []

    def test_non_init_modules_may_underexport(self):
        # only package __init__ modules promise their bindings are API
        src = "__all__ = ['a']\ndef a(): pass\ndef b(): pass"
        assert run_rule("all-drift", src, "ml/model.py") == []

    def test_silent_without_all(self):
        assert run_rule("all-drift", "def f(): pass") == []

    def test_conditional_import_counts_as_binding(self):
        src = (
            "try:\n    import fast as impl\nexcept ImportError:\n"
            "    import slow as impl\n__all__ = ['impl']"
        )
        assert run_rule("all-drift", src) == []


class TestShadowedBuiltin:
    def test_fires_on_builtin_parameter_names(self):
        findings = run_rule("shadowed-builtin", "def f(input, type): pass")
        assert len(findings) == 2

    def test_fires_on_kwonly_and_vararg(self):
        findings = run_rule("shadowed-builtin", "def f(*list, **dict): pass")
        assert len(findings) == 2

    def test_silent_on_domain_names(self):
        src = "def f(X, y, n_epochs, seed=0): pass"
        assert run_rule("shadowed-builtin", src) == []

    def test_silent_on_trailing_underscore(self):
        assert run_rule("shadowed-builtin", "def f(input_): pass") == []


LOCKED_CLASS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def inc(self):
        with self._lock:
            self.n += 1

    def {reader}
"""


class TestLockDiscipline:
    def test_fires_on_unguarded_read(self):
        src = LOCKED_CLASS.format(reader="read(self):\n        return self.n")
        findings = run_rule("lock-discipline", src)
        assert len(findings) == 1
        assert "without the lock" in findings[0].message

    def test_silent_when_consistently_guarded(self):
        src = LOCKED_CLASS.format(
            reader="read(self):\n        with self._lock:\n            return self.n"
        )
        assert run_rule("lock-discipline", src) == []

    def test_init_is_exempt(self):
        # __init__'s own writes predate any concurrent alias
        src = LOCKED_CLASS.format(
            reader="read(self):\n        with self._lock:\n            return self.n"
        )
        assert run_rule("lock-discipline", src) == []

    def test_unguarded_attrs_are_free(self):
        src = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.free = 0

            def touch(self):
                self.free += 1
        """
        assert run_rule("lock-discipline", src) == []

    def test_classes_without_locks_ignored(self):
        src = """
        class C:
            def __init__(self):
                self.n = 0

            def inc(self):
                self.n += 1
        """
        assert run_rule("lock-discipline", src) == []


class TestTracingClockInjection:
    def test_fires_on_import_time_in_tracing(self):
        found = run_rule(
            "tracing-clock-injection", "import time", "tracing/span.py"
        )
        assert len(found) == 1
        assert "injected clock" in found[0].message

    def test_fires_on_datetime_and_from_imports(self):
        for src in (
            "import datetime",
            "from time import perf_counter",
            "from datetime import datetime",
            "import time as t",
        ):
            assert run_rule(
                "tracing-clock-injection", src, "tracing/mod.py"
            ), f"should fire on {src!r}"

    def test_silent_outside_the_tracing_package(self):
        # core/registry.py legitimately uses perf_counter to time sensors.
        assert run_rule(
            "tracing-clock-injection", "import time", "core/registry.py"
        ) == []
        assert run_rule(
            "tracing-clock-injection", "import time", "ml/pipeline.py"
        ) == []

    def test_silent_on_repro_internal_imports(self):
        src = """
        from repro.tracing.span import Span
        from repro.telemetry.events import TelemetryEvent
        import numpy as np
        """
        assert run_rule("tracing-clock-injection", src, "tracing/x.py") == []


class TestPredictInLoop:
    def test_fires_on_predict_in_for_body(self):
        src = """
        for row in X:
            out.append(model.predict(row))
        """
        found = run_rule("predict-in-loop", src, "xai/mod.py")
        assert len(found) == 1
        assert "batched call" in found[0].message

    def test_fires_on_predict_fn_in_comprehension(self):
        src = "vals = [predict_fn(m) for m in masks]"
        assert len(run_rule("predict-in-loop", src, "xai/mod.py")) == 1

    def test_fires_on_helper_passed_predict_fn_per_iteration(self):
        src = """
        for mask in masks:
            vals.append(marginal(predict_fn, mask))
        """
        assert len(run_rule("predict-in-loop", src, "xai/mod.py")) == 1

    def test_fires_on_while_condition(self):
        src = """
        while model.predict_proba(x)[0, 1] < 0.5:
            x = step(x)
        """
        assert len(run_rule("predict-in-loop", src, "xai/mod.py")) == 1

    def test_silent_on_batched_call_outside_loops(self):
        src = """
        stacked = build(masks, X, background)
        preds = predict_fn(stacked)
        for block in split(preds):
            out.append(block.mean(axis=0))
        """
        assert run_rule("predict-in-loop", src, "xai/mod.py") == []

    def test_silent_when_loop_iterates_over_one_batched_call(self):
        # the iterable is evaluated once — that IS the batched idiom
        src = "rows = [r for r in model.predict_proba(X)]"
        assert run_rule("predict-in-loop", src, "xai/mod.py") == []

    def test_silent_outside_the_xai_package(self):
        src = """
        for row in X:
            out.append(model.predict(row))
        """
        assert run_rule("predict-in-loop", src, "ml/mod.py") == []
        assert run_rule("predict-in-loop", src, "gateway/mod.py") == []


class TestHotpathAccumulator:
    ACCUMULATOR = """
    class Svc:
        def __init__(self):
            self.completed = []

        def finish(self, record):
            self.completed.append(record)
    """

    def test_fires_on_pop_zero(self):
        src = """
        def drain(waiting):
            return waiting.pop(0)
        """
        findings = run_rule("hotpath-accumulator", src, "gateway/mod.py")
        assert len(findings) == 1
        assert "popleft" in findings[0].message

    def test_silent_on_pop_without_index_or_nonzero(self):
        src = """
        def f(stack, mapping):
            a = stack.pop()
            b = stack.pop(-1)
            c = mapping.pop("key", None)
            return a, b, c
        """
        assert run_rule("hotpath-accumulator", src, "gateway/mod.py") == []

    def test_fires_on_per_event_append_accumulator(self):
        findings = run_rule(
            "hotpath-accumulator", self.ACCUMULATOR, "gateway/mod.py"
        )
        assert len(findings) == 1
        assert "completed" in findings[0].message

    def test_fires_on_annotated_empty_list_attribute(self):
        src = """
        class Gen:
            def __init__(self):
                self.responses: list = []

            def on_response(self, r):
                self.gen.responses.append(r)
        """
        assert len(run_rule("hotpath-accumulator", src, "gateway/mod.py")) == 1

    def test_silent_on_append_inside_init(self):
        src = """
        class Svc:
            def __init__(self, names):
                self.routes = []
                for name in names:
                    self.routes.append(name)
        """
        assert run_rule("hotpath-accumulator", src, "gateway/mod.py") == []

    def test_silent_on_deque_and_seeded_lists(self):
        src = """
        class Svc:
            def __init__(self, seed_names):
                self.waiting = deque()
                self.names = list(seed_names)

            def enqueue(self, row):
                self.waiting.append(row)
                self.names.append("x")
        """
        assert run_rule("hotpath-accumulator", src, "gateway/mod.py") == []

    def test_silent_on_local_list_append(self):
        src = """
        def build():
            events = []
            for i in range(3):
                events.append(i)
            return events
        """
        assert run_rule("hotpath-accumulator", src, "gateway/mod.py") == []

    def test_silent_outside_the_gateway_package(self):
        assert run_rule("hotpath-accumulator", self.ACCUMULATOR, "telemetry/mod.py") == []
        assert run_rule("hotpath-accumulator", self.ACCUMULATOR, "core/mod.py") == []
