"""Seeded regression fixtures for the flow-aware and whole-program rules.

Each rule gets at least one planted offender it must catch and one
near-miss it must leave alone — an engine that cannot catch its own
fixtures would make the tree-wide zero-findings gate vacuous.
"""

import ast

from repro.analysis import AnalysisEngine
from repro.analysis.rules_flow import (
    build_project_context,
    run_project_rules,
)
from repro.analysis.symbols import summarize_module


def module_findings(rule_id, source, relpath="mod.py"):
    return AnalysisEngine(rules=[rule_id]).analyze_source(source, relpath)


def project_findings(files, rule_ids=None):
    summaries = [
        summarize_module(relpath, ast.parse(source), source)
        for relpath, source in files.items()
    ]
    context = build_project_context(summaries)
    return run_project_rules(context, rule_ids), context


class TestSpanLeak:
    def test_catches_early_return_path(self):
        findings = module_findings(
            "span-leak",
            "def handler(tracer, req):\n"
            "    span = tracer.start_span('op')\n"
            "    if req.bad:\n"
            "        return None\n"
            "    span.end()\n",
        )
        assert [f.line for f in findings] == [2]

    def test_accepts_finally_end(self):
        findings = module_findings(
            "span-leak",
            "def handler(tracer, req):\n"
            "    span = tracer.start_span('op')\n"
            "    try:\n"
            "        return work(req)\n"
            "    finally:\n"
            "        span.end()\n",
        )
        assert findings == []

    def test_accepts_with_block(self):
        findings = module_findings(
            "span-leak",
            "def handler(tracer, req):\n"
            "    span = tracer.start_span('op')\n"
            "    with span:\n"
            "        return work(req)\n",
        )
        assert findings == []

    def test_accepts_chained_finisher(self):
        findings = module_findings(
            "span-leak",
            "def handler(tracer, req):\n"
            "    span = tracer.start_span('op')\n"
            "    try:\n"
            "        out = work(req)\n"
            "        span.end()\n"
            "        return out\n"
            "    except Exception as e:\n"
            "        span.record_error(e).end()\n"
            "        raise\n",
        )
        assert findings == []

    def test_escaped_span_transfers_ownership(self):
        findings = module_findings(
            "span-leak",
            "def handler(tracer, req):\n"
            "    span = tracer.start_span('op')\n"
            "    req.attach(span)\n"
            "    return req\n",
        )
        assert findings == []

    def test_returned_span_transfers_ownership(self):
        findings = module_findings(
            "span-leak",
            "def start(tracer):\n"
            "    span = tracer.start_span('op')\n"
            "    return span\n",
        )
        assert findings == []


class TestUnreachableCode:
    def test_catches_code_after_typed_raise(self):
        findings = module_findings(
            "unreachable-code",
            "def shed(load):\n"
            "    if load > 9:\n"
            "        raise ServiceUnavailable(retry_after=2)\n"
            "        log('never')\n"
            "    return load\n",
        )
        assert [f.line for f in findings] == [4]

    def test_catches_code_after_return(self):
        findings = module_findings(
            "unreachable-code",
            "def f(x):\n    return x\n    x += 1\n",
        )
        assert [f.line for f in findings] == [3]

    def test_accepts_conditional_raise(self):
        findings = module_findings(
            "unreachable-code",
            "def f(x):\n"
            "    if x:\n"
            "        raise ValueError()\n"
            "    return x\n",
        )
        assert findings == []

    def test_accepts_loop_else_and_breaks(self):
        findings = module_findings(
            "unreachable-code",
            "def f(q):\n"
            "    while True:\n"
            "        item = q.get()\n"
            "        if item is None:\n"
            "            break\n"
            "    return item\n",
        )
        assert findings == []


class TestWallclockTaint:
    FILES = {
        "telemetry/clockutil.py": (
            "import time\n"
            "def wall_now():\n"
            "    return time.time()\n"
        ),
        "ml/model.py": (
            "from repro.telemetry.clockutil import wall_now\n"
            "def fit(X):\n"
            "    t0 = wall_now()\n"
            "    return t0\n"
        ),
        "ml/train.py": (
            "from repro.ml.model import fit\n"
            "def train(X):\n"
            "    return fit(X)\n"
        ),
    }

    def test_flags_frontier_function_only(self):
        findings, _ = project_findings(self.FILES, ["wallclock-taint"])
        assert [(f.path, f.line) for f in findings] == [("ml/model.py", 3)]
        assert "time.time" in findings[0].message

    def test_explanation_renders_cross_module_chain(self):
        findings, context = project_findings(self.FILES, ["wallclock-taint"])
        f = findings[0]
        chain = context.explanations[(f.path, f.line, f.rule)]
        assert chain[0].startswith("ml.model.fit")
        assert any("telemetry.clockutil.wall_now" in line for line in chain)
        assert chain[-1] == "time.time  [sink]"

    def test_direct_sink_call_left_to_syntactic_rule(self):
        findings, _ = project_findings(
            {
                "ml/m.py": "import time\ndef f():\n    return time.time()\n"
            },
            ["wallclock-taint"],
        )
        assert findings == []  # wallclock-in-compute owns this report


class TestRngTaint:
    def test_flags_chain_through_out_of_scope_helper(self):
        findings, _ = project_findings(
            {
                "core/jitter.py": (
                    "import random\n"
                    "def jitter():\n"
                    "    return random.random()\n"
                ),
                "gateway/backoff.py": (
                    "from repro.core.jitter import jitter\n"
                    "def backoff(attempt):\n"
                    "    return attempt + jitter()\n"
                ),
            },
            ["rng-taint"],
        )
        assert [(f.path, f.rule) for f in findings] == [
            ("gateway/backoff.py", "rng-taint")
        ]

    def test_seeded_generator_is_not_a_sink(self):
        findings, _ = project_findings(
            {
                "core/jitter.py": (
                    "import random\n"
                    "def jitter():\n"
                    "    return random.Random(0).random()\n"
                ),
                "gateway/backoff.py": (
                    "from repro.core.jitter import jitter\n"
                    "def backoff(attempt):\n"
                    "    return attempt + jitter()\n"
                ),
            },
            ["rng-taint"],
        )
        assert findings == []


class TestOffLockMutation:
    NODE = (
        "import threading\n"
        "class Node:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.inflight = 0\n"
        "    def tick(self):\n"
        "        with self._lock:\n"
        "            self.inflight += 1\n"
    )

    def test_flags_unguarded_cross_module_write(self):
        findings, _ = project_findings(
            {
                "cluster/node.py": self.NODE,
                "cluster/helper.py": (
                    "from repro.cluster.node import Node\n"
                    "def reset(node: Node):\n"
                    "    node.inflight = 0\n"
                ),
            },
            ["off-lock-mutation"],
        )
        assert [(f.path, f.line) for f in findings] == [("cluster/helper.py", 3)]
        assert "node._lock" in findings[0].message

    def test_accepts_write_under_the_lock(self):
        findings, _ = project_findings(
            {
                "cluster/node.py": self.NODE,
                "cluster/helper.py": (
                    "from repro.cluster.node import Node\n"
                    "def reset(node: Node):\n"
                    "    with node._lock:\n"
                    "        node.inflight = 0\n"
                ),
            },
            ["off-lock-mutation"],
        )
        assert findings == []

    def test_unguarded_field_of_lockless_class_is_fine(self):
        findings, _ = project_findings(
            {
                "cluster/node.py": "class Node:\n    def __init__(self):\n        self.inflight = 0\n",
                "cluster/helper.py": (
                    "from repro.cluster.node import Node\n"
                    "def reset(node: Node):\n"
                    "    node.inflight = 0\n"
                ),
            },
            ["off-lock-mutation"],
        )
        assert findings == []


class TestUnbatchedKernelCall:
    KERNEL = "def predict(X):\n    return X\n"

    def test_flags_per_request_kernel_call_in_serving_loop(self):
        findings, context = project_findings(
            {
                "ml/model.py": self.KERNEL,
                "gateway/path.py": (
                    "from repro.ml.model import predict\n"
                    "def pump(rows):\n"
                    "    for row in rows:\n"
                    "        predict(row)\n"
                ),
            },
            ["unbatched-kernel-call"],
        )
        assert [(f.path, f.line, f.rule) for f in findings] == [
            ("gateway/path.py", 4, "unbatched-kernel-call")
        ]
        assert "micro-batcher" in findings[0].message
        assert (
            "gateway/path.py", 4, "unbatched-kernel-call"
        ) in context.explanations

    def test_flags_chain_through_helper(self):
        findings, _ = project_findings(
            {
                "ml/model.py": self.KERNEL,
                "serving/helper.py": (
                    "from repro.ml.model import predict\n"
                    "def score_one(row):\n"
                    "    return predict(row)\n"
                ),
                "serving/loop.py": (
                    "from repro.serving.helper import score_one\n"
                    "def pump(rows):\n"
                    "    for row in rows:\n"
                    "        score_one(row)\n"
                ),
            },
            ["unbatched-kernel-call"],
        )
        assert ("serving/loop.py", 4) in [(f.path, f.line) for f in findings]

    def test_batch_named_callee_is_the_sanctioned_shape(self):
        findings, _ = project_findings(
            {
                "ml/model.py": self.KERNEL,
                "serving/engine.py": (
                    "from repro.ml.model import predict\n"
                    "def run_batch(batch):\n"
                    "    return predict(batch)\n"
                ),
                "serving/loop.py": (
                    "from repro.serving.engine import run_batch\n"
                    "def drain(batches):\n"
                    "    for batch in batches:\n"
                    "        run_batch(batch)\n"
                ),
            },
            ["unbatched-kernel-call"],
        )
        assert findings == []

    def test_kernel_internal_loops_are_out_of_scope(self):
        findings, _ = project_findings(
            {
                "ml/model.py": (
                    "def predict(X):\n"
                    "    return X\n"
                    "def predict_all(rows):\n"
                    "    for row in rows:\n"
                    "        predict(row)\n"
                ),
            },
            ["unbatched-kernel-call"],
        )
        assert findings == []

    def test_straight_line_kernel_call_is_fine(self):
        findings, _ = project_findings(
            {
                "ml/model.py": self.KERNEL,
                "gateway/path.py": (
                    "from repro.ml.model import predict\n"
                    "def once(row):\n"
                    "    return predict(row)\n"
                ),
            },
            ["unbatched-kernel-call"],
        )
        assert findings == []


class TestCrossProcessPickle:
    def test_flags_serialised_array_on_queue(self):
        findings = module_findings(
            "cross-process-pickle",
            "def ship(task_queue, X):\n"
            "    task_queue.put(X.tobytes())\n",
            relpath="pool/dispatch.py",
        )
        assert [f.line for f in findings] == [2]
        assert "shared-memory arena" in findings[0].message

    def test_flags_arrayish_local_on_queue(self):
        findings = module_findings(
            "cross-process-pickle",
            "import numpy as np\n"
            "def ship(result_queue):\n"
            "    block = np.zeros((4, 4))\n"
            "    result_queue.put_nowait(block)\n",
            relpath="serving/hot.py",
        )
        assert [f.line for f in findings] == [4]

    def test_flags_annotated_payload_into_executor_submit(self):
        findings = module_findings(
            "cross-process-pickle",
            "import numpy as np\n"
            "def fan_out(executor, X: np.ndarray):\n"
            "    executor.submit(run, X)\n",
            relpath="gateway/fan.py",
        )
        assert [f.line for f in findings] == [3]

    def test_control_tuples_pass(self):
        findings = module_findings(
            "cross-process-pickle",
            "def ship(task_queue, slot, seq, kind):\n"
            "    task_queue.put((slot, seq, kind))\n",
            relpath="pool/dispatch.py",
        )
        assert findings == []

    def test_in_process_cache_put_is_not_a_queue(self):
        findings = module_findings(
            "cross-process-pickle",
            "import numpy as np\n"
            "def store(cache, digest, phi: np.ndarray, now):\n"
            "    cache.put(digest, phi, now)\n",
            relpath="serving/engine.py",
        )
        assert findings == []

    def test_own_submit_method_is_in_process(self):
        findings = module_findings(
            "cross-process-pickle",
            "import numpy as np\n"
            "class Pool:\n"
            "    def submit_predict(self, X: np.ndarray):\n"
            "        return self.submit(0, X)\n",
            relpath="pool/pool.py",
        )
        assert findings == []

    def test_out_of_scope_packages_ignored(self):
        findings = module_findings(
            "cross-process-pickle",
            "def ship(task_queue, X):\n"
            "    task_queue.put(X.tobytes())\n",
            relpath="ml/model.py",
        )
        assert findings == []

    def test_queue_constructor_binding_detected(self):
        findings = module_findings(
            "cross-process-pickle",
            "import multiprocessing\n"
            "import numpy as np\n"
            "def ship(X: np.ndarray):\n"
            "    channel = multiprocessing.Queue()\n"
            "    channel.put(X)\n",
            relpath="cluster/fan.py",
        )
        assert [f.line for f in findings] == [5]
