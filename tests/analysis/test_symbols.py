"""Symbol-table extraction and cross-module name resolution."""

import ast

from repro.analysis.symbols import (
    MODULE_BODY,
    ModuleSummary,
    SymbolTable,
    module_name,
    summarize_module,
)


def summarize(relpath, source):
    return summarize_module(relpath, ast.parse(source), source)


class TestModuleName:
    def test_plain_module(self):
        assert module_name("ml/model.py") == "ml.model"

    def test_package_init(self):
        assert module_name("ml/__init__.py") == "ml"

    def test_root_module(self):
        assert module_name("cli.py") == "cli"


class TestSummarizeModule:
    def test_functions_classes_and_methods_indexed(self):
        s = summarize(
            "ml/model.py",
            "def fit(X):\n"
            "    return X\n"
            "class Model:\n"
            "    def predict(self, X):\n"
            "        return X\n",
        )
        assert set(s.functions) == {"fit", "Model.predict"}
        assert s.classes["Model"].methods == ("predict",)
        assert s.package == "ml" and s.module == "ml.model"

    def test_import_aliases_resolved(self):
        s = summarize(
            "gateway/svc.py",
            "import numpy as np\n"
            "from repro.ml import Model\n"
            "from . import ratelimit\n",
        )
        assert s.imports["np"] == "numpy"
        assert s.imports["Model"] == "repro.ml.Model"
        assert s.imports["ratelimit"] == "@gateway.ratelimit"

    def test_call_sites_record_chain_and_nargs(self):
        s = summarize(
            "ml/m.py",
            "import random\n"
            "def f():\n"
            "    return random.Random(0).random() + random.Random()\n",
        )
        chains = {(c.chain, c.nargs) for c in s.functions["f"].calls}
        assert (("random", "Random"), 1) in chains
        assert (("random", "Random"), 0) in chains

    def test_local_constructor_types_the_variable(self):
        s = summarize(
            "gateway/svc.py",
            "from repro.tracing import Tracer\n"
            "def f(clock):\n"
            "    tracer = Tracer(clock)\n"
            "    tracer.start_span('x')\n",
        )
        assert s.functions["f"].var_types["tracer"] == "Tracer"

    def test_annotated_param_types_the_variable(self):
        s = summarize(
            "cluster/h.py",
            "def f(node: Node, maybe: 'Other | None'):\n"
            "    pass\n",
        )
        assert s.functions["f"].var_types["node"] == "Node"
        assert s.functions["f"].var_types["maybe"] == "Other"

    def test_class_attr_types_from_constructor_assignment(self):
        s = summarize(
            "cluster/n.py",
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.tracer = Tracer()\n"
            "        self.count = make_counter()\n",
        )
        attr_types = s.classes["Node"].attr_types
        assert attr_types["tracer"] == "Tracer"
        assert "count" not in attr_types  # lowercase factory: unknowable

    def test_lock_contract_extracted(self):
        s = summarize(
            "cluster/n.py",
            "import threading\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def tick(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n",
        )
        cls = s.classes["Node"]
        assert cls.lock_attrs == ("_lock",)
        assert cls.guarded_attrs == ("n",)

    def test_param_writes_record_held_locks(self):
        s = summarize(
            "cluster/h.py",
            "def bad(node):\n"
            "    node.inflight = 0\n"
            "def good(node):\n"
            "    with node._lock:\n"
            "        node.inflight = 0\n",
        )
        bad = s.functions["bad"].param_writes[0]
        good = s.functions["good"].param_writes[0]
        assert (bad.param, bad.attr, bad.held) == ("node", "inflight", ())
        assert good.held == ("_lock",)

    def test_module_body_calls_captured(self):
        s = summarize("ml/m.py", "import random\nx = random.random()\n")
        assert MODULE_BODY in s.functions

    def test_round_trips_through_dict(self):
        s = summarize(
            "cluster/n.py",
            "import threading\n"
            "from repro.tracing import Tracer\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.t = Tracer()\n"
            "    def tick(self):\n"
            "        with self._lock:\n"
            "            self.n = 1\n",
        )
        restored = ModuleSummary.from_dict(s.to_dict())
        assert restored.to_dict() == s.to_dict()
        assert restored.classes["Node"].lock_attrs == ("_lock",)


class TestSymbolTable:
    def test_resolve_dotted_direct(self):
        table = SymbolTable(
            [summarize("tracing/tracer.py", "class Tracer:\n    def start_span(self):\n        pass\n")]
        )
        assert table.resolve_dotted("repro.tracing.tracer.Tracer") == (
            "tracing.tracer",
            "Tracer",
        )

    def test_resolve_dotted_follows_reexport(self):
        table = SymbolTable(
            [
                summarize(
                    "tracing/__init__.py",
                    "from repro.tracing.tracer import Tracer\n",
                ),
                summarize(
                    "tracing/tracer.py",
                    "class Tracer:\n    def start_span(self):\n        pass\n",
                ),
            ]
        )
        assert table.resolve_dotted("repro.tracing.Tracer") == (
            "tracing.tracer",
            "Tracer",
        )

    def test_resolve_dotted_external_is_none(self):
        table = SymbolTable([])
        assert table.resolve_dotted("numpy.random.default_rng") is None

    def test_resolve_method_walks_bases(self):
        base = summarize(
            "gateway/base.py",
            "class Service:\n    def handle(self):\n        pass\n",
        )
        sub = summarize(
            "gateway/svc.py",
            "from repro.gateway.base import Service\n"
            "class Shap(Service):\n"
            "    def extra(self):\n"
            "        pass\n",
        )
        table = SymbolTable([base, sub])
        cls = sub.classes["Shap"]
        assert table.resolve_method("gateway.svc", cls, "handle") == (
            "gateway.base",
            "Service.handle",
        )

    def test_find_class_through_import(self):
        node = summarize("cluster/node.py", "class Node:\n    pass\n")
        helper = summarize(
            "cluster/helper.py",
            "from repro.cluster.node import Node\n",
        )
        table = SymbolTable([node, helper])
        found = table.find_class(helper, "Node")
        assert found is not None and found[0] == "cluster.node"
