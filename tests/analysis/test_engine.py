"""Engine mechanics: registration, parsing, finding assembly."""

import ast

import pytest

from repro.analysis.engine import (
    AnalysisEngine,
    Finding,
    ModuleContext,
    all_rules,
    get_rule,
    rule,
)


class TestRegistry:
    def test_catalogue_is_nonempty_and_sorted(self):
        specs = all_rules()
        assert len(specs) >= 8
        assert [s.rule_id for s in specs] == sorted(s.rule_id for s in specs)

    def test_every_rule_has_a_description(self):
        for spec in all_rules():
            assert spec.description.strip()
            assert spec.severity in ("error", "warning")

    def test_duplicate_rule_id_rejected(self):
        existing = all_rules()[0].rule_id
        with pytest.raises(ValueError, match="duplicate"):

            @rule(existing)
            def clone_rule(module):  # pragma: no cover
                return []

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            rule("x-temp", severity="fatal")

    def test_get_rule_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("no-such-rule")


class TestModuleContext:
    def test_package_of_nested_and_root_modules(self):
        assert ModuleContext.from_source("x = 1", "ml/model.py").package == "ml"
        assert ModuleContext.from_source("x = 1", "cli.py").package == ""

    def test_is_init(self):
        assert ModuleContext.from_source("", "ml/__init__.py").is_init
        assert not ModuleContext.from_source("", "ml/model.py").is_init

    def test_walk_filters_by_type(self):
        ctx = ModuleContext.from_source("def f(): pass\nx = 1")
        assert len(list(ctx.walk(ast.FunctionDef))) == 1


class TestEngine:
    def test_unknown_rule_selection_fails_fast(self):
        with pytest.raises(KeyError):
            AnalysisEngine(rules=["nope"])

    def test_selected_subset_only_runs_those_rules(self):
        engine = AnalysisEngine(rules=["mutable-default"])
        findings = engine.analyze_source('x = f"no placeholder"\ndef f(y=[]): pass')
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_findings_sorted_by_path_then_line(self):
        engine = AnalysisEngine(rules=["mutable-default"])
        src = "def a(x=[]): pass\ndef b(y={}): pass"
        lines = [f.line for f in engine.analyze_source(src)]
        assert lines == sorted(lines)

    def test_analyze_tree_reports_syntax_error_as_finding(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n", encoding="utf-8")
        (tmp_path / "good.py").write_text("x = 1\n", encoding="utf-8")
        findings, modules = AnalysisEngine().analyze_tree(tmp_path)
        assert modules == 1  # only the parsable module counts
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_finding_render_is_clickable(self):
        finding = Finding(path="ml/model.py", line=7, rule="r", message="m")
        assert finding.render() == "ml/model.py:7: [r] m"
