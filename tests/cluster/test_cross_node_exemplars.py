"""Regression: exemplars resolve across node boundaries after WAL replay.

The failure mode this pins down: a slow window is aggregated under the
*serving* node's source (``shap@node-B``) because that is where the
exemplar was recorded — but the request entered the cluster on node A.
Resolving that window must yield the *full* cross-node trace (entry legs
on A, processing on B), and it must still work when the windows are
rebuilt cold from the WAL rather than read from the live aggregator.
"""

import pytest

from repro.cluster.runner import ClusterRunner
from repro.cluster.topology import ClusterTopology, RouteSpec
from repro.gateway.loadgen import ThreadGroup
from repro.gateway.simulation import Simulator
from repro.telemetry import TelemetryPipeline, replay
from repro.telemetry.events import KIND_RESPONSE, NODE_ID_LABEL
from repro.telemetry.rollup import TumblingWindowAggregator
from repro.tracing import NODE_ID_ATTR, resolve_window, slowest_windows
from repro.tracing.analysis import critical_path


@pytest.fixture()
def cluster_run(tmp_path):
    """A traced 6-node run published into a WAL-backed pipeline."""
    pipeline = TelemetryPipeline(
        wal_dir=tmp_path / "wal", window_seconds=0.5
    ).start()
    topology = ClusterTopology(
        Simulator(),
        [RouteSpec("shap", concurrency=2)],
        n_nodes=6,
        replication=2,
        seed=21,
    )
    runner = ClusterRunner(
        topology,
        seed=21,
        trace_every=1,  # every request leaves an exemplar-able trace
        telemetry=pipeline,
        topic="cluster",
    )
    runner.add_thread_group(
        ThreadGroup("shap", 12, rampup_seconds=0.2, iterations=15)
    )
    runner.run()
    pipeline.flush()
    return tmp_path / "wal", runner, pipeline


def test_exemplar_labels_survive_wal_replay(cluster_run):
    wal_dir, runner, _ = cluster_run
    replayed = [
        e
        for e in replay(wal_dir)
        if e.kind == KIND_RESPONSE and e.attrs.get("exemplar")
    ]
    assert replayed
    for event in replayed:
        assert event.trace_id is not None
        assert event.span_id is not None
        node_id = event.node_id
        assert node_id is not None
        # the source is sharded by the *serving* node — the same node the
        # label names — so rollups split per node after replay too
        assert event.source.endswith(f"@{node_id}")
        assert event.labels[NODE_ID_LABEL] == node_id


def test_cross_node_window_resolves_to_full_trace_after_replay(cluster_run):
    wal_dir, runner, _ = cluster_run
    assert runner.cross_node_traces > 0
    replayed = list(replay(wal_dir))

    # rebuild the rollup store cold, exactly as a post-hoc analysis would
    aggregator = TumblingWindowAggregator(window_seconds=0.5)
    exemplar_sources = set()
    for event in replayed:
        if event.kind == KIND_RESPONSE and event.attrs.get("exemplar"):
            aggregator.ingest(event)
            exemplar_sources.add(event.source)
    aggregator.flush()
    assert exemplar_sources  # per-node sources made it through the WAL

    cross_node_seen = 0
    for source in sorted(exemplar_sources):
        windows = slowest_windows(aggregator.windows(source=source), k=2)
        assert windows
        for window in windows:
            resolution = resolve_window(
                window, replayed, runner.collector, max_traces=8
            )
            assert resolution.resolved
            assert resolution.missing == []
            serving = source.split("@")[1]
            for tree in resolution.traces:
                nodes = {
                    span.attributes[NODE_ID_ATTR]
                    for span in tree.spans
                    if NODE_ID_ATTR in span.attributes
                }
                # the serving node the window was aggregated under is in
                # the trace...
                assert serving in nodes
                if len(nodes) > 1:
                    cross_node_seen += 1
                    # ...and so is the (different) entry node: the trace
                    # is whole, not just the serving-node fragment
                    assert tree.root.attributes[NODE_ID_ATTR] != serving
                    path_nodes = {
                        seg.span.attributes[NODE_ID_ATTR]
                        for seg in critical_path(tree)
                        if NODE_ID_ATTR in seg.span.attributes
                    }
                    assert len(path_nodes) >= 2  # the path crosses nodes
    # the regression itself: at least one resolved window was cross-node
    assert cross_node_seen > 0


def test_live_and_replayed_windows_agree(cluster_run):
    wal_dir, runner, pipeline = cluster_run
    exemplar_sources = {
        e.source
        for e in replay(wal_dir)
        if e.kind == KIND_RESPONSE and e.attrs.get("exemplar")
    }
    rebuilt = TumblingWindowAggregator(window_seconds=0.5)
    for event in replay(wal_dir):
        rebuilt.ingest(event)
    rebuilt.flush()
    for source in exemplar_sources:
        assert rebuilt.windows(source=source) == pipeline.rollups.windows(
            source=source
        )
