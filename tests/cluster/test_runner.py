"""ClusterRunner: conservation, per-node sharding, retroactive traces."""

import pytest

from repro.cluster.runner import ClusterRunner, node_source
from repro.cluster.topology import ClusterTopology, RouteSpec
from repro.gateway.loadgen import ThreadGroup
from repro.gateway.simulation import Simulator
from repro.telemetry.events import KIND_RESPONSE, NODE_ID_LABEL
from repro.tracing import NODE_ID_ATTR
from repro.tracing.analysis import critical_path


def _cluster(n_nodes=4, replication=2, seed=3, **kwargs):
    topology = ClusterTopology(
        Simulator(),
        [RouteSpec("shap", concurrency=2), RouteSpec("lime", concurrency=2)],
        n_nodes=n_nodes,
        replication=replication,
        seed=seed,
    )
    return topology, ClusterRunner(topology, seed=seed, **kwargs)


def _drive(runner, iterations=10, threads=20):
    for route in ("shap", "lime"):
        runner.add_thread_group(
            ThreadGroup(route, threads, rampup_seconds=0.2,
                        iterations=iterations)
        )
    return runner.run()


def test_conservation_on_a_healthy_run():
    _, runner = _cluster()
    report = _drive(runner)
    cons = runner.conservation()
    assert cons["appended"] == cons["observed"] == 400
    assert cons["in_flight"] == 0
    assert cons["final_failures"] == 0
    assert cons["failovers"] == 0
    assert cons["stale_completions"] == 0
    assert report.n_requests == 400 and report.n_errors == 0
    assert set(report.per_route) == {"shap", "lime"}
    assert sum(r.n_requests for r in report.per_route.values()) == 400
    assert report.throughput_rps > 0


def test_per_node_rollups_sum_to_the_cluster_total():
    topology, runner = _cluster()
    _drive(runner)
    per_node = runner.summary_by_node(duration=runner.sim.now)
    assert per_node  # at least one node saw traffic
    assert set(per_node) <= set(topology.node_ids())
    assert sum(r.n_requests for r in per_node.values()) == 400
    # only ring-preferred nodes serve: replication=2 over 2 routes
    assert len(per_node) <= 4


def test_traffic_lands_only_on_preference_nodes():
    topology, runner = _cluster(n_nodes=6, replication=2)
    _drive(runner)
    preferred = set()
    for route in ("shap", "lime"):
        preferred.update(topology.ring.preference(route, 2))
    served = {
        node_id
        for (node_id, route_id), stats in runner.node_route_stats.items()
        if stats.n_requests > 0
    }
    assert served <= preferred


def test_exemplar_events_are_node_sharded_and_trace_linked():
    _, runner = _cluster(trace_every=1)
    _drive(runner, iterations=5, threads=10)
    events = runner.exemplar_events()
    assert events
    for event in events:
        node_id = event.node_id
        assert node_id is not None
        assert event.labels[NODE_ID_LABEL] == node_id
        route = event.source.split("@")[0]
        assert event.source == node_source(route, node_id)
        assert event.kind == KIND_RESPONSE
        # every exemplar resolves to a held trace
        tree = runner.collector.get(event.trace_id)
        assert tree.root.name == "cluster.request"


def test_traces_materialize_retroactively_with_exact_partition():
    _, runner = _cluster(trace_every=7)
    _drive(runner)
    assert runner.tracer.active_spans == 0  # nothing left open
    trees = runner.collector.traces()
    assert trees
    for tree in trees:
        assert tree.root.name == "cluster.request"
        assert NODE_ID_ATTR in tree.root.attributes
        # children exactly partition the root interval, so the critical
        # path accounts for every simulated second of the request
        path = critical_path(tree)
        assert sum(seg.seconds for seg in path) == pytest.approx(
            tree.duration
        )


def test_cross_node_traces_count_entry_vs_serving():
    _, runner = _cluster(n_nodes=6, trace_every=1)
    _drive(runner, iterations=5, threads=12)
    assert runner.cross_node_traces > 0
    crossing = 0
    for tree in runner.collector.traces():
        nodes = {s.attributes[NODE_ID_ATTR] for s in tree.spans
                 if NODE_ID_ATTR in s.attributes}
        if len(nodes) > 1:
            crossing += 1
    assert crossing == runner.cross_node_traces


def test_retain_mode_keeps_every_record():
    _, runner = _cluster(retain_records=True)
    _drive(runner, iterations=5, threads=10)
    records = runner.records()
    assert len(records) == runner.log.appended == 100
    assert runner.log.recycled == 0
    assert all(r.end > 0 for r in records)


def test_ring_mode_bounds_memory():
    _, runner = _cluster(retain_records=False, initial_capacity=64)
    _drive(runner)
    assert runner.log.recycled > 0
    assert runner.log.capacity < runner.log.appended


def test_same_seed_same_summary():
    reports = []
    for _ in range(2):
        _, runner = _cluster(seed=11)
        reports.append(_drive(runner))
    a, b = reports
    assert a.avg_response_ms == b.avg_response_ms
    assert a.p95_response_ms == b.p95_response_ms
    assert a.timeline == b.timeline


def test_validation():
    topology, _ = _cluster()
    with pytest.raises(ValueError):
        ClusterRunner(topology, trace_every=-1)
    with pytest.raises(ValueError):
        ClusterRunner(topology, max_attempts=0)
    runner = ClusterRunner(topology)
    with pytest.raises(KeyError):
        runner.bind_route("not-a-route")
