"""NodeService epoch guard + ClusterNode lifecycle state machine."""

import pytest

from repro.cluster.node import (
    NODE_DOWN,
    NODE_DRAINING,
    NODE_UP,
    ClusterNode,
    NodeService,
)
from repro.gateway.records import RecordLog
from repro.gateway.services import ServiceTimeModel
from repro.gateway.simulation import Simulator


def _station(concurrency=2, queue_capacity=4, seed=7):
    sim = Simulator()
    log = RecordLog(initial_capacity=64)
    node = ClusterNode("node-0")
    service = NodeService(
        "shap",
        node,
        ServiceTimeModel({"tabular": 0.01}, seed=seed),
        concurrency=concurrency,
        queue_capacity=queue_capacity,
    )
    node.add_service(service)
    done = []
    service.bind(log, sim, lambda svc, row, ok: done.append((row, ok)))
    return sim, log, service, done


def _submit(log, service, n, at=0.0):
    route = log.intern_route("shap")
    payload = log.intern_payload("tabular")
    rows = []
    for _ in range(n):
        row = log.append(route, payload, at)
        service.submit_row(row)
        rows.append(row)
    return rows


def test_completions_drain_queue_and_hit_sink():
    sim, log, service, done = _station(concurrency=2, queue_capacity=4)
    rows = _submit(log, service, 5)
    assert service.busy_workers == 2
    assert service.queue_length == 3
    sim.run()
    assert sorted(row for row, ok in done) == sorted(rows)
    assert all(ok for _, ok in done)
    assert service.completed_rows == 5
    assert service.busy_workers == 0
    assert all(log.v_end[row] == 0.0 for row in rows)  # sink owns the end stamp
    # queued rows only got their start stamp when a worker freed up
    assert all(log.v_start[row] > 0.0 for row in rows[2:])


def test_queue_overflow_is_a_typed_rejection_not_a_drop():
    sim, log, service, done = _station(concurrency=1, queue_capacity=1)
    rows = _submit(log, service, 3)
    overflow = rows[2]
    # the third row was typed-failed synchronously
    assert service.rejected_rows == 1
    assert (overflow, False) in done
    assert not log.v_ok[overflow]
    code = int(log.v_error_codes[overflow])
    assert "queue full at node-0/shap (503)" == log.error_message(code)
    sim.run()
    assert service.completed_rows == 2


def test_epoch_guard_drops_stale_completions():
    sim, log, service, done = _station(concurrency=2)
    rows = _submit(log, service, 2)
    assert service.inflight_rows == 2
    lost = service.crash()
    assert sorted(lost) == sorted(rows)
    assert service.epoch == 1
    assert service.inflight_rows == 0
    assert service.busy_workers == 0
    # the pre-crash completion events are still on the heap; they must
    # arrive stale and never reach the sink
    sim.run()
    assert done == []
    assert service.stale_completions == 2
    assert service.completed_rows == 0


def test_crash_returns_queued_rows_too():
    sim, log, service, done = _station(concurrency=1, queue_capacity=8)
    rows = _submit(log, service, 5)
    lost = service.crash()
    assert sorted(lost) == sorted(rows)  # 1 in flight + 4 queued
    sim.run()
    assert service.stale_completions == 1
    assert done == []


def test_resubmission_after_crash_completes_on_the_new_epoch():
    sim, log, service, done = _station(concurrency=1)
    (row,) = _submit(log, service, 1)
    service.crash()
    service.submit_row(row)  # failover back onto the restarted station
    sim.run()
    assert done == [(row, True)]
    assert service.stale_completions == 1
    assert service.completed_rows == 1


def test_slow_factor_scales_service_times():
    sim_a, log_a, svc_a, _ = _station(seed=3)
    sim_b, log_b, svc_b, _ = _station(seed=3)
    svc_b.set_slow(4.0)
    _submit(log_a, svc_a, 1)
    _submit(log_b, svc_b, 1)
    sim_a.run()
    sim_b.run()
    assert sim_b.now == pytest.approx(4.0 * sim_a.now)
    with pytest.raises(ValueError):
        svc_b.set_slow(0.0)


def test_station_validation():
    node = ClusterNode("node-0")
    model = ServiceTimeModel({"tabular": 0.01}, seed=0)
    with pytest.raises(ValueError):
        NodeService("shap", node, model, concurrency=0)
    with pytest.raises(ValueError):
        NodeService("shap", node, model, concurrency=1, queue_capacity=-1)
    node.add_service(NodeService("shap", node, model, concurrency=1))
    with pytest.raises(ValueError):
        node.add_service(NodeService("shap", node, model, concurrency=1))


# -- ClusterNode state machine ------------------------------------------------


def test_crash_restart_cycle():
    node = ClusterNode("node-1")
    assert (node.state, node.serving) == (NODE_UP, True)
    node.crash()
    assert (node.state, node.serving) == (NODE_DOWN, False)
    with pytest.raises(RuntimeError):
        node.crash()
    node.restart()
    assert (node.state, node.serving) == (NODE_UP, True)
    with pytest.raises(RuntimeError):
        node.restart()
    assert (node.crashes, node.restarts) == (1, 1)


def test_partition_and_heal_toggle_reachability():
    node = ClusterNode("node-1")
    node.partition()
    assert node.state == NODE_UP  # still computing, just unreachable
    assert not node.reachable and not node.serving
    with pytest.raises(RuntimeError):
        node.partition()
    node.heal()
    assert node.reachable and node.serving
    with pytest.raises(RuntimeError):
        node.heal()


def test_partitioned_node_that_crashes_stays_unreachable_after_restart():
    node = ClusterNode("node-1")
    node.partition()
    node.crash()
    node.restart()
    assert node.state == NODE_UP
    assert not node.serving  # reachability survives the restart
    node.heal()
    assert node.serving


def test_drain_blocks_new_dispatch_only():
    node = ClusterNode("node-1")
    node.drain()
    assert (node.state, node.serving) == (NODE_DRAINING, False)
    with pytest.raises(RuntimeError):
        node.drain()
