"""Deterministic failover: crash a primary mid-request, lose nothing.

The satellite acceptance criterion: under a seeded run, crashing the
primary node while requests are in flight must (a) lose zero events in
the rollups — every appended row is observed exactly once — and (b)
surface every failure as a typed, interned error.  No silent drops.
"""

import pytest

from repro.cluster.faults import FaultPlan
from repro.cluster.runner import ClusterRunner
from repro.cluster.topology import ClusterTopology, RouteSpec
from repro.gateway.loadgen import ThreadGroup
from repro.gateway.simulation import Simulator

#: The only error messages allowed to *finalise* a request; transient
#: crash/partition losses must always be retried, never surfaced.
FINAL_ERRORS = {
    "no live replica (503)",
    "failover retries exhausted (503)",
}


def _cluster(n_nodes=3, replication=2, seed=5, **kwargs):
    topology = ClusterTopology(
        Simulator(),
        [RouteSpec("shap", concurrency=2, queue_capacity=64)],
        n_nodes=n_nodes,
        replication=replication,
        seed=seed,
    )
    return topology, ClusterRunner(
        topology, retain_records=True, seed=seed, **kwargs
    )


def _saturate(runner, threads=40, iterations=25):
    runner.add_thread_group(
        ThreadGroup("shap", threads, rampup_seconds=0.1, iterations=iterations)
    )


def test_crash_primary_mid_request_loses_zero_events():
    topology, runner = _cluster()
    primary = topology.ring.preference("shap", 2)[0]
    _saturate(runner)
    runner.apply_fault_plan(FaultPlan().add_crash(primary, 0.3))
    report = runner.run()
    cons = runner.conservation()
    # the crash definitely caught work in flight...
    assert cons["lost_in_flight"] > 0
    assert cons["failovers"] > 0
    assert cons["stale_completions"] > 0
    # ...and the ledger still balances: zero loss, nothing in flight
    assert cons["observed"] == cons["appended"] == 1000
    assert cons["in_flight"] == 0
    assert report.n_requests == 1000
    # the replica absorbed everything: no request had to finalise failed
    assert cons["final_failures"] == report.n_errors


def test_every_row_is_answered_or_typed_failed():
    topology, runner = _cluster(n_nodes=2, replication=2, max_attempts=2)
    primary = topology.ring.preference("shap", 2)[0]
    _saturate(runner)
    # crash the primary and never restart: half the capacity vanishes
    runner.apply_fault_plan(FaultPlan().add_crash(primary, 0.2))
    runner.run()
    for record in runner.records():
        if record.success:
            assert record.end > 0 and record.error == ""
        else:
            assert record.error in FINAL_ERRORS  # typed, never silent
    assert runner.conservation()["observed"] == runner.log.appended


def test_crashing_every_replica_gives_typed_no_replica_failures():
    topology, runner = _cluster(n_nodes=2, replication=2)
    _saturate(runner, threads=10, iterations=10)
    plan = FaultPlan()
    for node_id in topology.node_ids():
        plan.add_crash(node_id, 0.25)
    runner.apply_fault_plan(plan)
    runner.run()
    cons = runner.conservation()
    assert cons["observed"] == cons["appended"] == 100
    assert cons["final_failures"] > 0
    failed = [r for r in runner.records() if not r.success]
    assert failed
    assert {r.error for r in failed} <= FINAL_ERRORS


def test_restart_rejoins_without_rebalancing():
    topology, runner = _cluster()
    primary = topology.ring.preference("shap", 2)[0]
    version = topology.membership_version
    _saturate(runner)
    runner.apply_fault_plan(
        FaultPlan().add_crash(primary, 0.2, restart_at=0.4)
    )
    runner.run()
    # crash/restart is a fault, not a membership change: the ring never
    # moved a key and the restarted node serves again
    assert topology.membership_version == version
    assert primary in topology.ring
    assert topology.nodes[primary].serving
    assert topology.nodes[primary].restarts == 1
    assert runner.conservation()["observed"] == runner.log.appended


def test_partitioned_responses_are_retried_not_dropped():
    topology, runner = _cluster()
    primary = topology.ring.preference("shap", 2)[0]
    _saturate(runner)
    runner.apply_fault_plan(FaultPlan().add_partition(primary, 0.2, 0.3))
    runner.run()
    cons = runner.conservation()
    assert cons["lost_responses"] > 0  # completions caught behind the cut
    assert cons["failovers"] >= cons["lost_responses"]
    assert cons["observed"] == cons["appended"] == 1000
    assert cons["in_flight"] == 0


def test_failover_run_is_deterministic_under_a_seed():
    ledgers = []
    for _ in range(2):
        topology, runner = _cluster(seed=17)
        primary = topology.ring.preference("shap", 2)[0]
        _saturate(runner)
        runner.apply_fault_plan(
            FaultPlan()
            .add_crash(primary, 0.3, restart_at=0.8)
            .add_partition(topology.ring.preference("shap", 2)[1], 1.0, 0.2)
        )
        runner.run()
        ledgers.append(runner.conservation())
    assert ledgers[0] == ledgers[1]


def test_queue_overflow_fails_over_to_the_replica():
    topology, runner = _cluster(n_nodes=2, replication=2)
    # shrink the primary's queue so overflow rejections are guaranteed
    primary = topology.ring.preference("shap", 2)[0]
    service = topology.nodes[primary].services["shap"]
    service.queue_capacity = 2
    _saturate(runner, threads=30, iterations=10)
    runner.run()
    cons = runner.conservation()
    assert service.rejected_rows > 0
    assert cons["failovers"] > 0
    assert cons["observed"] == cons["appended"] == 300
    # rejections either landed on the replica or finalised typed — the
    # rejection count is fully accounted for, nothing vanished
    assert cons["failovers"] + cons["final_failures"] >= service.rejected_rows
