"""ClusterTopology: placement, membership churn, seed independence."""

import pytest

from repro.cluster.topology import ClusterTopology, RouteSpec, paper_route_specs
from repro.gateway.simulation import Simulator


def _topology(n_nodes=4, replication=2, seed=0, routes=None):
    return ClusterTopology(
        Simulator(),
        routes or [RouteSpec("shap"), RouteSpec("lime")],
        n_nodes=n_nodes,
        replication=replication,
        seed=seed,
    )


def test_initial_membership_and_stations():
    topo = _topology(n_nodes=3)
    assert topo.node_ids() == ["node-0", "node-1", "node-2"]
    assert len(topo) == 3
    for node in topo.nodes.values():
        assert sorted(node.services) == ["lime", "shap"]


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClusterTopology(sim, [RouteSpec("shap")], n_nodes=0)
    with pytest.raises(ValueError):
        ClusterTopology(sim, [RouteSpec("shap")], replication=0)
    with pytest.raises(ValueError):
        ClusterTopology(sim, [])
    with pytest.raises(ValueError):
        ClusterTopology(sim, [RouteSpec("shap"), RouteSpec("shap")])
    with pytest.raises(ValueError):
        RouteSpec("")
    with pytest.raises(ValueError):
        RouteSpec("shap", concurrency=0)


def test_replica_nodes_follow_the_ring_preference():
    topo = _topology(n_nodes=5, replication=3)
    for route in ("shap", "lime"):
        replicas = topo.replica_nodes(route)
        assert len(replicas) == 3
        assert [n.node_id for n in replicas] == topo.ring.preference(route, 3)
        assert len({n.node_id for n in replicas}) == 3


def test_replication_clamps_to_membership():
    topo = _topology(n_nodes=2, replication=4)
    assert len(topo.replica_nodes("shap")) == 2


def test_membership_version_and_rebalanced_routes():
    routes = [RouteSpec(f"route-{i}") for i in range(20)]
    topo = _topology(n_nodes=4, routes=routes)
    version = topo.membership_version
    before = {r.route: topo.ring.node_for(r.route) for r in routes}
    joined = topo.add_node()
    assert topo.membership_version == version + 1
    after = {r.route: topo.ring.node_for(r.route) for r in routes}
    moved = sorted(r for r in after if after[r] != before[r])
    assert topo.last_rebalanced_routes == moved
    # minimal movement: every rebalanced route lands on the joiner
    assert all(after[r] == joined.node_id for r in moved)


def test_remove_node_drains_and_withdraws():
    topo = _topology(n_nodes=3)
    node = topo.remove_node("node-1")
    assert node.state == "draining"
    assert "node-1" not in topo.nodes
    assert "node-1" not in topo.ring
    assert topo.node_ids() == ["node-0", "node-2"]
    with pytest.raises(KeyError):
        topo.remove_node("node-1")


def test_listener_fires_on_every_membership_change():
    topo = _topology(n_nodes=2)

    class Listener:
        def __init__(self):
            self.calls = []

        def membership_changed(self, node):
            self.calls.append(node.node_id)

    listener = Listener()
    topo.set_listener(listener)
    topo.add_node()
    topo.remove_node("node-0")
    assert listener.calls == ["node-2", "node-0"]


def test_node_seeds_survive_churn():
    """After drain+rejoin no two live stations share a sample stream."""
    topo = _topology(n_nodes=2)
    topo.remove_node("node-1")
    fresh = topo.add_node()  # spawn ordinal 2, not membership size 1
    assert fresh.node_id == "node-2"
    a = topo.nodes["node-0"].services["shap"].service_time
    b = fresh.services["shap"].service_time
    assert a.sample_batch("tabular", 8).tolist() != b.sample_batch(
        "tabular", 8
    ).tolist()


def test_same_seed_reproduces_same_streams():
    one = _topology(seed=42)
    two = _topology(seed=42)
    a = one.nodes["node-1"].services["lime"].service_time
    b = two.nodes["node-1"].services["lime"].service_time
    assert a.sample_batch("tabular", 8).tolist() == b.sample_batch(
        "tabular", 8
    ).tolist()


def test_fault_wrappers_touch_the_named_node():
    topo = _topology(n_nodes=3)
    topo.partition_node("node-1")
    assert not topo.nodes["node-1"].reachable
    topo.heal_node("node-1")
    assert topo.nodes["node-1"].reachable
    lost = topo.crash_node("node-2")
    assert lost == []  # nothing in flight
    assert topo.nodes["node-2"].state == "down"
    topo.restart_node("node-2")
    topo.degrade_node("node-0", 2.5)
    assert topo.nodes["node-0"].slow_factor == 2.5
    topo.restore_node("node-0")
    assert topo.nodes["node-0"].slow_factor == 1.0
    with pytest.raises(KeyError):
        topo.crash_node("node-9")
    assert len(topo.live_nodes()) == 3


def test_paper_route_specs_cover_the_metric_services():
    specs = paper_route_specs(queue_capacity=64)
    names = sorted(s.route for s in specs)
    assert "shap" in names and "lime" in names and "ai_pipeline" in names
    assert all(s.queue_capacity == 64 for s in specs)
    assert all(s.concurrency >= 1 for s in specs)
