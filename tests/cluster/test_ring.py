"""Consistent-hash ring: units plus the hypothesis property suite.

The two properties the cluster design leans on — balance within
tolerance across 1k routes, and join/leave key movement on the ⌈K/N⌉
scale with *exact* minimality (a join only moves keys onto the joining
node; a leave only moves the leaving node's keys) — are encoded here as
hypothesis properties over key populations.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import ConsistentHashRing, stable_hash64


def _ring(n, vnodes=128):
    ring = ConsistentHashRing(vnodes=vnodes)
    for i in range(n):
        ring.add_node(f"node-{i}")
    return ring


# -- units -------------------------------------------------------------------


def test_stable_hash_is_deterministic_and_64_bit():
    assert stable_hash64("route-a") == stable_hash64("route-a")
    assert stable_hash64("route-a") != stable_hash64("route-b")
    assert 0 <= stable_hash64("anything") < 1 << 64


def test_empty_ring_rejects_lookups():
    ring = ConsistentHashRing()
    with pytest.raises(LookupError):
        ring.node_for("route")
    with pytest.raises(LookupError):
        ring.preference("route", 2)


def test_membership_bookkeeping():
    ring = _ring(3)
    assert len(ring) == 3
    assert "node-1" in ring
    assert ring.nodes == ["node-0", "node-1", "node-2"]
    with pytest.raises(ValueError):
        ring.add_node("node-1")
    ring.remove_node("node-1")
    assert "node-1" not in ring
    with pytest.raises(KeyError):
        ring.remove_node("node-1")


def test_preference_lists_are_distinct_prefixes():
    ring = _ring(5)
    for key in ("shap", "lime", "impact"):
        pref = ring.preference(key, 3)
        assert len(pref) == len(set(pref)) == 3
        assert pref[0] == ring.node_for(key)
        # growing n extends the list without reordering the prefix
        assert ring.preference(key, 5)[:3] == pref


def test_preference_clamps_to_membership():
    ring = _ring(2)
    assert len(ring.preference("shap", 8)) == 2
    with pytest.raises(ValueError):
        ring.preference("shap", 0)


def test_vnodes_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(vnodes=0)


def test_assignments_groups_every_key():
    ring = _ring(4)
    keys = [f"route-{i}" for i in range(64)]
    grouped = ring.assignments(keys)
    assert sorted(k for bucket in grouped.values() for k in bucket) == sorted(
        keys
    )


# -- hypothesis properties ---------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(prefix=st.integers(0, 10_000), n_nodes=st.integers(4, 12))
def test_balance_within_tolerance_across_1k_routes(prefix, n_nodes):
    """1k route keys split near-uniformly over the membership.

    With 128 vnodes/node the empirical worst case over hundreds of key
    populations is ~1.47x / 0.67x of the fair share; the asserted 1.8x /
    0.4x envelope is the tolerance the autoscaler's sizing math assumes.
    """
    ring = _ring(n_nodes)
    counts = {node: 0 for node in ring.nodes}
    for i in range(1000):
        counts[ring.node_for(f"route-{prefix}-{i}")] += 1
    fair = 1000 / n_nodes
    assert max(counts.values()) <= 1.8 * fair
    assert min(counts.values()) >= 0.4 * fair


@settings(max_examples=25, deadline=None)
@given(prefix=st.integers(0, 10_000), n_nodes=st.integers(4, 12))
def test_join_moves_only_keys_onto_the_new_node(prefix, n_nodes):
    """Node join: every moved key moves *to* the joiner, ≤ ~⌈K/(N+1)⌉ keys."""
    ring = _ring(n_nodes)
    keys = [f"route-{prefix}-{i}" for i in range(1000)]
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node("joiner")
    moved = [key for key in keys if ring.node_for(key) != before[key]]
    assert all(ring.node_for(key) == "joiner" for key in moved)
    assert len(moved) <= 2 * math.ceil(1000 / (n_nodes + 1))


@settings(max_examples=25, deadline=None)
@given(
    prefix=st.integers(0, 10_000),
    n_nodes=st.integers(4, 12),
    victim=st.integers(0, 11),
)
def test_leave_moves_only_the_leavers_keys(prefix, n_nodes, victim):
    """Node leave: keys on surviving nodes never move, ≤ ~⌈K/N⌉ keys move."""
    ring = _ring(n_nodes)
    keys = [f"route-{prefix}-{i}" for i in range(1000)]
    before = {key: ring.node_for(key) for key in keys}
    leaver = f"node-{victim % n_nodes}"
    ring.remove_node(leaver)
    moved = 0
    for key in keys:
        owner = ring.node_for(key)
        if before[key] == leaver:
            moved += 1
            assert owner != leaver
        else:
            assert owner == before[key]
    assert moved <= 2 * math.ceil(1000 / n_nodes)


@settings(max_examples=15, deadline=None)
@given(prefix=st.integers(0, 10_000))
def test_join_then_leave_is_identity(prefix):
    """Adding and removing the same node restores every placement."""
    ring = _ring(6)
    keys = [f"route-{prefix}-{i}" for i in range(300)]
    before = {key: ring.preference(key, 2) for key in keys}
    ring.add_node("transient")
    ring.remove_node("transient")
    assert {key: ring.preference(key, 2) for key in keys} == before
