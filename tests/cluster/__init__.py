"""Tests for the repro.cluster multi-node deployment package."""
