"""FaultPlan: builders, ordering, and the CLI parse grammar."""

import pytest

from repro.cluster.faults import (
    FAULT_CRASH,
    FAULT_HEAL,
    FAULT_PARTITION,
    FAULT_RESTART,
    FAULT_RESTORE,
    FAULT_SLOW,
    FaultEvent,
    FaultPlan,
)


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent("explode", "node-0", 1.0)
    with pytest.raises(ValueError):
        FaultEvent(FAULT_CRASH, "node-0", -1.0)
    with pytest.raises(ValueError):
        FaultEvent(FAULT_SLOW, "node-0", 1.0, factor=0.0)


def test_builders_emit_paired_events_in_time_order():
    plan = (
        FaultPlan()
        .add_partition("node-3", 4.0, 6.0)
        .add_crash("node-2", 5.0, restart_at=12.0)
        .add_slow("node-1", 2.0, 8.0, factor=3.0)
    )
    kinds = [(e.at, e.kind, e.node_id) for e in plan]
    assert kinds == [
        (2.0, FAULT_SLOW, "node-1"),
        (4.0, FAULT_PARTITION, "node-3"),
        (5.0, FAULT_CRASH, "node-2"),
        (10.0, FAULT_RESTORE, "node-1"),
        (10.0, FAULT_HEAL, "node-3"),
        (12.0, FAULT_RESTART, "node-2"),
    ]
    assert plan.nodes() == ["node-1", "node-2", "node-3"]
    assert len(plan) == 6 and bool(plan)
    assert not FaultPlan()


def test_builder_validation():
    with pytest.raises(ValueError):
        FaultPlan().add_crash("node-0", 5.0, restart_at=5.0)
    with pytest.raises(ValueError):
        FaultPlan().add_partition("node-0", 5.0, 0.0)
    with pytest.raises(ValueError):
        FaultPlan().add_slow("node-0", 5.0, -1.0, 2.0)


def test_parse_round_trips_the_cli_grammar():
    plan = FaultPlan.parse(
        "crash:node-2@5, crash:node-4@3:9,"
        "partition:node-3@4:6, slow:node-1@2:8:3.0"
    )
    built = (
        FaultPlan()
        .add_crash("node-2", 5.0)
        .add_crash("node-4", 3.0, restart_at=9.0)
        .add_partition("node-3", 4.0, 6.0)
        .add_slow("node-1", 2.0, 8.0, 3.0)
    )
    assert plan.events == built.events


def test_parse_ignores_empty_chunks():
    assert FaultPlan.parse("").events == []
    assert len(FaultPlan.parse(" crash:node-0@1 , ,")) == 1


@pytest.mark.parametrize(
    "spec",
    [
        "crash",  # no node/time
        "crash:node-0",  # no @time
        "crash:node-0@",  # empty time
        "crash:node-0@x",  # non-numeric time
        "crash:node-0@1:2:3",  # too many args for crash
        "partition:node-0@4",  # partition needs a duration
        "slow:node-0@1:2",  # slow needs a factor
        "reboot:node-0@1",  # unknown kind
    ],
)
def test_parse_rejects_malformed_specs(spec):
    with pytest.raises(ValueError):
        FaultPlan.parse(spec)


def test_events_property_returns_a_copy():
    plan = FaultPlan().add_crash("node-0", 1.0)
    plan.events.clear()
    assert len(plan) == 1
