"""Per-node serving: batched stations, cluster shedding, WAL attribution.

The cluster variant of the serving layer runs one micro-batcher per
(node, route) station and a cluster-level cache gate per route.  The
regression that matters most rides at the end: shed requests publish
``shed:<route>`` markers on the availability stride, and those markers
must survive bus → WAL → replay → rollup so
:func:`repro.slo.attribute_unavailability` can split "deliberately
shed" from "failed" offline.
"""

import pytest

from repro.cluster import ClusterRunner, ClusterTopology, FaultPlan
from repro.cluster.topology import RouteSpec
from repro.gateway.arrivals import PoissonArrivalGroup
from repro.gateway.loadgen import ThreadGroup
from repro.gateway.simulation import Simulator
from repro.serving import ServingPolicy, is_shed_error
from repro.slo import attribute_unavailability
from repro.telemetry import (
    TelemetryPipeline,
    TumblingWindowAggregator,
    replay,
)


def _cluster(policy, n_nodes=4, replication=2, seed=3, **kwargs):
    topology = ClusterTopology(
        Simulator(),
        [RouteSpec("shap", concurrency=2)],
        n_nodes=n_nodes,
        replication=replication,
        seed=seed,
    )
    runner = ClusterRunner(topology, seed=seed, serving=policy, **kwargs)
    return topology, runner


class TestPerNodeBatching:
    def test_healthy_run_conserves_and_batches(self):
        __, runner = _cluster(ServingPolicy(max_batch=4, batch_window=0.005))
        runner.add_thread_group(
            ThreadGroup("shap", 20, rampup_seconds=0.2, iterations=10)
        )
        report = runner.run()
        cons = runner.conservation()
        assert cons["appended"] == cons["observed"] == 200
        assert cons["in_flight"] == 0
        assert cons["final_failures"] == 0
        assert report.n_errors == 0
        stats = runner.serving_summary()["shap"]
        served = {
            node_id: node
            for node_id, node in stats["nodes"].items()
            if node["batches"] > 0
        }
        assert served  # at least one station actually fused work
        assert sum(n["rows_batched"] for n in served.values()) == 200
        assert all(n["mean_batch"] >= 1.0 for n in served.values())

    def test_cache_gate_short_circuits_at_dispatch(self):
        __, runner = _cluster(
            ServingPolicy(max_batch=4, batch_window=0.005, cache_size=64)
        )
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=300.0, n_requests=400)
        )
        runner.run()
        cons = runner.conservation()
        assert cons["observed"] == 400
        assert cons["cache_hits"] > 0
        summary = runner.serving_summary()
        assert summary["_totals"]["cache_hits"] == cons["cache_hits"]
        hit_counter = summary["shap"]["cache"]["hits"]
        assert hit_counter == cons["cache_hits"]
        batched = sum(
            n["rows_batched"] for n in summary["shap"]["nodes"].values()
        )
        assert batched + cons["cache_hits"] == 400

    def test_serving_events_are_node_qualified(self):
        __, runner = _cluster(
            ServingPolicy(max_batch=4, batch_window=0.005, cache_size=32)
        )
        runner.add_thread_group(
            ThreadGroup("shap", 10, rampup_seconds=0.2, iterations=5)
        )
        runner.run()
        events = runner.serving_events(runner.sim.now)
        serving = [e for e in events if e.source.startswith("serving:")]
        assert serving
        for event in serving:
            assert "@node-" in event.source
            assert event.node_id is not None
        assert any(e.source == "cache:shap" for e in events)


class TestClusterShedding:
    def test_shed_is_final_and_typed(self):
        __, runner = _cluster(
            ServingPolicy(max_batch=4, batch_window=0.002, shed_depth=2),
            retain_records=True,
        )
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=3000.0, n_requests=600)
        )
        report = runner.run()
        cons = runner.conservation()
        assert cons["shed_requests"] > 0
        # shedding is deliberate refusal, not failure to be retried:
        # every shed lands as a final failure with zero failovers for it
        assert report.n_errors == cons["shed_requests"]
        assert cons["observed"] == 600
        assert cons["in_flight"] == 0
        log = runner.log
        shed_messages = {
            log.error_message(int(log.v_error_codes[row]))
            for row in range(600)
            if log.v_error_codes[row]
        }
        assert shed_messages
        for message in shed_messages:
            assert is_shed_error(message)
            assert " at node-" in message  # node-qualified end to end

    def test_crash_mid_batch_conserves(self):
        topology, runner = _cluster(
            ServingPolicy(max_batch=4, batch_window=0.005)
        )
        primary = topology.ring.preference("shap", 2)[0]
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=400.0, n_requests=400)
        )
        runner.apply_fault_plan(FaultPlan().add_crash(primary, 0.25))
        runner.run()
        cons = runner.conservation()
        assert cons["appended"] == cons["observed"] == 400
        assert cons["in_flight"] == 0
        assert cons["lost_in_flight"] > 0  # the crash really hit batches
        assert cons["failovers"] >= cons["lost_in_flight"]


class TestShedAttributionSurvivesReplay:
    def test_wal_replay_separates_shed_from_failed(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        pipeline = TelemetryPipeline(
            wal_dir=wal_dir, window_seconds=1.0, auto_pump_every=256
        )
        pipeline.start()
        __, runner = _cluster(
            ServingPolicy(max_batch=4, batch_window=0.005, shed_depth=3),
            telemetry=pipeline,
            response_every=1,
        )
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=2000.0, n_requests=800)
        )
        report = runner.run()
        pipeline.flush()
        pipeline.flush()
        assert runner.shed_requests > 0
        assert report.n_errors == runner.shed_requests

        # cold path: WAL -> replay -> rollup -> attribution
        aggregator = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        aggregator.ingest_many(list(replay(wal_dir)))
        aggregator.flush()
        attributions = attribute_unavailability(aggregator.windows())
        shap = [a for a in attributions if a.route == "shap"]
        assert shap
        total_shed = sum(a.shed for a in shap)
        total_failures = sum(a.failures for a in shap)
        # every unavailability tick is attributed to deliberate shedding
        assert total_shed == runner.shed_requests
        assert total_failures == total_shed
        assert all(a.failed == 0 for a in shap)
        assert any(a.shed_fraction == 1.0 for a in shap if a.failures)

    def test_shed_total_snapshot_does_not_double_count(self, tmp_path):
        """The cumulative ``shed_total:`` source must stay out of the
        window join — only stride markers drive attribution."""
        wal_dir = str(tmp_path / "wal")
        pipeline = TelemetryPipeline(
            wal_dir=wal_dir, window_seconds=1.0, auto_pump_every=256
        )
        pipeline.start()
        __, runner = _cluster(
            ServingPolicy(max_batch=4, batch_window=0.005, shed_depth=3),
            telemetry=pipeline,
            response_every=1,
        )
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=2000.0, n_requests=800)
        )
        runner.run()
        pipeline.flush()
        pipeline.flush()
        events = list(replay(wal_dir))
        snapshots = [
            e for e in events if e.source.startswith("shed_total:")
        ]
        assert snapshots  # the end-of-run cumulative was published...
        assert snapshots[-1].value == float(runner.shed_requests)
        # ...but attribution's window sum still matches exactly
        aggregator = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        aggregator.ingest_many(events)
        aggregator.flush()
        attributions = attribute_unavailability(aggregator.windows())
        assert (
            sum(a.shed for a in attributions if a.route == "shap")
            == runner.shed_requests
        )
