"""ClusterAutoscaler: rollup pressure joins nodes, idleness drains them."""

import pytest

from repro.cluster.autoscale import AutoscalePolicy, ClusterAutoscaler
from repro.cluster.runner import ClusterRunner
from repro.cluster.topology import ClusterTopology, RouteSpec
from repro.gateway.arrivals import PoissonArrivalGroup
from repro.gateway.loadgen import ThreadGroup
from repro.gateway.simulation import Simulator
from repro.telemetry.rollup import TumblingWindowAggregator


def _cluster(n_nodes, concurrency=1, seed=9):
    topology = ClusterTopology(
        Simulator(),
        [RouteSpec("shap", concurrency=concurrency)],
        n_nodes=n_nodes,
        replication=2,
        seed=seed,
    )
    return topology, ClusterRunner(topology, seed=seed)


def _autoscaler(runner, policy, interval=0.1):
    return ClusterAutoscaler(
        runner,
        TumblingWindowAggregator(window_seconds=0.2),
        policy=policy,
        interval=interval,
    )


def test_policy_validation():
    with pytest.raises(ValueError):
        AutoscalePolicy(hi_queue=1.0, lo_queue=2.0)
    with pytest.raises(ValueError):
        AutoscalePolicy(lo_queue=-1.0)
    with pytest.raises(ValueError):
        AutoscalePolicy(min_nodes=0)
    with pytest.raises(ValueError):
        AutoscalePolicy(min_nodes=5, max_nodes=2)
    with pytest.raises(ValueError):
        AutoscalePolicy(cooldown_seconds=-1.0)
    topology, runner = _cluster(1)
    with pytest.raises(ValueError):
        ClusterAutoscaler(
            runner, TumblingWindowAggregator(), interval=0.0
        )


def test_overload_adds_nodes():
    topology, runner = _cluster(1, concurrency=1)
    # 400 rps into a single 1-worker node with ~10ms services: the queue
    # grows without bound until the autoscaler spreads the ring
    runner.add_open_loop(PoissonArrivalGroup("shap", 400.0, 1200))
    scaler = _autoscaler(
        runner,
        AutoscalePolicy(
            hi_queue=8.0, lo_queue=0.5, max_nodes=4,
            cooldown_seconds=0.3,
        ),
    )
    scaler.start()
    runner.run()
    assert scaler.ticks > 0
    adds = [d for d in scaler.decisions if d.action == "add"]
    assert adds
    assert len(topology) > 1
    assert all(d.pressure > 8.0 for d in adds)
    # the joined nodes actually absorbed traffic
    cons = runner.conservation()
    assert cons["observed"] == cons["appended"] == 1200
    assert cons["in_flight"] == 0


def test_idle_cluster_drains_to_min_nodes():
    topology, runner = _cluster(4, concurrency=4)
    # a trickle: queues stay empty, pressure sits below the low watermark
    runner.add_thread_group(
        ThreadGroup("shap", 2, rampup_seconds=0.1, iterations=60,
                    think_time=0.05)
    )
    scaler = _autoscaler(
        runner,
        AutoscalePolicy(
            hi_queue=32.0, lo_queue=1.0, min_nodes=2,
            cooldown_seconds=0.2,
        ),
    )
    scaler.start()
    runner.run()
    drains = [d for d in scaler.decisions if d.action == "drain"]
    assert drains
    assert len(topology) == 2  # drained down to the floor, not below
    cons = runner.conservation()
    assert cons["observed"] == cons["appended"] == 120


def test_cooldown_spaces_scaling_actions():
    topology, runner = _cluster(4, concurrency=4)
    runner.add_thread_group(
        ThreadGroup("shap", 2, rampup_seconds=0.1, iterations=60,
                    think_time=0.05)
    )
    scaler = _autoscaler(
        runner,
        AutoscalePolicy(
            hi_queue=32.0, lo_queue=1.0, min_nodes=1,
            cooldown_seconds=0.5,
        ),
    )
    scaler.start()
    runner.run()
    times = [d.at for d in scaler.decisions]
    assert len(times) >= 2
    assert all(b - a >= 0.5 for a, b in zip(times, times[1:]))


def test_run_terminates_with_the_workload():
    """The tick must not keep an otherwise-drained heap alive forever."""
    topology, runner = _cluster(2, concurrency=4)
    runner.add_thread_group(
        ThreadGroup("shap", 2, rampup_seconds=0.1, iterations=5)
    )
    scaler = _autoscaler(runner, AutoscalePolicy(hi_queue=100.0))
    scaler.start()
    runner.run()
    assert not runner.sim._queue
    assert runner.sim.now < 60.0
