"""Tests for the AI sensors."""

import numpy as np
import pytest

from repro.core.sensors import (
    DataQualitySensor,
    ExplanationDriftSensor,
    ExplanationSensor,
    FairnessSensor,
    LimeExplanationSensor,
    ModelContext,
    PerformanceSensor,
    PrivacySensor,
    ResilienceSensor,
)
from repro.trust.properties import TrustProperty
from repro.trust.resilience import ResilienceReport


@pytest.fixture()
def context(trained_mlp, blobs):
    X, y = blobs
    gen = np.random.default_rng(0)
    return ModelContext(
        model=trained_mlp,
        X_train=X[:200],
        y_train=y[:200],
        X_test=X[200:],
        y_test=y[200:],
        sensitive=gen.integers(0, 2, size=len(y[200:])),
        model_version=3,
    )


class TestPerformanceSensor:
    def test_reading_fields(self, context):
        reading = PerformanceSensor(clock=lambda: 42.0).measure(context)
        assert reading.sensor == "performance"
        assert reading.property is TrustProperty.ACCURACY
        assert reading.timestamp == 42.0
        assert reading.model_version == 3
        assert 0.9 <= reading.value <= 1.0

    def test_details_contain_all_metrics(self, context):
        reading = PerformanceSensor().measure(context)
        assert set(reading.details) == {"accuracy", "precision", "recall", "f1"}

    def test_headline_metric_selectable(self, context):
        reading = PerformanceSensor(headline="recall").measure(context)
        assert reading.value == pytest.approx(reading.details["recall"])

    def test_invalid_headline_raises(self):
        with pytest.raises(ValueError):
            PerformanceSensor(headline="auc")

    def test_missing_model_raises(self):
        with pytest.raises(ValueError):
            PerformanceSensor().measure(ModelContext())


class TestDataQualitySensor:
    def test_clean_data_scores_one(self, context):
        reading = DataQualitySensor().measure(context)
        assert reading.value == 1.0
        assert reading.details["missing_fraction"] == 0.0

    def test_duplicates_penalised(self, trained_mlp):
        X = np.vstack([np.ones((5, 2)), np.zeros((5, 2))])
        ctx = ModelContext(model=trained_mlp, X_train=X)
        reading = DataQualitySensor().measure(ctx)
        assert reading.details["duplicate_fraction"] == pytest.approx(0.8)
        assert reading.value < 1.0

    def test_missing_values_penalised(self, trained_mlp):
        X = np.array([[1.0, np.nan], [2.0, 3.0]])
        ctx = ModelContext(model=trained_mlp, X_train=X)
        reading = DataQualitySensor().measure(ctx)
        assert reading.details["missing_fraction"] == pytest.approx(0.25)

    def test_requires_training_data(self):
        with pytest.raises(ValueError):
            DataQualitySensor().measure(ModelContext())


class TestFairnessSensor:
    def test_reading_in_range(self, context):
        reading = FairnessSensor().measure(context)
        assert 0.0 <= reading.value <= 1.0
        assert "dpd" in reading.details

    def test_requires_sensitive_attribute(self, context):
        context_no_groups = ModelContext(
            model=context.model, X_test=context.X_test
        )
        with pytest.raises(ValueError):
            FairnessSensor().measure(context_no_groups)


class TestResilienceSensor:
    def test_wraps_assessment(self, context):
        def assess(ctx):
            return ResilienceReport(kind="evasion", impact=0.3, complexity=37.9)

        reading = ResilienceSensor("evasion_probe", assess).measure(context)
        assert reading.property is TrustProperty.RESILIENCE
        assert reading.value == pytest.approx(0.7)
        assert reading.details["impact"] == 0.3
        assert reading.details["complexity"] == 37.9
        assert reading.details["kind_is_evasion"] == 1.0


class TestExplanationSensor:
    def test_details_hold_feature_importances(self, context):
        sensor = ExplanationSensor(
            n_instances=4, n_background=10, n_coalitions=32, class_index=1
        )
        reading = sensor.measure(context)
        assert reading.property is TrustProperty.ACCOUNTABILITY
        assert len(reading.details) == context.X_test.shape[1]
        assert 0.0 <= reading.value <= 1.0

    def test_feature_names_used(self, context):
        names = tuple(f"feat_{i}" for i in range(context.X_test.shape[1]))
        sensor = ExplanationSensor(
            n_instances=2, n_background=8, n_coalitions=32, feature_names=names
        )
        reading = sensor.measure(context)
        assert set(reading.details) == set(names)

    def test_requires_background(self, context):
        ctx = ModelContext(model=context.model, X_test=context.X_test)
        with pytest.raises(ValueError):
            ExplanationSensor().measure(ctx)


class TestExplanationDriftSensor:
    def test_reading(self, context):
        sensor = ExplanationDriftSensor(
            n_instances=8, n_background=10, n_coalitions=32, k=3, class_index=1
        )
        reading = sensor.measure(context)
        assert reading.property is TrustProperty.EXPLAINABILITY
        assert 0.0 < reading.value <= 1.0
        assert reading.details["dissimilarity"] >= 0.0

    def test_focus_label_filters(self, context):
        sensor = ExplanationDriftSensor(
            n_instances=6,
            n_background=10,
            n_coalitions=32,
            k=3,
            class_index=1,
            focus_label=1,
        )
        reading = sensor.measure(context)
        assert reading.value > 0.0

    def test_too_few_focus_instances_raises(self, context):
        tiny = ModelContext(
            model=context.model,
            X_train=context.X_train,
            X_test=context.X_test[:3],
            y_test=context.y_test[:3],
        )
        with pytest.raises(ValueError):
            ExplanationDriftSensor(k=5).measure(tiny)


class TestLimeExplanationSensor:
    def test_reading_fields(self, context):
        sensor = LimeExplanationSensor(n_instances=4, n_samples=100, class_index=1)
        reading = sensor.measure(context)
        assert reading.property is TrustProperty.ACCOUNTABILITY
        assert 0.0 <= reading.value <= 1.0
        assert len(reading.details) == context.X_test.shape[1]

    def test_feature_names(self, context):
        names = tuple(f"x{i}" for i in range(context.X_test.shape[1]))
        sensor = LimeExplanationSensor(
            n_instances=2, n_samples=100, feature_names=names
        )
        reading = sensor.measure(context)
        assert set(reading.details) == set(names)

    def test_requires_training_data(self, context):
        ctx = ModelContext(model=context.model, X_test=context.X_test)
        with pytest.raises(ValueError):
            LimeExplanationSensor().measure(ctx)


class TestPrivacySensor:
    def test_reading_fields(self, context):
        reading = PrivacySensor(n_samples=40).measure(context)
        assert reading.property is TrustProperty.PRIVACY
        assert 0.0 <= reading.value <= 1.0
        assert "membership_advantage" in reading.details

    def test_well_generalising_model_scores_high(self, context):
        reading = PrivacySensor(n_samples=60).measure(context)
        assert reading.value > 0.6

    def test_requires_data(self, context):
        with pytest.raises(ValueError):
            PrivacySensor().measure(ModelContext(model=context.model))

    def test_invalid_n_samples(self):
        with pytest.raises(ValueError):
            PrivacySensor(n_samples=1)


class TestImageExplanationSensor:
    @pytest.fixture()
    def image_context(self, shape_images):
        from repro.core.sensors import ImageExplanationSensor  # noqa: F401
        from repro.ml import MLPClassifier

        images, labels = shape_images
        X = images.reshape(len(images), -1)
        model = MLPClassifier(
            hidden_layers=(32,), n_epochs=30, learning_rate=0.01, seed=0
        ).fit(X, labels)

        def predict(batch):
            batch = np.asarray(batch)
            return model.predict_proba(batch.reshape(len(batch), -1))

        return ModelContext(
            model=model,
            extras={"images": images, "image_predict_fn": predict},
        )

    def test_reading(self, image_context):
        from repro.core.sensors import ImageExplanationSensor

        sensor = ImageExplanationSensor(n_images=2, window=4)
        reading = sensor.measure(image_context)
        assert 0.0 <= reading.value <= 1.0
        assert reading.details["n_images"] == 2.0

    def test_requires_images(self):
        from repro.core.sensors import ImageExplanationSensor

        with pytest.raises(ValueError):
            ImageExplanationSensor().measure(ModelContext())

    def test_rejects_flat_batch(self, image_context):
        from repro.core.sensors import ImageExplanationSensor

        bad = ModelContext(
            extras={
                "images": np.zeros((4, 16)),
                "image_predict_fn": image_context.extras["image_predict_fn"],
            }
        )
        with pytest.raises(ValueError):
            ImageExplanationSensor().measure(bad)


class TestSensorBasics:
    def test_empty_name_raises(self):
        with pytest.raises(ValueError):
            PerformanceSensor(name="")

    def test_value_clipped_to_unit_interval(self, context):
        def assess(ctx):
            return ResilienceReport(kind="evasion", impact=-0.5, complexity=0.0)

        reading = ResilienceSensor("weird", assess).measure(context)
        assert reading.value == 1.0
