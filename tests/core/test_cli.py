"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_capacity_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.route == "shap"
        assert args.threads == 100


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "SPATIAL" in out

    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "neural_networks" in out
        assert "label_flipping" in out

    def test_capacity(self, capsys):
        assert main(["capacity", "--route", "shap", "--threads", "10",
                     "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "avg=" in out
        assert "err=" in out

    def test_capacity_unknown_route(self, capsys):
        assert main(["capacity", "--route", "nope"]) == 2
        assert "unknown route" in capsys.readouterr().err

    def test_baselines_small(self, capsys):
        assert main(["baselines", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        for name in ("LR", "DT", "RF", "MLP", "DNN"):
            assert name in out

    def test_poison_small(self, capsys):
        assert main(["poison", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        assert "p=  0%" in out
        assert "p= 50%" in out

    def test_dashboard_demo(self, capsys):
        assert main(["dashboard-demo", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        assert "AI DASHBOARD" in out
        assert "trust score" in out

    def test_model_card(self, capsys):
        assert main(["model-card", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        assert "# Model card — fall-detection-demo" in out
        assert "## Evaluation" in out
