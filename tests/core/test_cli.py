"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.telemetry import TelemetryEvent, WriteAheadLog


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_capacity_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.route == "shap"
        assert args.threads == 100


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "SPATIAL" in out

    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "neural_networks" in out
        assert "label_flipping" in out

    def test_capacity(self, capsys):
        assert main(["capacity", "--route", "shap", "--threads", "10",
                     "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "avg=" in out
        assert "err=" in out

    def test_capacity_unknown_route(self, capsys):
        assert main(["capacity", "--route", "nope"]) == 2
        assert "unknown route" in capsys.readouterr().err

    def test_capacity_records_engine(self, capsys):
        assert main(["capacity", "--engine", "records", "--threads", "10",
                     "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "engine=records" in out
        assert "avg=" in out

    def test_capacity_engines_agree_on_counts(self, capsys):
        assert main(["capacity", "--threads", "10", "--iterations", "3"]) == 0
        columnar = capsys.readouterr().out
        assert main(["capacity", "--engine", "records", "--threads", "10",
                     "--iterations", "3"]) == 0
        records = capsys.readouterr().out
        assert "samples=30" in columnar and "samples=30" in records
        assert "engine=columnar" in columnar
        assert "events/s" in columnar  # throughput line is columnar-only

    def test_capacity_open_loop_ring(self, capsys):
        assert main(["capacity", "--open-loop", "50", "--requests", "200",
                     "--no-retain"]) == 0
        out = capsys.readouterr().out
        assert "open-loop rate=50rps requests=200" in out
        assert "(ring)" in out
        assert "samples=200" in out
        assert "recycled" in out

    def test_capacity_open_loop_needs_columnar(self, capsys):
        assert main(["capacity", "--engine", "records",
                     "--open-loop", "50"]) == 2
        assert "--engine columnar" in capsys.readouterr().err

    def test_baselines_small(self, capsys):
        assert main(["baselines", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        for name in ("LR", "DT", "RF", "MLP", "DNN"):
            assert name in out

    def test_poison_small(self, capsys):
        assert main(["poison", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        assert "p=  0%" in out
        assert "p= 50%" in out

    def test_dashboard_demo(self, capsys):
        assert main(["dashboard-demo", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        assert "AI DASHBOARD" in out
        assert "trust score" in out

    def test_model_card(self, capsys):
        assert main(["model-card", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        assert "# Model card — fall-detection-demo" in out
        assert "## Evaluation" in out


@pytest.fixture()
def wal_dir(tmp_path):
    path = tmp_path / "wal"
    with WriteAheadLog(path) as wal:
        for i in range(30):
            wal.append(
                TelemetryEvent(
                    source="perf", value=0.9, timestamp=float(i)
                )
            )
            wal.append(
                TelemetryEvent(
                    source="fair", value=0.3, timestamp=float(i)
                )
            )
    return path


class TestTelemetryCommand:
    def test_missing_wal_dir_exits_2(self, tmp_path, capsys):
        assert main(["telemetry", "--wal", str(tmp_path / "empty")]) == 2
        assert "no WAL segments" in capsys.readouterr().err

    def test_report_covers_rollups_and_ranking(self, wal_dir, capsys):
        assert main(["telemetry", "--wal", str(wal_dir)]) == 0
        out = capsys.readouterr().out
        assert "60 events" in out
        assert "per-source rollups" in out
        assert "perf" in out and "fair" in out
        # 'fair' is consistently worse, so it leads the worst-of ranking
        worst = out.split("worst sources")[1]
        assert worst.index("fair") < worst.index("perf")

    def test_tail_prints_last_events(self, wal_dir, capsys):
        assert main(["telemetry", "--wal", str(wal_dir), "--tail", "3"]) == 0
        out = capsys.readouterr().out
        assert "last 3 event(s):" in out
        assert "t=29" in out

    def test_json_mode(self, wal_dir, capsys):
        assert main(["telemetry", "--wal", str(wal_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 60
        assert payload["sources"]["perf"]["count"] == 30
        assert payload["worst"][0][0] == "fair"

    def test_wal_flag_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_invalid_window_exits_2(self, wal_dir, capsys):
        code = main(["telemetry", "--wal", str(wal_dir), "--window", "0"])
        assert code == 2
        assert "invalid rollup parameters" in capsys.readouterr().err

    def test_source_filter_restricts_the_table(self, wal_dir, capsys):
        code = main(
            ["telemetry", "--wal", str(wal_dir), "--source", "perf", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload["sources"]) == ["perf"]

    def test_unknown_source_exits_2(self, wal_dir, capsys):
        code = main(["telemetry", "--wal", str(wal_dir), "--source", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown source" in err
        assert "perf" in err  # the error lists what exists

    def test_last_restricts_to_the_trailing_range(self, wal_dir, capsys):
        code = main(
            ["telemetry", "--wal", str(wal_dir), "--last", "5", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # 5 trailing 1s windows out of the 30 ingested per source
        assert payload["sources"]["perf"]["count"] == 5
        assert payload["last_seconds"] == 5.0

    def test_last_shows_in_the_text_report(self, wal_dir, capsys):
        assert main(["telemetry", "--wal", str(wal_dir), "--last", "5"]) == 0
        assert "trailing 5s" in capsys.readouterr().out

    def test_nonpositive_last_exits_2(self, wal_dir, capsys):
        assert main(["telemetry", "--wal", str(wal_dir), "--last", "0"]) == 2
        assert "--last" in capsys.readouterr().err


class TestSloCommand:
    def test_json_covers_alerts_incidents_and_status(self, capsys):
        assert main(["slo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faulted_node"] == "node-5"
        assert payload["errors"] == 0
        firing = [a for a in payload["alerts"] if a["state"] == "firing"]
        assert any(
            a["slo"] == "shap-latency" and a["severity"] == "page"
            for a in firing
        )
        assert payload["incidents"]
        assert payload["incidents"][0]["incident_id"] == "INC-0001"
        assert {s["slo"] for s in payload["status"]} == {
            "sensor-health", "shap-availability", "shap-latency",
        }
        assert "suspect node: node-5" in payload["report"]

    def test_watch_and_report_render_the_drill(self, capsys):
        code = main(["slo", "--watch", "--report", "--audience", "auditor"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alert stream:" in out
        assert "FIRING" in out and "resolved" in out
        assert "AI DASHBOARD" in out
        assert "last incident: INC-" in out
        assert "REQUIRES REVIEW" in out  # the auditor narrative

    def test_definitions_file_overrides_the_drill_catalogue(
        self, tmp_path, capsys
    ):
        from repro.slo import drill_definitions

        catalogue = [d.to_dict() for d in drill_definitions("shap")]
        for entry in catalogue:
            entry["name"] = "custom-" + entry["name"]
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(catalogue))
        code = main(["slo", "--definitions", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(s["slo"].startswith("custom-") for s in payload["status"])

    def test_bad_definitions_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "slo.json"
        path.write_text('{"not": "a list"}')
        assert main(["slo", "--definitions", str(path)]) == 2
        assert "bad SLO definitions" in capsys.readouterr().err


class TestLintCommand:
    def test_tree_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "fstring-placeholder" in out
        assert "lock-discipline" in out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        pkg = tmp_path / "ml"
        pkg.mkdir()
        (pkg / "bad.py").write_text('x = f"oops"\n', encoding="utf-8")
        assert main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ml/bad.py:1: [fstring-placeholder]" in out

    def test_layer_violation_exits_nonzero(self, tmp_path, capsys):
        pkg = tmp_path / "ml"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "from repro.gateway import ApiGateway\n", encoding="utf-8"
        )
        assert main(["lint", "--root", str(tmp_path)]) == 1
        assert "layer-contract" in capsys.readouterr().out

    def test_missing_root_exits_2(self, tmp_path, capsys):
        assert main(["lint", "--root", str(tmp_path / "nope")]) == 2
        assert "lint failed" in capsys.readouterr().err

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--rule", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_shape(self, tmp_path, capsys):
        pkg = tmp_path / "ml"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            'x = f"oops"\ndef f(y=[]): pass\n', encoding="utf-8"
        )
        assert main(["lint", "--root", str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["modules"] == 1
        rules = [f["rule"] for f in payload["findings"]]
        assert rules == ["fstring-placeholder", "mutable-default"]
        first = payload["findings"][0]
        assert set(first) == {
            "path",
            "line",
            "rule",
            "message",
            "severity",
            "suppressed",
        }
        assert first["path"] == "ml/bad.py" and first["line"] == 1
        assert first["suppressed"] is False

    def test_json_on_real_tree_reports_contract_edges(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["modules"] > 20
        assert ["core", "telemetry"] in payload["package_edges"]
        assert "fstring-placeholder" in payload["rules"]

    def test_rule_subset(self, tmp_path, capsys):
        pkg = tmp_path / "ml"
        pkg.mkdir()
        (pkg / "bad.py").write_text('x = f"oops"\n', encoding="utf-8")
        code = main(
            [
                "lint",
                "--root",
                str(tmp_path),
                "--rule",
                "mutable-default",
                "--no-contracts",
            ]
        )
        assert code == 0  # the f-string rule was not selected


class TestLintWholeProgram:
    """Call graph, taint explanations, incremental mode, strict baseline."""

    GOLDEN = Path(__file__).parent / "golden" / "lint_report.json"

    FIXTURE = {
        "telemetry/clockutil.py": (
            "import time\n\n\ndef wall_now():\n    return time.time()\n"
        ),
        "ml/model.py": (
            "from repro.telemetry.clockutil import wall_now\n\n\n"
            "def fit(X):\n"
            "    started = wall_now()\n"
            '    label = f"fit"\n'
            "    return X, started, label\n"
        ),
        "tracing/spanner.py": (
            "def handle(tracer, req):\n"
            "    span = tracer.start_span('handle')\n"
            "    if req is None:\n"
            "        return None\n"
            "    span.end()\n"
            "    return req\n"
        ),
        "gateway/ok.py": "def ping():\n    return 'pong'\n",
    }

    BASELINE = {
        "version": 1,
        "suppressions": [
            {
                "rule": "layer-contract",
                "path": "ml/model.py",
                "reason": (
                    "fixture: ml deliberately reaches into telemetry "
                    "to exercise the taint chain"
                ),
            }
        ],
    }

    def build_fixture(self, tmp_path):
        root = tmp_path / "src"
        for relpath, source in self.FIXTURE.items():
            path = root / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self.BASELINE), encoding="utf-8")
        return root, baseline, tmp_path / "cache.json"

    def lint(self, root, baseline, cache, *extra):
        return main(
            [
                "lint",
                "--root",
                str(root),
                "--baseline",
                str(baseline),
                "--cache",
                str(cache),
                *extra,
            ]
        )

    def test_json_report_matches_golden_file(self, tmp_path, capsys):
        root, baseline, cache = self.build_fixture(tmp_path)
        assert self.lint(root, baseline, cache, "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        payload["root"] = "<ROOT>"
        payload["baseline"] = "<BASELINE>"
        expected = json.loads(self.GOLDEN.read_text(encoding="utf-8"))
        assert payload == expected

    def test_changed_run_replays_from_cache(self, tmp_path, capsys):
        root, baseline, cache = self.build_fixture(tmp_path)
        self.lint(root, baseline, cache)
        capsys.readouterr()
        assert self.lint(root, baseline, cache, "--changed", "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["analyzed_modules"] == 0
        assert payload["reused_modules"] == len(self.FIXTURE)
        # replayed findings are identical to the cold run's
        rules = [f["rule"] for f in payload["findings"]]
        assert "wallclock-taint" in rules and "span-leak" in rules

    def test_jobs_flag_matches_serial_findings(self, tmp_path, capsys):
        root, baseline, cache = self.build_fixture(tmp_path)
        assert self.lint(root, baseline, cache, "--json") == 1
        serial = json.loads(capsys.readouterr().out)
        cache.unlink()
        code = self.lint(root, baseline, cache, "--jobs", "2", "--json")
        assert code == 1
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["findings"] == serial["findings"]

    def test_explain_renders_cross_module_chain(self, tmp_path, capsys):
        root, baseline, cache = self.build_fixture(tmp_path)
        assert self.lint(root, baseline, cache, "--explain", "wallclock-taint") == 1
        out = capsys.readouterr().out
        assert "ml.model.fit" in out
        assert "telemetry.clockutil.wall_now" in out
        assert "time.time  [sink]" in out

    def test_graph_dot_export(self, tmp_path, capsys):
        root, baseline, cache = self.build_fixture(tmp_path)
        assert self.lint(root, baseline, cache, "--graph", "dot") == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph callgraph {")
        assert '"ml.model.fit" -> "telemetry.clockutil.wall_now";' in out

    def test_strict_baseline_fails_on_stale_entry(self, tmp_path, capsys):
        root, baseline, cache = self.build_fixture(tmp_path)
        payload = dict(self.BASELINE)
        payload["suppressions"] = payload["suppressions"] + [
            {
                "rule": "mutable-default",
                "path": "gateway/ok.py",
                "reason": "long since fixed",
            }
        ]
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        # lenient mode reports the stale entry but still exits on findings
        assert self.lint(root, baseline, cache) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        # strict mode fails even once real findings are gone
        for relpath in ("ml/model.py", "tracing/spanner.py"):
            (root / relpath).write_text("x = 1\n", encoding="utf-8")
        assert self.lint(root, baseline, cache) == 0
        capsys.readouterr()
        code = self.lint(root, baseline, cache, "--strict-baseline")
        assert code == 1
        assert "strict baseline" in capsys.readouterr().out

    def test_repo_baseline_survives_strict_mode(self, capsys):
        assert main(["lint", "--strict-baseline"]) == 0
        assert "stale" not in capsys.readouterr().out


class TestTelemetryCorruption:
    def test_midstream_corruption_exits_2(self, wal_dir, capsys):
        segment = next(wal_dir.glob("*.jsonl"))
        lines = segment.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[5] = lines[5].replace('"value":', '"valXe":', 1)
        segment.write_text("".join(lines), encoding="utf-8")
        code = main(["telemetry", "--wal", str(wal_dir)])
        assert code == 2
        assert "damaged mid-stream" in capsys.readouterr().err


class TestTraceCommand:
    ARGS = ["trace", "--threads", "4", "--iterations", "2", "--no-probe"]

    def test_text_report_has_all_views(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "traced capacity run" in out
        assert "slowest trace" in out
        assert "critical path" in out
        assert "per-span latency" in out
        assert "gateway.request" in out
        assert "0 open" in out

    def test_single_view_selection(self, capsys):
        assert main(self.ARGS + ["--view", "critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "per-span latency" not in out

    def test_json_mode(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_traces"] == 8
        assert payload["report"]["samples"] == 8
        slowest = payload["slowest_trace"]
        assert sum(seg["ms"] for seg in slowest["critical_path"]) == pytest.approx(
            slowest["duration_ms"]
        )
        assert payload["slowest_window"]["resolved"] is True
        assert payload["collector"]["traces"] == 8
        names = {row["name"] for row in payload["span_latency"]}
        assert "service.process" in names

    def test_probe_adds_sensor_spans(self, capsys):
        assert main(["trace", "--threads", "2", "--iterations", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in payload["span_latency"]}
        assert "sensor.poll" in names

    def test_unknown_route_exits_2(self, capsys):
        assert main(["trace", "--route", "nope"]) == 2
        assert "trace scenario failed" in capsys.readouterr().err
