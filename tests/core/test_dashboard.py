"""Tests for the AI dashboard: series, alerts, panels, export."""

import json

import pytest

from repro.core.dashboard import AIDashboard, AlertRule
from repro.core.sensors import SensorReading
from repro.trust.properties import TrustProperty


def reading(sensor="performance", value=0.9, t=0.0, prop=TrustProperty.ACCURACY, v=1):
    return SensorReading(
        sensor=sensor, property=prop, value=value, timestamp=t, model_version=v
    )


class TestSeries:
    def test_add_and_latest(self):
        dash = AIDashboard()
        dash.add_reading(reading(value=0.8, t=1.0))
        dash.add_reading(reading(value=0.7, t=2.0))
        assert dash.latest("performance").value == 0.7
        assert dash.values("performance") == [0.8, 0.7]

    def test_sensors_sorted(self):
        dash = AIDashboard()
        dash.add_reading(reading(sensor="zeta"))
        dash.add_reading(reading(sensor="alpha"))
        assert dash.sensors == ["alpha", "zeta"]

    def test_unknown_sensor_raises(self):
        with pytest.raises(KeyError):
            AIDashboard().series("ghost")

    def test_history_limit_evicts_oldest(self):
        dash = AIDashboard(history_limit=3)
        for i in range(5):
            dash.add_reading(reading(value=i / 10, t=float(i)))
        assert dash.values("performance") == [0.2, 0.3, 0.4]

    def test_invalid_history_limit(self):
        with pytest.raises(ValueError):
            AIDashboard(history_limit=0)


class TestAlerts:
    def test_below_rule_triggers(self):
        dash = AIDashboard()
        dash.add_rule(AlertRule(sensor="performance", threshold=0.8))
        dash.add_reading(reading(value=0.75))
        assert len(dash.alerts()) == 1

    def test_below_rule_does_not_trigger_above(self):
        dash = AIDashboard()
        dash.add_rule(AlertRule(sensor="performance", threshold=0.8))
        dash.add_reading(reading(value=0.85))
        assert dash.alerts() == []

    def test_above_rule(self):
        dash = AIDashboard()
        dash.add_rule(
            AlertRule(sensor="drift", threshold=0.5, direction="above")
        )
        dash.add_reading(reading(sensor="drift", value=0.9))
        assert len(dash.alerts()) == 1

    def test_rule_only_matches_its_sensor(self):
        dash = AIDashboard()
        dash.add_rule(AlertRule(sensor="performance", threshold=0.8))
        dash.add_reading(reading(sensor="other", value=0.1))
        assert dash.alerts() == []

    def test_invalid_direction_raises(self):
        with pytest.raises(ValueError):
            AlertRule(sensor="x", threshold=0.5, direction="sideways")

    def test_subscriber_notified(self):
        dash = AIDashboard()
        seen = []
        dash.subscribe(seen.append)
        dash.add_rule(AlertRule(sensor="performance", threshold=0.8))
        dash.add_reading(reading(value=0.5))
        assert len(seen) == 1
        assert "fell below" in seen[0].summary

    def test_acknowledge_all(self):
        dash = AIDashboard()
        dash.add_rule(AlertRule(sensor="performance", threshold=0.9))
        dash.add_reading(reading(value=0.5))
        dash.add_reading(reading(value=0.6))
        assert dash.acknowledge_all() == 2
        assert dash.alerts() == []
        assert len(dash.alerts(include_acknowledged=True)) == 2

    def test_alert_message_included(self):
        dash = AIDashboard()
        dash.add_rule(
            AlertRule(
                sensor="performance",
                threshold=0.9,
                message="possible poisoning",
            )
        )
        dash.add_reading(reading(value=0.5))
        assert "possible poisoning" in dash.alerts()[0].summary


class TestPanels:
    def test_trust_panel_aggregates_latest_by_property(self):
        dash = AIDashboard()
        dash.add_reading(reading(sensor="perf", value=0.9))
        dash.add_reading(
            reading(sensor="fair", value=0.5, prop=TrustProperty.FAIRNESS)
        )
        score = dash.trust_panel()
        assert score.value == pytest.approx(0.7)
        assert score.per_property[TrustProperty.FAIRNESS] == 0.5

    def test_trust_panel_averages_same_property_sensors(self):
        dash = AIDashboard()
        dash.add_reading(reading(sensor="a", value=1.0))
        dash.add_reading(reading(sensor="b", value=0.0))
        score = dash.trust_panel()
        assert score.per_property[TrustProperty.ACCURACY] == pytest.approx(0.5)

    def test_drift_negative_on_degradation(self):
        dash = AIDashboard()
        for v in (0.9, 0.9, 0.9, 0.5, 0.5, 0.5):
            dash.add_reading(reading(value=v))
        assert dash.drift("performance", window=3) == pytest.approx(-0.4)

    def test_drift_zero_for_single_reading(self):
        dash = AIDashboard()
        dash.add_reading(reading())
        assert dash.drift("performance") == 0.0


class TestExport:
    def test_json_roundtrip(self):
        dash = AIDashboard()
        dash.add_rule(AlertRule(sensor="performance", threshold=0.95))
        dash.add_reading(reading(value=0.9, t=5.0, v=2))
        payload = json.loads(dash.to_json())
        assert payload["sensors"]["performance"][0]["value"] == 0.9
        assert payload["sensors"]["performance"][0]["model_version"] == 2
        assert payload["alerts"][0]["threshold"] == 0.95

    def test_render_text_contains_sensors_and_alerts(self):
        dash = AIDashboard()
        dash.add_rule(AlertRule(sensor="performance", threshold=0.95))
        dash.add_reading(reading(value=0.9))
        text = dash.render_text()
        assert "performance" in text
        assert "alerts: 1 pending" in text

    def test_render_text_trend_arrows(self):
        dash = AIDashboard()
        for v in (0.2, 0.2, 0.9, 0.9):
            dash.add_reading(reading(value=v))
        assert "↑" in dash.render_text()


class TestSloStrip:
    """The SLO provider feed: duck-typed stand-ins, no slo import needed."""

    class Summary:
        def __init__(self, slo, source, firing=()):
            self.slo = slo
            self.source = source
            self.budget_remaining = 0.42
            self.short_burn = 1.5
            self.long_burn = 0.9
            self.firing_rules = tuple(firing)

    def test_render_includes_budget_burns_and_last_incident(self):
        dash = AIDashboard()
        dash.set_slo_provider(
            lambda: [self.Summary("route-latency", "shap@node-1")],
            lambda: "INC-0002",
        )
        text = dash.render_text()
        assert "SLO route-latency/shap@node-1" in text
        assert "budget  42.0%" in text
        assert "burn 1.5x/0.9x" in text
        assert "ok" in text
        assert "last incident: INC-0002" in text

    def test_firing_rules_replace_the_ok_marker(self):
        dash = AIDashboard()
        dash.set_slo_provider(
            lambda: [
                self.Summary("avail", "ok:shap", firing=("fast", "slow"))
            ]
        )
        text = dash.render_text()
        assert "FIRING:fast,slow" in text
        assert "last incident: (none)" in text

    def test_json_export_carries_the_slo_block(self):
        dash = AIDashboard()
        dash.set_slo_provider(
            lambda: [self.Summary("avail", "ok:shap")], lambda: "INC-0009"
        )
        payload = json.loads(dash.to_json())
        objective = payload["slo"]["objectives"][0]
        assert objective["slo"] == "avail"
        assert objective["budget_remaining"] == 0.42
        assert objective["firing"] == []
        assert payload["slo"]["last_incident"] == "INC-0009"

    def test_no_provider_means_no_slo_surface(self):
        dash = AIDashboard()
        assert "slo" not in json.loads(dash.to_json())
        assert "SLO" not in dash.render_text()


class TestServingProvider:
    """The serving feed: plain dicts in either runner's summary shape."""

    CAPACITY_SHAPE = {
        "shap": {
            "batches": 40,
            "rows_batched": 100,
            "mean_batch": 2.5,
            "shed_rows": 3,
            "cache": {"hits": 60.0, "misses": 40.0, "hit_rate": 0.6},
            "cache_hit_rate": 0.6,
        }
    }

    CLUSTER_SHAPE = {
        "shap": {
            "nodes": {
                "node-1": {"batches": 10, "rows_batched": 30, "shed_rows": 1},
                "node-2": {"batches": 10, "rows_batched": 20, "shed_rows": 0},
            },
            "cache": {"hits": 5.0, "misses": 5.0, "hit_rate": 0.5},
            "cache_hit_rate": 0.5,
        },
        "_totals": {"shed_requests": 1, "cache_hits": 5},
    }

    def test_render_includes_batches_cache_and_shed(self):
        dash = AIDashboard()
        dash.set_serving_provider(lambda: self.CAPACITY_SHAPE)
        text = dash.render_text()
        assert "SERVE shap" in text
        assert "batches    40" in text
        assert "cache  60.0%" in text
        assert "shed 3" in text

    def test_cluster_shape_aggregates_over_nodes(self):
        dash = AIDashboard()
        dash.set_serving_provider(lambda: self.CLUSTER_SHAPE)
        payload = json.loads(dash.to_json())
        row = payload["serving"]["routes"][0]
        assert row["route"] == "shap"
        assert row["batches"] == 20
        assert row["rows_batched"] == 50
        assert row["mean_batch"] == 2.5
        assert row["shed_rows"] == 1
        assert row["cache_hit_rate"] == 0.5

    def test_totals_entry_is_not_a_route(self):
        dash = AIDashboard()
        dash.set_serving_provider(lambda: self.CLUSTER_SHAPE)
        payload = json.loads(dash.to_json())
        assert [r["route"] for r in payload["serving"]["routes"]] == ["shap"]

    def test_no_provider_means_no_serving_surface(self):
        dash = AIDashboard()
        assert "serving" not in json.loads(dash.to_json())
        assert "SERVE" not in dash.render_text()
