"""Tracing + per-sensor attribution in monitoring rounds (ISSUE satellite).

Every round must account for its own latency sensor-by-sensor: a
``monitor.round`` span with one ``sensor.poll`` child per sensor,
wall-clock ``timings`` on the round record, error flags when a sensor
raises, and exemplar labels on every published event.
"""

import pytest

from repro.core.monitor import ContinuousMonitor
from repro.core.registry import PolledReading, SensorRegistry
from repro.core.sensors import (
    AISensor,
    DataQualitySensor,
    ModelContext,
    PerformanceSensor,
)
from repro.telemetry.events import SPAN_ID_LABEL, TRACE_ID_LABEL
from repro.tracing import STATUS_ERROR, TraceCollector, Tracer
from repro.trust.properties import TrustProperty


class BrokenSensor(AISensor):
    """Always raises: exercises the fault-isolation + error-span path."""

    property = TrustProperty.ROBUSTNESS

    def __init__(self):
        super().__init__(name="broken", clock=lambda: 0.0)

    def measure(self, context):
        raise RuntimeError("probe offline")


@pytest.fixture()
def traced_monitor(trained_mlp, blobs):
    X, y = blobs
    registry = SensorRegistry()
    registry.register(PerformanceSensor(clock=lambda: 0.0))
    registry.register(DataQualitySensor(clock=lambda: 0.0))

    def provider():
        return ModelContext(
            model=trained_mlp,
            X_train=X,
            y_train=y,
            X_test=X[:40],
            y_test=y[:40],
            model_version=1,
        )

    collector = TraceCollector()
    clock = {"now": 0.0}
    tracer = Tracer(clock=lambda: clock["now"], collector=collector, seed=0)
    monitor = ContinuousMonitor(
        registry, None, provider, tracer=tracer
    )
    return monitor, registry, tracer, collector


class TestRoundSpans:
    def test_round_span_with_one_child_per_sensor(self, traced_monitor):
        monitor, _, tracer, collector = traced_monitor
        record = monitor.poll_once()
        assert record.trace_id is not None
        tree = collector.get(record.trace_id)
        assert tree.root.name == "monitor.round"
        polls = tree.children(tree.root)
        assert [s.name for s in polls] == ["sensor.poll", "sensor.poll"]
        assert {s.attributes["sensor"] for s in polls} == {
            "performance",
            "data_quality",
        }
        assert tree.root.attributes["trigger"] == "scheduled"
        assert tree.root.attributes["n_sensors"] == 2.0
        assert tracer.active_spans == 0

    def test_per_sensor_timings_recorded(self, traced_monitor):
        monitor, _, _, collector = traced_monitor
        record = monitor.poll_once()
        assert set(record.timings) == {"performance", "data_quality"}
        assert all(t >= 0.0 for t in record.timings.values())
        assert record.duration_ms >= max(record.timings.values())
        tree = collector.get(record.trace_id)
        for span in tree.children(tree.root):
            assert span.attributes["elapsed_ms"] >= 0.0
        assert tree.root.attributes["duration_ms"] == record.duration_ms

    def test_each_round_is_its_own_trace(self, traced_monitor):
        monitor, _, _, collector = traced_monitor
        first, second = monitor.run(2)
        assert first.trace_id != second.trace_id
        assert collector.get(second.trace_id).root.attributes["round"] == 1.0

    def test_events_carry_sensor_span_exemplars(self, traced_monitor):
        monitor, _, _, collector = traced_monitor
        seen = []
        monitor.bus.subscribe("tap", callback=seen.append)
        record = monitor.poll_once()
        monitor.telemetry.pump()
        assert len(seen) == 2
        tree = collector.get(record.trace_id)
        poll_span_ids = {
            s.span_id for s in tree.children(tree.root)
        }
        for event in seen:
            assert event.labels[TRACE_ID_LABEL] == record.trace_id
            assert event.labels[SPAN_ID_LABEL] in poll_span_ids
            assert event.attrs["elapsed_ms"] == record.timings[event.source]


class TestSensorErrors:
    def test_raising_sensor_flags_round_and_span(self, traced_monitor):
        monitor, registry, tracer, collector = traced_monitor
        registry.register(BrokenSensor())
        record = monitor.poll_once()
        assert record.errors == ["broken"]
        assert len(record.readings) == 3  # fault-isolated: round completes
        assert "broken" in record.timings
        tree = collector.get(record.trace_id)
        assert tree.root.status == STATUS_ERROR
        assert "broken" in tree.root.status_message
        failed = next(
            s
            for s in tree.children(tree.root)
            if s.attributes["sensor"] == "broken"
        )
        assert failed.status == STATUS_ERROR
        assert "RuntimeError" in failed.status_message
        assert tracer.active_spans == 0

    def test_healthy_round_has_no_errors(self, traced_monitor):
        monitor, _, _, collector = traced_monitor
        record = monitor.poll_once()
        assert record.errors == []
        assert collector.get(record.trace_id).ok


class TestUntracedRounds:
    def test_default_monitor_still_times_sensors(self, trained_mlp, blobs):
        X, y = blobs
        registry = SensorRegistry()
        registry.register(DataQualitySensor(clock=lambda: 0.0))

        def provider():
            return ModelContext(model=trained_mlp, X_train=X, y_train=y)

        monitor = ContinuousMonitor(registry, None, provider)
        record = monitor.poll_once()
        assert record.trace_id is None
        assert set(record.timings) == {"data_quality"}
        assert record.duration_ms > 0.0

    def test_poll_spans_returns_envelopes_untraced(self, trained_mlp, blobs):
        X, y = blobs
        registry = SensorRegistry()
        registry.register(DataQualitySensor(clock=lambda: 0.0))
        context = ModelContext(model=trained_mlp, X_train=X, y_train=y)
        [polled] = registry.poll_spans(context)
        assert isinstance(polled, PolledReading)
        assert polled.reading.sensor == "data_quality"
        assert not polled.span.is_recording
        assert polled.elapsed_ms >= 0.0
