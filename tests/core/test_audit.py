"""Tests for audit-trail verification of dashboard exports."""

import json

import pytest

from repro.core import (
    AIDashboard,
    AlertRule,
    SensorReading,
    verify_export,
)
from repro.core.audit import load_export
from repro.trust.properties import TrustProperty


def reading(value=0.9, t=1.0, v=1, sensor="performance"):
    return SensorReading(
        sensor=sensor,
        property=TrustProperty.ACCURACY,
        value=value,
        timestamp=t,
        model_version=v,
    )


def healthy_export():
    dash = AIDashboard()
    dash.add_rule(AlertRule(sensor="performance", threshold=0.8))
    dash.add_reading(reading(0.9, t=1.0, v=1))
    dash.add_reading(reading(0.7, t=2.0, v=2))  # triggers the alert
    return dash.to_json()


class TestLoadExport:
    def test_valid_export_loads(self):
        data = load_export(healthy_export())
        assert "performance" in data["sensors"]

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            load_export(json.dumps({"not": "an export"}))


class TestVerifyExport:
    def test_healthy_export_passes(self):
        report = verify_export(healthy_export())
        assert report.passed
        assert report.n_sensors == 1
        assert report.n_readings == 2
        assert report.n_alerts == 1

    def test_out_of_range_value_flagged(self):
        data = load_export(healthy_export())
        data["sensors"]["performance"][0]["value"] = 1.7
        report = verify_export(json.dumps(data))
        assert not report.passed
        assert any("outside" in f.message for f in report.findings)

    def test_unknown_property_flagged(self):
        data = load_export(healthy_export())
        data["sensors"]["performance"][0]["property"] = "vibes"
        report = verify_export(json.dumps(data))
        assert any("unknown property" in f.message for f in report.findings)

    def test_time_regression_flagged(self):
        data = load_export(healthy_export())
        data["sensors"]["performance"][1]["timestamp"] = 0.5
        report = verify_export(json.dumps(data))
        assert any("regressed" in f.message for f in report.findings)
        assert not report.passed

    def test_version_rollback_is_warning_only(self):
        data = load_export(healthy_export())
        data["sensors"]["performance"][1]["model_version"] = 0
        report = verify_export(json.dumps(data))
        assert report.passed  # warnings don't fail the audit
        assert any(f.severity == "warning" for f in report.findings)

    def test_orphan_alert_flagged(self):
        data = load_export(healthy_export())
        data["alerts"][0]["sensor"] = "ghost"
        report = verify_export(json.dumps(data))
        assert any("no readings" in f.message for f in report.findings)

    def test_inconsistent_alert_flagged(self):
        data = load_export(healthy_export())
        data["alerts"][0]["value"] = 0.95  # does not violate threshold 0.8
        report = verify_export(json.dumps(data))
        assert any("does not violate" in f.message for f in report.findings)

    def test_empty_dashboard_export(self):
        report = verify_export(AIDashboard().to_json())
        assert report.passed
        assert report.n_readings == 0
