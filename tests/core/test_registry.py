"""Tests for the sensor registry and pipeline instrumentation."""

import numpy as np
import pytest

from repro.core.registry import SensorRegistry
from repro.core.sensors import (
    DataQualitySensor,
    ModelContext,
    PerformanceSensor,
)
from repro.ml import DecisionTreeClassifier
from repro.ml.pipeline import AIPipeline, StageKind
from repro.trust.properties import TrustProperty


@pytest.fixture()
def registry():
    reg = SensorRegistry()
    reg.register(PerformanceSensor(clock=lambda: 0.0))
    reg.register(DataQualitySensor(clock=lambda: 0.0))
    return reg


@pytest.fixture()
def context(trained_mlp, blobs):
    X, y = blobs
    return ModelContext(
        model=trained_mlp, X_train=X, y_train=y, X_test=X[:50], y_test=y[:50]
    )


class TestRegistryBasics:
    def test_register_and_get(self, registry):
        assert registry.get("performance").name == "performance"

    def test_duplicate_name_raises(self, registry):
        with pytest.raises(ValueError):
            registry.register(PerformanceSensor())

    def test_unregister(self, registry):
        registry.unregister("performance")
        with pytest.raises(KeyError):
            registry.get("performance")

    def test_unregister_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.unregister("nope")

    def test_properties_covered(self, registry):
        assert registry.properties_covered == frozenset(
            {TrustProperty.ACCURACY, TrustProperty.VALIDITY}
        )

    def test_poll_returns_one_reading_per_sensor(self, registry, context):
        readings = registry.poll(context)
        assert len(readings) == 2
        assert {r.sensor for r in readings} == {"performance", "data_quality"}

    def test_poll_one(self, registry, context):
        reading = registry.poll_one("data_quality", context)
        assert reading.sensor == "data_quality"


class TestFaultIsolation:
    class ExplodingSensor(PerformanceSensor):
        def __init__(self):
            super().__init__(name="exploding", clock=lambda: 0.0)

        def measure(self, context):
            raise RuntimeError("probe hardware on fire")

    def test_one_raising_sensor_does_not_abort_the_round(
        self, registry, context
    ):
        registry.register(self.ExplodingSensor())
        readings = registry.poll(context)
        assert len(readings) == 3  # round completed despite the failure
        by_name = {r.sensor: r for r in readings}
        assert by_name["performance"].error is None
        assert by_name["performance"].value > 0.5  # healthy sensors intact

    def test_error_reading_carries_the_failure(self, registry, context):
        registry.register(self.ExplodingSensor())
        reading = {r.sensor: r for r in registry.poll(context)}["exploding"]
        assert reading.value == 0.0
        assert reading.details["error"] == 1.0
        assert reading.error == "RuntimeError"
        assert reading.property == TrustProperty.ACCURACY
        assert reading.model_version == context.model_version

    def test_poll_one_still_propagates(self, registry, context):
        """Single-sensor API requests keep raising: the caller asked for
        exactly this probe and must see its failure."""
        registry.register(self.ExplodingSensor())
        with pytest.raises(RuntimeError):
            registry.poll_one("exploding", context)


class TestInstrumentation:
    def test_instrument_pipeline_pushes_to_sink(self, registry, blobs):
        X, y = blobs
        pipeline = AIPipeline(
            data_provider=lambda: (X, y),
            model_factory=lambda: DecisionTreeClassifier(max_depth=3),
            seed=0,
        )
        collected = []
        registry.instrument_pipeline(
            pipeline,
            "performance",
            StageKind.EVALUATION,
            context_builder=lambda ctx: ModelContext(
                model=ctx.model,
                X_train=ctx.X_train,
                y_train=ctx.y_train,
                X_test=ctx.X_test,
                y_test=ctx.y_test,
                model_version=ctx.model_version,
            ),
            sink=collected.append,
        )
        pipeline.run()
        assert len(collected) == 1
        assert collected[0].sensor == "performance"
        assert collected[0].model_version == 1

    def test_stage_bindings_recorded(self, registry, blobs):
        X, y = blobs
        pipeline = AIPipeline(
            data_provider=lambda: (X, y),
            model_factory=lambda: DecisionTreeClassifier(max_depth=2),
        )
        registry.instrument_pipeline(
            pipeline,
            "data_quality",
            StageKind.DATA_CLEANING,
            context_builder=lambda ctx: ModelContext(X_train=ctx.X_clean),
        )
        assert registry.stages_for("data_quality") == [StageKind.DATA_CLEANING]

    def test_stages_for_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.stages_for("ghost")


class TestCoverage:
    def test_uninstrumented_registry_has_full_blind_spots(self, registry):
        gaps = registry.unmonitored_vulnerabilities()
        names = {v.name for v in gaps}
        assert "label_flipping" in names
        assert "model_evasion" in names

    def test_instrumentation_shrinks_blind_spots(self, registry, blobs):
        X, y = blobs
        pipeline = AIPipeline(
            data_provider=lambda: (X, y),
            model_factory=lambda: DecisionTreeClassifier(max_depth=2),
        )
        before = len(registry.unmonitored_vulnerabilities())
        registry.instrument_pipeline(
            pipeline,
            "data_quality",
            StageKind.DATA_COLLECTION,
            context_builder=lambda ctx: ModelContext(X_train=ctx.X_raw),
        )
        after = len(registry.unmonitored_vulnerabilities())
        assert after < before

    def test_coverage_report_shape(self, registry):
        report = registry.coverage_report()
        assert report["n_sensors"] == 2
        assert "accuracy" in report["properties"]
        assert isinstance(report["unmonitored_vulnerabilities"], list)
