"""Tests for the continuous monitor."""

import pytest

from repro.core.dashboard import AIDashboard
from repro.core.monitor import ContinuousMonitor
from repro.core.registry import SensorRegistry
from repro.core.sensors import DataQualitySensor, ModelContext, PerformanceSensor


@pytest.fixture()
def setup(trained_mlp, blobs):
    X, y = blobs
    registry = SensorRegistry()
    registry.register(PerformanceSensor(clock=lambda: 0.0))
    registry.register(DataQualitySensor(clock=lambda: 0.0))
    dashboard = AIDashboard()
    state = {"version": 1}

    def provider():
        return ModelContext(
            model=trained_mlp,
            X_train=X,
            y_train=y,
            X_test=X[:40],
            y_test=y[:40],
            model_version=state["version"],
        )

    monitor = ContinuousMonitor(registry, dashboard, provider)
    return monitor, dashboard, state


class TestPolling:
    def test_poll_once_pushes_all_sensors(self, setup):
        monitor, dashboard, __ = setup
        record = monitor.poll_once()
        assert len(record.readings) == 2
        assert set(dashboard.sensors) == {"performance", "data_quality"}

    def test_run_n_rounds(self, setup):
        monitor, dashboard, __ = setup
        monitor.run(4)
        assert monitor.n_rounds == 4
        assert len(dashboard.values("performance")) == 4

    def test_round_indices_sequential(self, setup):
        monitor, __, __ = setup
        rounds = monitor.run(3)
        assert [r.index for r in rounds] == [0, 1, 2]

    def test_negative_rounds_raise(self, setup):
        monitor, __, __ = setup
        with pytest.raises(ValueError):
            monitor.run(-1)

    def test_trigger_recorded(self, setup):
        monitor, __, __ = setup
        record = monitor.poll_once(trigger="manual")
        assert record.trigger == "manual"


class TestModelUpdateTrigger:
    def test_first_call_polls(self, setup):
        monitor, __, __ = setup
        assert monitor.on_model_update() is not None

    def test_no_change_no_poll(self, setup):
        monitor, __, __ = setup
        monitor.poll_once()
        assert monitor.on_model_update() is None

    def test_version_bump_triggers_poll(self, setup):
        monitor, __, state = setup
        monitor.poll_once()
        state["version"] = 2
        record = monitor.on_model_update()
        assert record is not None
        assert record.trigger == "model_update"
        assert record.readings[0].model_version == 2
