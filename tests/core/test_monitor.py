"""Tests for the continuous monitor."""

import pytest

from repro.core.dashboard import AIDashboard
from repro.core.monitor import ContinuousMonitor
from repro.core.registry import SensorRegistry
from repro.core.sensors import DataQualitySensor, ModelContext, PerformanceSensor
from repro.telemetry import TelemetryBus, TelemetryPipeline


@pytest.fixture()
def setup(trained_mlp, blobs):
    X, y = blobs
    registry = SensorRegistry()
    registry.register(PerformanceSensor(clock=lambda: 0.0))
    registry.register(DataQualitySensor(clock=lambda: 0.0))
    dashboard = AIDashboard()
    state = {"version": 1}

    def provider():
        return ModelContext(
            model=trained_mlp,
            X_train=X,
            y_train=y,
            X_test=X[:40],
            y_test=y[:40],
            model_version=state["version"],
        )

    monitor = ContinuousMonitor(registry, dashboard, provider)
    return monitor, dashboard, state


class TestPolling:
    def test_poll_once_pushes_all_sensors(self, setup):
        monitor, dashboard, __ = setup
        record = monitor.poll_once()
        assert len(record.readings) == 2
        assert set(dashboard.sensors) == {"performance", "data_quality"}

    def test_run_n_rounds(self, setup):
        monitor, dashboard, __ = setup
        monitor.run(4)
        assert monitor.n_rounds == 4
        assert len(dashboard.values("performance")) == 4

    def test_round_indices_sequential(self, setup):
        monitor, __, __ = setup
        rounds = monitor.run(3)
        assert [r.index for r in rounds] == [0, 1, 2]

    def test_negative_rounds_raise(self, setup):
        monitor, __, __ = setup
        with pytest.raises(ValueError):
            monitor.run(-1)

    def test_trigger_recorded(self, setup):
        monitor, __, __ = setup
        record = monitor.poll_once(trigger="manual")
        assert record.trigger == "manual"


class TestModelUpdateTrigger:
    def test_first_call_polls(self, setup):
        monitor, __, __ = setup
        assert monitor.on_model_update() is not None

    def test_first_ever_call_with_no_prior_round(self, setup):
        """Before any round the monitor has no version baseline, so the
        first model-update check must poll regardless of the version."""
        monitor, dashboard, __ = setup
        assert monitor.n_rounds == 0
        record = monitor.on_model_update()
        assert record is not None
        assert record.index == 0
        assert record.trigger == "model_update"
        assert set(dashboard.sensors) == {"performance", "data_quality"}

    def test_no_change_no_poll(self, setup):
        monitor, __, __ = setup
        monitor.poll_once()
        assert monitor.on_model_update() is None

    def test_version_bump_triggers_poll(self, setup):
        monitor, __, state = setup
        monitor.poll_once()
        state["version"] = 2
        record = monitor.on_model_update()
        assert record is not None
        assert record.trigger == "model_update"
        assert record.readings[0].model_version == 2

    def test_version_decrease_is_a_model_update(self, setup):
        """A rollback (version going down) is still a different model and
        must be re-measured, not treated as 'no change'."""
        monitor, __, state = setup
        state["version"] = 5
        monitor.poll_once()
        state["version"] = 3  # operator rolled the model back
        record = monitor.on_model_update()
        assert record is not None
        assert record.trigger == "model_update"
        assert record.readings[0].model_version == 3
        # and the rollback version becomes the new baseline
        assert monitor.on_model_update() is None

    def test_update_round_publishes_to_bus(self, setup):
        """The model-update trigger flows through the same bus publication
        path as scheduled rounds."""
        monitor, __, state = setup
        spy = monitor.bus.subscribe("spy", topics="sensors")
        monitor.poll_once()
        assert spy.backlog == 2
        state["version"] = 2
        monitor.on_model_update()
        assert spy.backlog == 4
        versions = [
            e.labels["model_version"] for e in spy.poll()
        ]
        assert versions == ["1", "1", "2", "2"]


class TestBusIntegration:
    def test_private_bus_by_default(self, setup):
        monitor, __, __ = setup
        assert isinstance(monitor.bus, TelemetryBus)
        assert monitor.telemetry is monitor.bus

    def test_dashboard_is_a_subscriber_not_a_sink(self, setup):
        monitor, __, __ = setup
        names = {s.name for s in monitor.bus.subscriptions}
        assert "dashboard" in names

    def test_readings_arrive_via_bus_counters(self, setup):
        monitor, dashboard, __ = setup
        monitor.run(3)
        stats = monitor.bus.stats()
        assert stats["topics"]["sensors"]["published"] == 6
        assert stats["subscriptions"]["dashboard"]["delivered"] == 6
        assert len(dashboard.values("performance")) == 3

    def test_shared_pipeline_records_rounds_in_wal(self, trained_mlp, blobs, tmp_path):
        X, y = blobs
        registry = SensorRegistry()
        registry.register(PerformanceSensor(clock=lambda: 0.0))
        dashboard = AIDashboard()
        pipeline = TelemetryPipeline(wal_dir=tmp_path / "wal")
        monitor = ContinuousMonitor(
            registry,
            dashboard,
            lambda: ModelContext(
                model=trained_mlp, X_test=X[:40], y_test=y[:40]
            ),
            telemetry=pipeline,
        )
        monitor.run(4)
        pipeline.flush()
        assert pipeline.wal.appended == 4
        assert len(dashboard.values("performance")) == 4

    def test_dashboardless_monitor(self, trained_mlp, blobs):
        X, y = blobs
        registry = SensorRegistry()
        registry.register(PerformanceSensor(clock=lambda: 0.0))
        monitor = ContinuousMonitor(
            registry,
            None,
            lambda: ModelContext(model=trained_mlp, X_test=X[:40], y_test=y[:40]),
        )
        spy = monitor.bus.subscribe("spy", topics="sensors")
        monitor.run(2)
        assert spy.backlog == 2

    def test_two_monitors_share_one_bus(self, trained_mlp, blobs):
        """Dashboard subscription names must not collide on a shared bus."""
        X, y = blobs
        bus = TelemetryBus()
        monitors = []
        for __ in range(2):
            registry = SensorRegistry()
            registry.register(PerformanceSensor(clock=lambda: 0.0))
            monitors.append(
                ContinuousMonitor(
                    registry,
                    AIDashboard(),
                    lambda: ModelContext(
                        model=trained_mlp, X_test=X[:40], y_test=y[:40]
                    ),
                    telemetry=bus,
                )
            )
        monitors[0].poll_once()
        # both dashboards see the reading: they subscribe the same topic
        assert len(monitors[0].dashboard.values("performance")) == 1
        assert len(monitors[1].dashboard.values("performance")) == 1
