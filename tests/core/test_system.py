"""Tests for the SpatialSystem facade."""

import json

import numpy as np
import pytest

from repro.attacks import RandomLabelFlippingAttack
from repro.core import (
    AlertRule,
    LabelSanitizationAction,
    PerformanceSensor,
    RetrainAction,
    SpatialSystem,
)
from repro.ml import DecisionTreeClassifier
from repro.ml.pipeline import AIPipeline
from repro.trust.properties import TrustProperty


@pytest.fixture()
def pipeline(blobs):
    X, y = blobs
    return AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: DecisionTreeClassifier(max_depth=5),
        seed=0,
    )


class TestAttach:
    def test_default_sensors(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        assert spatial.registry.get("performance")
        assert spatial.registry.get("data_quality")

    def test_custom_sensors_and_rules(self, pipeline):
        spatial = SpatialSystem.attach(
            pipeline,
            sensors=[PerformanceSensor(name="acc")],
            rules=[AlertRule(sensor="acc", threshold=0.5)],
        )
        assert spatial.registry.sensors[0].name == "acc"
        spatial.run_pipeline()
        assert spatial.alerts() == []  # blobs accuracy well above 0.5


class TestOperation:
    def test_run_pipeline_polls_sensors(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        context = spatial.run_pipeline()
        assert context.deployed
        assert spatial.dashboard.latest("performance").model_version == 1

    def test_poll_rounds(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        spatial.run_pipeline()
        spatial.poll(3)
        assert len(spatial.dashboard.values("performance")) == 4

    def test_apply_action_repolls(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        spatial.run_pipeline()
        spatial.apply(RetrainAction())
        assert spatial.dashboard.latest("performance").model_version == 2

    def test_full_poison_recover_loop(self, blobs):
        X, y = blobs
        attack = RandomLabelFlippingAttack(rate=0.35, seed=0)
        state = {"poison": False}

        def labeler(X_, y_):
            return attack.apply(X_, y_).y if state["poison"] else y_

        pipeline = AIPipeline(
            data_provider=lambda: (X, y),
            model_factory=lambda: DecisionTreeClassifier(max_depth=8),
            labeler=labeler,
            seed=0,
            deduplicate=False,
        )
        spatial = SpatialSystem.attach(
            pipeline,
            rules=[AlertRule(sensor="performance", threshold=0.85)],
        )
        spatial.run_pipeline()
        clean = spatial.dashboard.latest("performance").value
        state["poison"] = True
        spatial.run_pipeline()
        poisoned = spatial.dashboard.latest("performance").value
        assert poisoned < clean
        assert spatial.alerts()
        spatial.apply(LabelSanitizationAction(k=7, threshold=0.7))
        recovered = spatial.dashboard.latest("performance").value
        assert recovered > poisoned


class TestInsight:
    def test_trust_score(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        spatial.run_pipeline()
        score = spatial.trust_score()
        assert 0.0 <= score.value <= 1.0
        assert TrustProperty.ACCURACY in score.per_property

    def test_model_card(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        spatial.run_pipeline()
        card = spatial.model_card(model_name="blob-classifier")
        assert "blob-classifier" in card
        assert "## Trustworthy monitoring" in card

    def test_audit_export_is_valid_json(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        spatial.run_pipeline()
        payload = json.loads(spatial.audit_export())
        assert "sensors" in payload

    def test_coverage_report(self, pipeline):
        spatial = SpatialSystem.attach(pipeline)
        report = spatial.coverage_report()
        assert report["n_sensors"] == 2
