"""Tests for the human-in-the-loop operator actions."""

import numpy as np
import pytest

from repro.attacks import RandomLabelFlippingAttack
from repro.core.feedback import (
    LabelSanitizationAction,
    ModelSwapAction,
    RetrainAction,
    sanitize_labels_knn,
)
from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.ml.pipeline import AIPipeline


class TestSanitizeLabelsKnn:
    def test_repairs_flipped_labels_in_separable_data(self, blobs):
        X, y = blobs
        poisoned = RandomLabelFlippingAttack(rate=0.1, seed=0).apply(X, y)
        repaired = sanitize_labels_knn(X, poisoned.y, k=7, threshold=0.8)
        errors_before = int(np.sum(poisoned.y != y))
        errors_after = int(np.sum(repaired != y))
        assert errors_after < errors_before

    def test_clean_labels_mostly_untouched(self, blobs):
        X, y = blobs
        repaired = sanitize_labels_knn(X, y, k=7, threshold=0.8)
        assert np.mean(repaired != y) < 0.02

    def test_invalid_k_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            sanitize_labels_knn(X, y, k=0)
        with pytest.raises(ValueError):
            sanitize_labels_knn(X, y, k=len(y))

    def test_invalid_threshold_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            sanitize_labels_knn(X, y, threshold=0.4)

    def test_original_not_mutated(self, blobs):
        X, y = blobs
        y_before = y.copy()
        sanitize_labels_knn(X, y)
        assert np.array_equal(y, y_before)


def make_poisoned_pipeline(blobs, rate=0.3):
    X, y = blobs
    attack = RandomLabelFlippingAttack(rate=rate, seed=0)

    def poisoning_labeler(X_, y_):
        return attack.apply(X_, y_).y

    return AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: DecisionTreeClassifier(max_depth=6),
        labeler=poisoning_labeler,
        seed=0,
        deduplicate=False,
    )


class TestOperatorActions:
    def test_retrain_action_bumps_version(self, blobs):
        pipe = make_poisoned_pipeline(blobs, rate=0.0)
        pipe.run()
        RetrainAction().apply(pipe)
        assert pipe.context.model_version == 2

    def test_model_swap_action(self, blobs):
        pipe = make_poisoned_pipeline(blobs, rate=0.0)
        pipe.run()
        ModelSwapAction(
            factory=lambda: RandomForestClassifier(n_estimators=5, max_depth=4)
        ).apply(pipe)
        assert isinstance(pipe.context.model, RandomForestClassifier)

    def test_model_swap_without_factory_raises(self, blobs):
        pipe = make_poisoned_pipeline(blobs, rate=0.0)
        pipe.run()
        with pytest.raises(ValueError):
            ModelSwapAction().apply(pipe)

    def test_label_sanitization_recovers_accuracy(self, blobs):
        """The full corrective loop: poison → detect (low accuracy) →
        sanitise → re-run → accuracy recovers."""
        pipe = make_poisoned_pipeline(blobs, rate=0.3)
        ctx = pipe.run()
        poisoned_acc = ctx.evaluation["accuracy"]
        ctx = LabelSanitizationAction(k=7, threshold=0.7).apply(pipe)
        sanitised_acc = ctx.evaluation["accuracy"]
        assert sanitised_acc > poisoned_acc

    def test_sanitization_keeps_previous_labeler(self, blobs):
        """The sanitiser wraps (not replaces) the existing labeler, so the
        attack still runs first and gets cleaned after."""
        pipe = make_poisoned_pipeline(blobs, rate=0.2)
        pipe.run()
        LabelSanitizationAction(k=7, threshold=0.7).apply(pipe)
        # labeler is now a composition; running again still works
        ctx = pipe.run()
        assert ctx.deployed
