"""Tests for the Fig. 2 architecture-evolution registry."""

import importlib

import pytest

from repro.core.architectures import (
    ARCHITECTURE_EVOLUTION,
    Concern,
    concerns_introduced_by,
    generations,
)


class TestEvolution:
    def test_three_generations_in_order(self):
        assert generations() == [
            "client_server",
            "centralised_ml",
            "distributed_ml",
        ]

    def test_concerns_monotonically_grow(self):
        """Fig. 2's premise: each generation inherits and adds concerns."""
        previous = frozenset()
        for generation in ARCHITECTURE_EVOLUTION:
            assert previous <= generation.concerns
            previous = generation.concerns

    def test_client_server_introduces_scalability(self):
        assert concerns_introduced_by("client_server") == {Concern.SCALABILITY}

    def test_centralised_ml_introduces_ml_concerns(self):
        introduced = concerns_introduced_by("centralised_ml")
        assert Concern.DATA_COLLECTION in introduced
        assert Concern.MODEL_QUALITY in introduced
        assert Concern.SCALABILITY not in introduced  # inherited

    def test_distributed_ml_introduces_privacy_and_aggregation(self):
        introduced = concerns_introduced_by("distributed_ml")
        assert Concern.PRIVACY in introduced
        assert Concern.AGGREGATION_INTEGRITY in introduced

    def test_unknown_generation_raises(self):
        with pytest.raises(KeyError):
            concerns_introduced_by("quantum")

    def test_implementing_modules_importable(self):
        """Every claimed implementing module must actually exist."""
        for generation in ARCHITECTURE_EVOLUTION:
            for module_name in generation.implemented_by:
                assert importlib.import_module(module_name)

    def test_panels_named(self):
        panels = [g.figure_panel for g in ARCHITECTURE_EVOLUTION]
        assert panels == ["2(a)", "2(b)", "2(c)"]
