"""Tests for model-card generation."""

import pytest

from repro.core import (
    AIDashboard,
    AlertRule,
    ModelContext,
    PerformanceSensor,
    SensorRegistry,
    generate_model_card,
)
from repro.ml import DecisionTreeClassifier
from repro.ml.pipeline import AIPipeline, StageKind


@pytest.fixture()
def run_pipeline(blobs):
    X, y = blobs
    pipeline = AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: DecisionTreeClassifier(max_depth=4),
        seed=0,
    )
    pipeline.run()
    return pipeline


class TestGenerateModelCard:
    def test_minimal_card_sections(self, run_pipeline):
        card = generate_model_card(run_pipeline, model_name="fall-detector")
        assert "# Model card — fall-detector" in card
        assert "## Model details" in card
        assert "DecisionTreeClassifier" in card
        assert "## Training data" in card
        assert "## Evaluation" in card
        assert "accuracy:" in card

    def test_requires_completed_run(self, blobs):
        X, y = blobs
        pipeline = AIPipeline(
            data_provider=lambda: (X, y),
            model_factory=lambda: DecisionTreeClassifier(max_depth=2),
        )
        with pytest.raises(ValueError, match="run the pipeline"):
            generate_model_card(pipeline)

    def test_dashboard_section(self, run_pipeline):
        dashboard = AIDashboard()
        sensor = PerformanceSensor(clock=lambda: 0.0)
        ctx = run_pipeline.context
        dashboard.add_reading(
            sensor.measure(
                ModelContext(
                    model=ctx.model,
                    X_test=ctx.X_test,
                    y_test=ctx.y_test,
                    model_version=ctx.model_version,
                )
            )
        )
        card = generate_model_card(run_pipeline, dashboard=dashboard)
        assert "## Trustworthy monitoring" in card
        assert "performance (accuracy)" in card

    def test_caveats_list_instrumentation_gaps(self, run_pipeline):
        registry = SensorRegistry()
        registry.register(PerformanceSensor())
        card = generate_model_card(run_pipeline, registry=registry)
        assert "unmonitored pipeline vulnerabilities" in card

    def test_alert_caveat(self, run_pipeline):
        dashboard = AIDashboard()
        dashboard.add_rule(AlertRule(sensor="performance", threshold=2.0))
        sensor = PerformanceSensor(clock=lambda: 0.0)
        ctx = run_pipeline.context
        dashboard.add_reading(
            sensor.measure(
                ModelContext(
                    model=ctx.model, X_test=ctx.X_test, y_test=ctx.y_test
                )
            )
        )
        card = generate_model_card(run_pipeline, dashboard=dashboard)
        assert "unacknowledged dashboard alerts" in card

    def test_intended_use_section(self, run_pipeline):
        card = generate_model_card(
            run_pipeline, intended_use="Detect falls; not a medical device."
        )
        assert "## Intended use" in card
        assert "not a medical device" in card

    def test_clean_card_has_no_caveats(self, run_pipeline):
        card = generate_model_card(run_pipeline)
        assert "none recorded" in card
