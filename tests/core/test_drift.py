"""Tests for the non-induced-change (data drift) detectors and sensor."""

import numpy as np
import pytest

from repro.core import ModelContext
from repro.core.drift import (
    DataDriftSensor,
    dataset_drift_score,
    ks_statistic,
    population_stability_index,
)


@pytest.fixture()
def reference(rng):
    return np.random.default_rng(1).normal(size=(500, 3))


class TestPsi:
    def test_same_distribution_near_zero(self, reference):
        live = np.random.default_rng(2).normal(size=500)
        psi = population_stability_index(reference[:, 0], live)
        assert psi < 0.1

    def test_shifted_distribution_large(self, reference):
        live = np.random.default_rng(2).normal(3.0, 1.0, size=500)
        psi = population_stability_index(reference[:, 0], live)
        assert psi > 0.25

    def test_scale_change_detected(self, reference):
        live = np.random.default_rng(2).normal(0.0, 5.0, size=500)
        assert population_stability_index(reference[:, 0], live) > 0.25

    def test_constant_feature_is_zero(self):
        assert population_stability_index(np.ones(100), np.ones(50)) == 0.0

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            population_stability_index(np.ones(5), np.ones(5), n_bins=10)

    def test_non_negative(self, reference):
        live = np.random.default_rng(3).normal(0.5, 1.5, size=200)
        assert population_stability_index(reference[:, 0], live) >= 0.0


class TestKs:
    def test_identical_samples_zero(self):
        x = np.arange(100, dtype=float)
        assert ks_statistic(x, x) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic(np.zeros(50), np.ones(50) * 10) == 1.0

    def test_bounded(self, reference):
        live = np.random.default_rng(4).normal(1.0, 1.0, size=300)
        stat = ks_statistic(reference[:, 0], live)
        assert 0.0 <= stat <= 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ks_statistic(np.empty(0), np.ones(5))


class TestDatasetDrift:
    def test_per_feature_scores(self, reference):
        live = np.random.default_rng(5).normal(size=(300, 3))
        live[:, 1] += 4.0  # only feature 1 drifts
        scores = dataset_drift_score(reference, live)
        assert scores.shape == (3,)
        assert int(np.argmax(scores)) == 1

    def test_ks_method(self, reference):
        live = np.random.default_rng(5).normal(size=(300, 3))
        scores = dataset_drift_score(reference, live, method="ks")
        assert np.all((scores >= 0) & (scores <= 1))

    def test_unknown_method_raises(self, reference):
        with pytest.raises(ValueError):
            dataset_drift_score(reference, reference, method="chi2")

    def test_feature_mismatch_raises(self, reference):
        with pytest.raises(ValueError):
            dataset_drift_score(reference, np.ones((10, 5)))


class TestDataDriftSensor:
    def test_stable_data_scores_high(self, reference):
        live = np.random.default_rng(6).normal(size=(300, 3))
        ctx = ModelContext(X_train=reference, X_test=live)
        reading = DataDriftSensor().measure(ctx)
        assert reading.value > 0.7
        assert reading.details["mean_drift"] < 0.25

    def test_drifted_data_scores_low(self, reference):
        live = np.random.default_rng(6).normal(3.0, 1.0, size=(300, 3))
        ctx = ModelContext(X_train=reference, X_test=live)
        reading = DataDriftSensor().measure(ctx)
        assert reading.value < 0.3

    def test_live_window_from_extras_preferred(self, reference):
        stable = np.random.default_rng(6).normal(size=(300, 3))
        drifted = np.random.default_rng(6).normal(5.0, 1.0, size=(300, 3))
        ctx = ModelContext(
            X_train=reference, X_test=stable, extras={"X_live": drifted}
        )
        reading = DataDriftSensor().measure(ctx)
        assert reading.value < 0.3

    def test_worst_feature_reported(self, reference):
        live = np.random.default_rng(7).normal(size=(300, 3))
        live[:, 2] += 5.0
        ctx = ModelContext(X_train=reference, X_test=live)
        reading = DataDriftSensor().measure(ctx)
        assert reading.details["worst_feature"] == 2.0

    def test_missing_data_raises(self):
        with pytest.raises(ValueError):
            DataDriftSensor().measure(ModelContext())

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            DataDriftSensor(threshold=0.0)
