"""Tests for the stakeholder-tailored narrator."""

import pytest

from repro.core.narrator import (
    Audience,
    narrate_incident,
    narrate_reading,
    narrate_report,
)
from repro.core.sensors import SensorReading
from repro.slo import Incident
from repro.trust.properties import TrustProperty


def reading(value=0.9, prop=TrustProperty.ACCURACY, sensor="performance", v=2):
    return SensorReading(
        sensor=sensor,
        property=prop,
        value=value,
        timestamp=12.5,
        model_version=v,
        details={"accuracy": value, "recall": value - 0.02},
    )


def failed_reading():
    return SensorReading(
        sensor="performance",
        property=TrustProperty.ACCURACY,
        value=0.0,
        timestamp=12.5,
        model_version=2,
        error="TimeoutError",
    )


class TestEndUserNarration:
    def test_plain_language_no_jargon(self):
        text = narrate_reading(reading(0.95), Audience.END_USER)
        assert "answers right" in text
        assert "model v" not in text  # no developer jargon

    def test_percentage_rendered(self):
        text = narrate_reading(reading(0.95), Audience.END_USER)
        assert "95%" in text

    def test_low_value_adds_caution(self):
        text = narrate_reading(reading(0.5), Audience.END_USER)
        assert "double-check" in text

    def test_quality_words(self):
        assert "good" in narrate_reading(reading(0.95), Audience.END_USER)
        assert "poor" in narrate_reading(reading(0.2), Audience.END_USER)

    def test_unknown_property_falls_back(self):
        text = narrate_reading(
            reading(prop=TrustProperty.SAFETY), Audience.END_USER
        )
        assert "trustworthiness" in text


class TestDeveloperNarration:
    def test_contains_metrics_and_version(self):
        text = narrate_reading(reading(0.9), Audience.DEVELOPER)
        assert "[performance]" in text
        assert "model v2" in text
        assert "accuracy=0.9" in text

    def test_low_value_mentions_tradeoffs(self):
        text = narrate_reading(
            reading(0.4, prop=TrustProperty.ACCURACY), Audience.DEVELOPER
        )
        assert "fairness" in text  # accuracy↔fairness documented trade-off


class TestAuditorNarration:
    def test_compliance_statement(self):
        text = narrate_reading(reading(0.9), Audience.AUDITOR)
        assert "COMPLIANT" in text
        assert "model version 2" in text
        assert "timestamp" in text

    def test_review_flag_below_threshold(self):
        text = narrate_reading(reading(0.5), Audience.AUDITOR)
        assert "REQUIRES REVIEW" in text


class TestReport:
    def test_most_alarming_first(self):
        readings = [reading(0.9), reading(0.3, sensor="resilience")]
        lines = narrate_report(readings, Audience.AUDITOR)
        assert "resilience" in lines[0]

    def test_one_line_per_reading(self):
        lines = narrate_report([reading(), reading(0.5)], Audience.END_USER)
        assert len(lines) == 2

    def test_all_audiences_render_everything(self):
        for audience in Audience:
            for value in (0.1, 0.6, 0.95):
                text = narrate_reading(reading(value), audience)
                assert isinstance(text, str) and text

    def test_empty_report_renders_empty(self):
        for audience in Audience:
            assert narrate_report([], audience) == []


class TestErrorFlaggedReadings:
    """A failed poll must never read as a (terrible) measurement."""

    def test_end_user_hears_the_check_is_down_not_a_score(self):
        text = narrate_reading(failed_reading(), Audience.END_USER)
        assert "could not check" in text
        assert "0%" not in text  # the substitute 0.0 is not a score

    def test_developer_sees_the_exception_and_the_failed_sensor(self):
        text = narrate_reading(failed_reading(), Audience.DEVELOPER)
        assert "FAILED" in text
        assert "TimeoutError" in text
        assert "[performance]" in text

    def test_auditor_flags_the_gap_for_review(self):
        text = narrate_reading(failed_reading(), Audience.AUDITOR)
        assert "MEASUREMENT UNAVAILABLE" in text
        assert "REQUIRES REVIEW" in text
        assert "TimeoutError" in text

    def test_error_readings_sort_first_in_reports(self):
        lines = narrate_report(
            [reading(0.9), failed_reading()], Audience.DEVELOPER
        )
        assert "FAILED" in lines[0]


def incident(**overrides):
    fields = dict(
        incident_id="INC-0007",
        slo="shap-latency",
        source="shap@node-2",
        rule="fast",
        severity="page",
        timestamp=54.0,
        short_burn=10.0,
        long_burn=4.1,
        factor=4.0,
        route="shap",
        suspect_node="node-2",
        budget_remaining=0.25,
    )
    fields.update(overrides)
    return Incident(**fields)


class TestIncidentNarration:
    def test_end_user_gets_a_reference_id_and_no_jargon(self):
        text = narrate_incident(incident(), Audience.END_USER)
        assert "INC-0007" in text
        assert "shap" in text
        assert "paged" in text  # page severity -> someone is looking now
        assert "burn" not in text and "exemplar" not in text

    def test_ticket_severity_softens_the_end_user_message(self):
        text = narrate_incident(
            incident(severity="ticket"), Audience.END_USER
        )
        assert "working hours" in text

    def test_developer_header_names_rule_burns_and_node(self):
        text = narrate_incident(incident(), Audience.DEVELOPER)
        assert "INC-0007 [page] shap-latency on shap@node-2" in text
        assert "burn 10.0x short / 4.1x long" in text
        assert "suspect node: node-2" in text
        assert "error budget remaining: 25.0%" in text

    def test_developer_notes_when_no_exemplars_resolved(self):
        text = narrate_incident(incident(), Audience.DEVELOPER)
        assert "exemplars: none" in text

    def test_auditor_counts_the_evidence_on_file(self):
        text = narrate_incident(incident(), Audience.AUDITOR)
        assert "Incident INC-0007" in text
        assert "severity: PAGE" in text
        assert "0 request trace(s)" in text
        assert "REQUIRES REVIEW" in text

    def test_every_audience_renders_a_minimal_incident(self):
        bare = incident(suspect_node=None, budget_remaining=None)
        for audience in Audience:
            assert narrate_incident(bare, audience)
