"""Tests for the stakeholder-tailored narrator."""

import pytest

from repro.core.narrator import Audience, narrate_reading, narrate_report
from repro.core.sensors import SensorReading
from repro.trust.properties import TrustProperty


def reading(value=0.9, prop=TrustProperty.ACCURACY, sensor="performance", v=2):
    return SensorReading(
        sensor=sensor,
        property=prop,
        value=value,
        timestamp=12.5,
        model_version=v,
        details={"accuracy": value, "recall": value - 0.02},
    )


class TestEndUserNarration:
    def test_plain_language_no_jargon(self):
        text = narrate_reading(reading(0.95), Audience.END_USER)
        assert "answers right" in text
        assert "model v" not in text  # no developer jargon

    def test_percentage_rendered(self):
        text = narrate_reading(reading(0.95), Audience.END_USER)
        assert "95%" in text

    def test_low_value_adds_caution(self):
        text = narrate_reading(reading(0.5), Audience.END_USER)
        assert "double-check" in text

    def test_quality_words(self):
        assert "good" in narrate_reading(reading(0.95), Audience.END_USER)
        assert "poor" in narrate_reading(reading(0.2), Audience.END_USER)

    def test_unknown_property_falls_back(self):
        text = narrate_reading(
            reading(prop=TrustProperty.SAFETY), Audience.END_USER
        )
        assert "trustworthiness" in text


class TestDeveloperNarration:
    def test_contains_metrics_and_version(self):
        text = narrate_reading(reading(0.9), Audience.DEVELOPER)
        assert "[performance]" in text
        assert "model v2" in text
        assert "accuracy=0.9" in text

    def test_low_value_mentions_tradeoffs(self):
        text = narrate_reading(
            reading(0.4, prop=TrustProperty.ACCURACY), Audience.DEVELOPER
        )
        assert "fairness" in text  # accuracy↔fairness documented trade-off


class TestAuditorNarration:
    def test_compliance_statement(self):
        text = narrate_reading(reading(0.9), Audience.AUDITOR)
        assert "COMPLIANT" in text
        assert "model version 2" in text
        assert "timestamp" in text

    def test_review_flag_below_threshold(self):
        text = narrate_reading(reading(0.5), Audience.AUDITOR)
        assert "REQUIRES REVIEW" in text


class TestReport:
    def test_most_alarming_first(self):
        readings = [reading(0.9), reading(0.3, sensor="resilience")]
        lines = narrate_report(readings, Audience.AUDITOR)
        assert "resilience" in lines[0]

    def test_one_line_per_reading(self):
        lines = narrate_report([reading(), reading(0.5)], Audience.END_USER)
        assert len(lines) == 2

    def test_all_audiences_render_everything(self):
        for audience in Audience:
            for value in (0.1, 0.6, 0.95):
                text = narrate_reading(reading(value), audience)
                assert isinstance(text, str) and text
