"""Tests for the DP mechanisms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.mechanisms import (
    gaussian_mechanism,
    laplace_mechanism,
    randomized_response,
)


class TestLaplaceMechanism:
    def test_noise_scale_tracks_budget(self):
        values = np.zeros(5000)
        loose = laplace_mechanism(values, sensitivity=1.0, epsilon=10.0, seed=0)
        tight = laplace_mechanism(values, sensitivity=1.0, epsilon=0.1, seed=0)
        assert np.abs(tight).mean() > np.abs(loose).mean()

    def test_empirical_scale_matches_theory(self):
        values = np.zeros(20000)
        noisy = laplace_mechanism(values, sensitivity=2.0, epsilon=1.0, seed=0)
        # Laplace(b) has mean |x| = b
        assert np.abs(noisy).mean() == pytest.approx(2.0, rel=0.1)

    def test_zero_sensitivity_is_noiseless(self):
        values = np.arange(5.0)
        assert np.allclose(
            laplace_mechanism(values, sensitivity=0.0, epsilon=1.0), values
        )

    def test_shape_preserved(self):
        values = np.ones((3, 4))
        assert laplace_mechanism(values, 1.0, 1.0).shape == (3, 4)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            laplace_mechanism(np.zeros(2), 1.0, epsilon=0.0)

    def test_negative_sensitivity_raises(self):
        with pytest.raises(ValueError):
            laplace_mechanism(np.zeros(2), -1.0, 1.0)

    def test_deterministic_given_seed(self):
        a = laplace_mechanism(np.zeros(10), 1.0, 1.0, seed=7)
        b = laplace_mechanism(np.zeros(10), 1.0, 1.0, seed=7)
        assert np.array_equal(a, b)


class TestGaussianMechanism:
    def test_sigma_calibration(self):
        values = np.zeros(20000)
        noisy = gaussian_mechanism(
            values, sensitivity=1.0, epsilon=1.0, delta=1e-5, seed=0
        )
        expected_sigma = np.sqrt(2.0 * np.log(1.25 / 1e-5))
        assert noisy.std() == pytest.approx(expected_sigma, rel=0.1)

    def test_invalid_delta_raises(self):
        with pytest.raises(ValueError):
            gaussian_mechanism(np.zeros(2), 1.0, 1.0, delta=0.0)
        with pytest.raises(ValueError):
            gaussian_mechanism(np.zeros(2), 1.0, 1.0, delta=1.0)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            gaussian_mechanism(np.zeros(2), 1.0, epsilon=-1.0)


class TestRandomizedResponse:
    def test_high_budget_keeps_most_labels(self):
        y = np.arange(1000) % 3
        out = randomized_response(y, epsilon=8.0, seed=0)
        assert np.mean(out == y) > 0.95

    def test_low_budget_flips_many(self):
        y = np.arange(1000) % 3
        out = randomized_response(y, epsilon=0.1, seed=0)
        # keep prob ≈ e^0.1/(e^0.1+2) ≈ 0.36
        assert np.mean(out == y) < 0.5

    def test_keep_probability_matches_theory(self):
        y = np.zeros(20000, dtype=int)
        y[::2] = 1
        epsilon = 1.0
        out = randomized_response(y, epsilon=epsilon, seed=0)
        expected = np.exp(epsilon) / (np.exp(epsilon) + 1)
        assert np.mean(out == y) == pytest.approx(expected, rel=0.05)

    def test_flips_stay_in_label_set(self):
        y = np.array(["a", "b", "c"] * 100)
        out = randomized_response(y, epsilon=0.5, seed=0)
        assert set(out) <= {"a", "b", "c"}

    def test_single_class_unchanged(self):
        y = np.zeros(10, dtype=int)
        assert np.array_equal(randomized_response(y, 1.0), y)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            randomized_response(np.array([0, 1]), epsilon=0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.1, 5.0))
    def test_more_budget_more_fidelity_property(self, epsilon):
        y = np.arange(400) % 4
        low = randomized_response(y, epsilon=epsilon, seed=1)
        high = randomized_response(y, epsilon=epsilon + 3.0, seed=1)
        assert np.mean(high == y) >= np.mean(low == y) - 0.05
