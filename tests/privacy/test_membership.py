"""Tests for the membership-inference risk metric."""

import numpy as np
import pytest

from repro.ml import MLPClassifier
from repro.privacy.membership import membership_inference_risk


@pytest.fixture(scope="module")
def overfit_scenario():
    """A high-capacity MLP memorising a tiny noisy shard leaks membership."""
    gen = np.random.default_rng(0)
    X_members = gen.normal(size=(40, 8))
    y_members = gen.integers(0, 2, size=40)  # pure noise labels → memorised
    X_outsiders = gen.normal(size=(200, 8))
    model = MLPClassifier(
        hidden_layers=(64, 64), n_epochs=400, learning_rate=0.01, seed=0
    ).fit(X_members, y_members)
    return model, X_members, X_outsiders


class TestMembershipInferenceRisk:
    def test_overfit_model_leaks(self, overfit_scenario):
        model, members, outsiders = overfit_scenario
        risk = membership_inference_risk(model, members, outsiders)
        assert risk > 0.3

    def test_risk_bounded(self, overfit_scenario):
        model, members, outsiders = overfit_scenario
        risk = membership_inference_risk(model, members, outsiders)
        assert 0.0 <= risk <= 1.0

    def test_well_generalising_model_leaks_little(self, blobs):
        X, y = blobs
        model = MLPClassifier(
            hidden_layers=(8,), n_epochs=20, seed=0
        ).fit(X[:200], y[:200])
        risk = membership_inference_risk(model, X[:200], X[200:])
        assert risk < 0.25

    def test_identical_sets_zero_risk(self, blobs, trained_mlp):
        X, __ = blobs
        risk = membership_inference_risk(trained_mlp, X[:50], X[:50])
        assert risk == pytest.approx(0.0, abs=1e-9)

    def test_empty_sets_raise(self, trained_mlp):
        with pytest.raises(ValueError):
            membership_inference_risk(
                trained_mlp, np.empty((0, 5)), np.ones((2, 5))
            )
