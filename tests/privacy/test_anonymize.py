"""Tests for k-anonymity generalisation."""

import numpy as np
import pytest

from repro.privacy.anonymize import k_anonymize, smallest_group_size


class TestSmallestGroupSize:
    def test_all_unique_is_one(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        assert smallest_group_size(X) == 1

    def test_all_identical_is_n(self):
        X = np.ones((7, 2))
        assert smallest_group_size(X) == 7

    def test_mixed_groups(self):
        X = np.array([[1.0], [1.0], [2.0], [2.0], [2.0]])
        assert smallest_group_size(X) == 2


class TestKAnonymize:
    def test_constraint_satisfied(self, blobs):
        X, __ = blobs
        out, __ = k_anonymize(X, k=5)
        assert smallest_group_size(out) >= 5

    def test_larger_k_coarser_bins(self, blobs):
        X, __ = blobs
        __, bins_small_k = k_anonymize(X, k=2)
        __, bins_large_k = k_anonymize(X, k=50)
        assert bins_large_k <= bins_small_k

    def test_k_one_keeps_detail(self, blobs):
        X, __ = blobs
        out, bins = k_anonymize(X, k=1, max_bins=16)
        assert bins == 16

    def test_values_within_original_range(self, blobs):
        X, __ = blobs
        out, __ = k_anonymize(X, k=5)
        assert out.min() >= X.min() - 1e-9
        assert out.max() <= X.max() + 1e-9

    def test_k_equals_n_collapses(self):
        gen = np.random.default_rng(0)
        X = gen.normal(size=(20, 3))
        out, __ = k_anonymize(X, k=20)
        assert smallest_group_size(out) == 20

    def test_invalid_k_raises(self, blobs):
        X, __ = blobs
        with pytest.raises(ValueError):
            k_anonymize(X, k=0)
        with pytest.raises(ValueError):
            k_anonymize(X, k=len(X) + 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            k_anonymize(np.empty((0, 2)), k=1)

    def test_generalised_data_still_learnable(self, three_blobs):
        """Anonymisation must preserve enough signal to train on — the
        usable end of the §VIII trade-off.  (Low-dimensional data, where
        quantile cells stay populated and generalisation is gentle.)"""
        from repro.ml import DecisionTreeClassifier

        X, y = three_blobs
        out, bins = k_anonymize(X, k=5)
        assert bins > 1, "2-D blobs should not need total suppression"
        model = DecisionTreeClassifier(max_depth=4).fit(out, y)
        assert model.score(X, y) > 0.85
