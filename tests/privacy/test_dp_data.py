"""Tests for the DP dataset release and the accuracy-privacy trade-off."""

import numpy as np
import pytest

from repro.ml import LogisticRegressionClassifier
from repro.privacy.dp_data import privatize_dataset


class TestPrivatizeDataset:
    def test_shape_preserved(self, blobs):
        X, __ = blobs
        assert privatize_dataset(X, epsilon=10.0).shape == X.shape

    def test_noise_decreases_with_budget(self, blobs):
        X, __ = blobs
        loose = privatize_dataset(X, epsilon=100.0, seed=0)
        tight = privatize_dataset(X, epsilon=1.0, seed=0)
        err_loose = np.abs(loose - X).mean()
        err_tight = np.abs(tight - X).mean()
        assert err_tight > err_loose

    def test_clipping_respects_ranges(self, blobs):
        X, __ = blobs
        out = privatize_dataset(X, epsilon=0.5, clip_to_range=True, seed=0)
        assert np.all(out.min(axis=0) >= X.min(axis=0) - 1e-9)
        assert np.all(out.max(axis=0) <= X.max(axis=0) + 1e-9)

    def test_no_clipping_can_exceed_range(self, blobs):
        X, __ = blobs
        out = privatize_dataset(X, epsilon=0.5, clip_to_range=False, seed=0)
        assert out.max() > X.max() or out.min() < X.min()

    def test_original_untouched(self, blobs):
        X, __ = blobs
        X_before = X.copy()
        privatize_dataset(X, epsilon=1.0)
        assert np.array_equal(X, X_before)

    def test_invalid_epsilon_raises(self, blobs):
        X, __ = blobs
        with pytest.raises(ValueError):
            privatize_dataset(X, epsilon=0.0)

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            privatize_dataset(np.ones(5), epsilon=1.0)

    def test_accuracy_privacy_tradeoff(self, blobs):
        """§VIII: "data removal degrades the decision making process
        performance" — with the whole pipeline running on obfuscated data
        (train and test both privatised, the realistic deployment),
        accuracy must fall as the budget tightens."""
        X, y = blobs

        def accuracy_at(epsilon):
            X_private = privatize_dataset(X, epsilon=epsilon, seed=0)
            model = LogisticRegressionClassifier(n_epochs=20, seed=0).fit(
                X_private[:200], y[:200]
            )
            return model.score(X_private[200:], y[200:])

        generous = accuracy_at(500.0)
        tiny = accuracy_at(0.5)
        assert generous > 0.9
        assert tiny < generous - 0.2
