"""Simulated pool tier: capacity/cluster wiring, poolcrash faults, panel.

With ``ServingPolicy(pool_workers=N)`` the discrete-event stations hand
flushed batches to N simulated pool workers instead of occupying their
own service slots; ``poolcrash:node@t`` fault events kill one worker
(instant restart + resubmission of its oldest in-flight batch) and the
cluster conservation ledger must still reconcile to zero lost requests
with no double-counted telemetry.
"""

import json

import pytest

from repro.cluster import (
    FAULT_POOL_CRASH,
    ClusterRunner,
    ClusterTopology,
    FaultPlan,
)
from repro.cluster.topology import RouteSpec
from repro.core import AIDashboard
from repro.gateway import (
    CapacityRunner,
    PoissonArrivalGroup,
    build_paper_deployment,
)
from repro.gateway.simulation import Simulator
from repro.serving import ServingPolicy
from repro.telemetry import KIND_POOL


def _capacity_run(policy, rate_rps=600.0, n_requests=400, seed=3):
    sim, gateway = build_paper_deployment(seed=seed)
    runner = CapacityRunner(sim, gateway, serving=policy, seed=seed)
    runner.add_open_loop(
        PoissonArrivalGroup(
            route="shap", rate_rps=rate_rps, n_requests=n_requests
        )
    )
    report = runner.run()
    return runner, report


def _cluster(policy, n_nodes=3, replication=3, seed=3):
    topology = ClusterTopology(
        Simulator(),
        [RouteSpec("shap", concurrency=1)],
        n_nodes=n_nodes,
        replication=replication,
        seed=seed,
    )
    runner = ClusterRunner(topology, seed=seed, serving=policy)
    return topology, runner


def _pool_policy(**overrides):
    defaults = dict(max_batch=4, batch_window=0.002, pool_workers=2)
    defaults.update(overrides)
    return ServingPolicy(**defaults)


class TestCapacityPool:
    def test_pooled_run_completes_and_publishes_counters(self):
        runner, report = _capacity_run(_pool_policy(pool_workers=4))
        assert report.n_errors == 0
        stats = runner.serving_summary()["shap"]
        pool = stats["pool"]
        assert pool["workers"] == 4
        assert pool["batches"] > 0
        # pooled batches keep the serving counters comparable: every
        # batched row went through the pool, none counted twice
        assert pool["rows"] == stats["rows_batched"]
        assert pool["batches"] == stats["batches"]
        assert pool["crashes"] == 0

    def test_pool_events_on_telemetry_stride(self):
        runner, report = _capacity_run(_pool_policy())
        events = runner.serving_events(report.duration_seconds)
        pool_events = [e for e in events if e.source == "pool:shap"]
        assert pool_events
        for event in pool_events:
            assert event.kind == KIND_POOL
            assert event.attrs["workers"] == 2.0
        assert pool_events[-1].attrs["rows"] > 0

    def test_workers_zero_disables_the_tier(self):
        runner, report = _capacity_run(_pool_policy(pool_workers=0))
        assert report.n_errors == 0
        stats = runner.serving_summary()["shap"]
        assert "pool" not in stats
        events = runner.serving_events(report.duration_seconds)
        assert not [e for e in events if e.source.startswith("pool:")]

    def test_pooled_and_inline_serve_identical_workloads(self):
        __, pooled = _capacity_run(_pool_policy(pool_workers=4))
        __, inline = _capacity_run(_pool_policy(pool_workers=0))
        assert pooled.n_requests == inline.n_requests == 400
        assert pooled.n_errors == inline.n_errors == 0


class TestPolicyValidation:
    def test_pool_fields_validated(self):
        with pytest.raises(ValueError):
            ServingPolicy(pool_workers=-1)
        with pytest.raises(ValueError):
            ServingPolicy(pool_arena_mb=0.0)


class TestFaultGrammar:
    def test_poolcrash_parses(self):
        plan = FaultPlan.parse("poolcrash:node-1@0.25")
        [event] = plan.events
        assert event.kind == FAULT_POOL_CRASH
        assert event.node_id == "node-1"
        assert event.at == 0.25

    def test_poolcrash_rejects_extra_times(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("poolcrash:node-1@0.1:0.2")


class TestClusterPoolCrash:
    def test_crashes_resubmit_and_conserve(self):
        topology, runner = _cluster(_pool_policy())
        # crash the ring-preferred primary: that is where the load lands
        primary = topology.ring.preference("shap", 3)[0]
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=2000.0, n_requests=1000)
        )
        plan = FaultPlan()
        for at in (0.1, 0.15, 0.2):
            plan.add_pool_crash(primary, at)
        runner.apply_fault_plan(plan)
        report = runner.run()
        cons = runner.conservation()
        assert report.n_errors == 0
        assert cons["appended"] == cons["observed"] == 1000
        assert cons["in_flight"] == 0
        assert cons["pool_worker_crashes"] == 3
        # saturating load keeps batches in flight at the crash points,
        # so at least one actually redispatched work
        assert cons["pool_redispatched"] > 0
        summary = runner.serving_summary()["shap"]
        resubmitted = sum(
            n["pool"]["resubmitted"]
            for n in summary["nodes"].values()
            if "pool" in n
        )
        assert resubmitted == cons["pool_redispatched"]

    def test_node_crash_loses_pool_work_to_failover(self):
        topology, runner = _cluster(_pool_policy(), replication=2)
        primary = topology.ring.preference("shap", 2)[0]
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=800.0, n_requests=400)
        )
        runner.apply_fault_plan(FaultPlan().add_crash(primary, 0.25))
        runner.run()
        cons = runner.conservation()
        assert cons["appended"] == cons["observed"] == 400
        assert cons["in_flight"] == 0
        assert cons["lost_in_flight"] > 0  # pooled work died with the node
        assert cons["failovers"] >= cons["lost_in_flight"]

    def test_pool_events_are_node_qualified(self):
        __, runner = _cluster(_pool_policy())
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=500.0, n_requests=300)
        )
        runner.run()
        events = runner.serving_events(runner.sim.now)
        pool_events = [
            e for e in events if e.source.startswith("pool:")
        ]
        assert pool_events
        for event in pool_events:
            assert "@node-" in event.source
            assert event.node_id is not None
            assert event.kind == KIND_POOL


class TestDashboardPoolPanel:
    CAPACITY_SHAPE = {
        "shap": {
            "batches": 5,
            "rows_batched": 20,
            "mean_batch": 4.0,
            "shed_rows": 0,
            "pool": {
                "workers": 4,
                "batches": 5,
                "rows": 20,
                "crashes": 1,
                "restarts": 1,
                "resubmitted": 3,
                "peak_inflight": 2,
            },
        },
        "predict": {"batches": 2, "rows_batched": 4, "shed_rows": 0},
    }
    CLUSTER_SHAPE = {
        "shap": {
            "nodes": {
                "node-0": {
                    "batches": 3,
                    "rows_batched": 12,
                    "pool": {
                        "workers": 2,
                        "batches": 3,
                        "rows": 12,
                        "crashes": 0,
                        "restarts": 0,
                        "resubmitted": 0,
                        "peak_inflight": 2,
                    },
                },
                "node-1": {
                    "batches": 2,
                    "rows_batched": 8,
                    "pool": {
                        "workers": 2,
                        "batches": 2,
                        "rows": 8,
                        "crashes": 1,
                        "restarts": 1,
                        "resubmitted": 4,
                        "peak_inflight": 3,
                    },
                },
            }
        },
    }

    def test_capacity_shape_rows(self):
        [row] = AIDashboard._pool_rows(self.CAPACITY_SHAPE)
        assert row["route"] == "shap"  # predict has no pool: no row
        assert row["workers"] == 4
        assert row["mean_fan_out"] == 4.0
        assert row["crashes"] == 1 and row["resubmitted"] == 3

    def test_cluster_shape_aggregates_nodes(self):
        [row] = AIDashboard._pool_rows(self.CLUSTER_SHAPE)
        assert row["workers"] == 4  # summed across nodes
        assert row["batches"] == 5 and row["rows"] == 20
        assert row["peak_inflight"] == 3  # max, not sum
        assert row["crashes"] == 1 and row["resubmitted"] == 4

    def test_render_text_emits_pool_lines(self):
        dash = AIDashboard()
        dash.set_serving_provider(lambda: self.CAPACITY_SHAPE)
        text = dash.render_text()
        pool_lines = [
            line for line in text.splitlines() if line.startswith("POOL")
        ]
        assert len(pool_lines) == 1
        assert "workers  4" in pool_lines[0]
        assert "crashes 1 (resubmitted 3)" in pool_lines[0]

    def test_to_json_carries_pool_panel(self):
        dash = AIDashboard()
        dash.set_serving_provider(lambda: self.CLUSTER_SHAPE)
        payload = json.loads(dash.to_json())
        [row] = payload["serving"]["pool"]
        assert row["route"] == "shap"
        assert row["workers"] == 4
