"""SharedArena: slot layout, header roundtrip, input/result isolation."""

import numpy as np
import pytest

from repro.pool import SharedArena


@pytest.fixture()
def arena():
    a = SharedArena(slots=4, slot_bytes=64 * 1024)
    yield a
    a.close()
    a.unlink()


class TestRoundTrip:
    def test_input_roundtrip_bitwise(self, arena):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(7, 5))
        arena.write_input(2, seq=11, kind=1, X=X)
        seq, kind, back = arena.read_input(2)
        assert (seq, kind) == (11, 1)
        assert np.array_equal(back, X)

    def test_result_roundtrip_all_ranks(self, arena):
        rng = np.random.default_rng(1)
        arena.write_input(0, 0, 0, rng.normal(size=(3, 4)))
        for shape in [(3,), (3, 2), (3, 4, 2)]:
            R = rng.normal(size=shape)
            arena.write_result(0, R)
            assert np.array_equal(arena.read_result(0), R)

    def test_result_write_leaves_input_intact(self, arena):
        """Crash-safe resubmission depends on the regions being disjoint."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(6, 8))
        arena.write_input(1, seq=3, kind=0, X=X)
        arena.write_result(1, rng.normal(size=(6, 8, 3)))
        __, __, back = arena.read_input(1)
        assert np.array_equal(back, X)

    def test_slots_are_independent(self, arena):
        a = np.full((2, 3), 1.0)
        b = np.full((2, 3), 2.0)
        arena.write_input(0, 0, 0, a)
        arena.write_input(3, 1, 0, b)
        assert np.array_equal(arena.read_input(0)[2], a)
        assert np.array_equal(arena.read_input(3)[2], b)


class TestValidation:
    def test_oversized_batch_rejected(self, arena):
        rows = arena.capacity_rows(4) + 1
        with pytest.raises(ValueError):
            arena.write_input(0, 0, 0, np.zeros((rows, 4)))

    def test_capacity_rows_fits_exactly(self, arena):
        rows = arena.capacity_rows(4)
        arena.write_input(0, 0, 0, np.zeros((rows, 4)))  # must not raise

    def test_non_2d_input_rejected(self, arena):
        with pytest.raises(ValueError):
            arena.write_input(0, 0, 0, np.zeros(4))

    def test_tiny_slot_bytes_rejected(self):
        with pytest.raises(ValueError):
            SharedArena(slots=2, slot_bytes=32)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            SharedArena(slots=0, slot_bytes=4096)
