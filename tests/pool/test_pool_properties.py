"""Property suite: the pool is bitwise-indistinguishable from inline.

Hypothesis drives random batch splits, interleaved arrival orders and
injected worker crashes against one long-lived two-worker pool; every
example must resolve to exactly the matrices the in-process kernels
produce, with telemetry advancing by precisely the submitted work —
crash resubmission must never double-count a batch or a row.

The simulated tier gets the same treatment: random ``poolcrash`` fault
plans against a pooled cluster must conserve requests (appended ==
observed, nothing in flight) with pool counters advanced exactly once
per batch.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterRunner, ClusterTopology, FaultPlan
from repro.cluster.topology import RouteSpec
from repro.gateway.arrivals import PoissonArrivalGroup
from repro.gateway.simulation import Simulator
from repro.pool import KernelPool
from repro.serving import ServingPolicy
from repro.xai.shap import KernelShapExplainer

D = 3


def _predict(X):
    X = np.asarray(X, dtype=np.float64)
    return np.stack([X.sum(axis=1), (X * X).sum(axis=1)], axis=1)


@pytest.fixture(scope="module")
def explainer():
    rng = np.random.default_rng(0)
    return KernelShapExplainer(
        _predict, rng.normal(size=(8, D)), n_coalitions=8, seed=0
    )


@pytest.fixture(scope="module")
def pool(explainer):
    with KernelPool(_predict, explainer, workers=2, arena_mb=2.0) as p:
        yield p


def _split(total, sizes):
    """Partition ``total`` rows into batches using the drawn sizes."""
    batches, used = [], 0
    for size in sizes:
        if used == total:
            break
        take = min(size, total - used)
        batches.append((used, used + take))
        used += take
    if used < total:
        batches.append((used, total))
    return batches


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(1, 12),
    sizes=st.lists(st.integers(1, 5), min_size=1, max_size=12),
    crash_before=st.integers(-1, 10),
    explain_mask=st.integers(0, 2**12 - 1),
)
def test_random_splits_orders_and_crashes_stay_bitwise(
    pool, explainer, seed, rows, sizes, crash_before, explain_mask
):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(rows, D))
    batches = _split(rows, sizes)
    base = pool.counters()
    futures = []
    for index, (lo, hi) in enumerate(batches):
        if index == crash_before:
            pool.inject_crash(worker_id=index % pool.workers)
        if (explain_mask >> index) & 1:
            futures.append(("explain", lo, hi, pool.submit_explain(X[lo:hi])))
        else:
            futures.append(("predict", lo, hi, pool.submit_predict(X[lo:hi])))
    released = pool.drain(now=1.0)

    # deterministic ordering: release order == submission order
    assert [f.seq for f in released] == [f.seq for (_, _, _, f) in futures]

    # bitwise equality to the in-process kernels, per batch
    for kind, lo, hi, future in futures:
        expected = (
            explainer.shap_values_batch_exact(X[lo:hi])
            if kind == "explain"
            else _predict(X[lo:hi])
        )
        assert np.array_equal(future.result(), expected)

    # telemetry advanced by exactly the submitted work: resubmission
    # after a crash re-runs a batch but never re-counts it
    after = pool.counters()
    assert after["dispatched"] - base["dispatched"] == len(batches)
    assert after["completed"] - base["completed"] == len(batches)
    assert after["rows"] - base["rows"] == rows
    assert after["queue_depth"] == 0.0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**12),
    n_requests=st.integers(20, 120),
    crash_times=st.lists(
        st.floats(0.01, 0.4, allow_nan=False), max_size=3
    ),
)
def test_simulated_pool_crashes_never_lose_or_double_count(
    seed, n_requests, crash_times
):
    topology = ClusterTopology(
        Simulator(),
        [RouteSpec("shap", concurrency=1)],
        n_nodes=2,
        replication=2,
        seed=seed,
    )
    runner = ClusterRunner(
        topology,
        seed=seed,
        serving=ServingPolicy(
            max_batch=4, batch_window=0.002, pool_workers=2
        ),
    )
    runner.add_open_loop(
        PoissonArrivalGroup(
            "shap", rate_rps=500.0, n_requests=n_requests
        )
    )
    plan = FaultPlan()
    for index, at in enumerate(crash_times):
        plan.add_pool_crash(f"node-{index % 2}", at)
    runner.apply_fault_plan(plan)
    runner.run()
    cons = runner.conservation()
    # conservation: every request completes exactly once, crashes or not
    assert cons["appended"] == cons["observed"] == n_requests
    assert cons["in_flight"] == 0
    assert cons["pool_worker_crashes"] == len(crash_times)
    summary = runner.serving_summary()["shap"]
    nodes = summary["nodes"].values()
    rows_batched = sum(n["rows_batched"] for n in nodes)
    cache_hits = summary["cache"]["hits"] if "cache" in summary else 0
    assert rows_batched + cache_hits == n_requests
    # pooled rows equal batched rows: counted once, never re-advanced
    # by a resubmission
    pool_rows = sum(
        n["pool"]["rows"] for n in nodes if "pool" in n
    )
    assert pool_rows == rows_batched
