"""KernelPool: forked workers, ordered release, crash recovery, NullPool.

These tests fork real processes.  Batches stay small so each case runs
in well under a second; the ordering and crash contracts are what is
under test, not throughput (``benchmarks/bench_pool.py`` gates that).
"""

import numpy as np
import pytest

from repro.pool import (
    KIND_CODE_PREDICT,
    KernelPool,
    NullPool,
)
from repro.xai.shap import KernelShapExplainer

D = 4


def _predict(X):
    X = np.asarray(X, dtype=np.float64)
    return np.stack([X.sum(axis=1), (X * X).sum(axis=1)], axis=1)


@pytest.fixture(scope="module")
def explainer():
    rng = np.random.default_rng(0)
    return KernelShapExplainer(
        _predict, rng.normal(size=(16, D)), n_coalitions=16, seed=0
    )


@pytest.fixture()
def pool(explainer):
    p = KernelPool(_predict, explainer, workers=2, arena_mb=2.0)
    yield p
    p.close()


class TestDispatch:
    def test_predict_bitwise_equals_inline(self, pool):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(5, D))
        future = pool.submit_predict(X, now=0.0)
        assert not future.done
        [released] = pool.drain(now=1.0)
        assert released is future and future.done
        assert np.array_equal(future.result(), _predict(X))

    def test_explain_bitwise_equals_inline(self, pool, explainer):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(3, D))
        future = pool.submit_explain(X, now=0.0)
        pool.drain(now=1.0)
        assert np.array_equal(
            future.result(), explainer.shap_values_batch_exact(X)
        )

    def test_release_is_in_submission_order(self, pool):
        rng = np.random.default_rng(3)
        futures = [
            pool.submit_predict(rng.normal(size=(2, D)), now=0.0)
            for _ in range(6)
        ]
        released = pool.drain(now=1.0)
        assert [f.seq for f in released] == [f.seq for f in futures]
        assert [f.seq for f in released] == sorted(f.seq for f in released)

    def test_slot_backpressure_blocks_not_breaks(self, explainer):
        # 2 slots force submit to reap in-line once both are pinned
        pool = KernelPool(
            _predict, explainer, workers=1, arena_mb=1.0, slots=2
        )
        try:
            rng = np.random.default_rng(4)
            xs = [rng.normal(size=(3, D)) for _ in range(5)]
            futures = [pool.submit_predict(X, now=0.0) for X in xs]
            pool.drain(now=1.0)
            assert pool.slot_waits > 0
            for X, future in zip(xs, futures):
                assert np.array_equal(future.result(), _predict(X))
        finally:
            pool.close()

    def test_counters_track_dispatch(self, pool):
        rng = np.random.default_rng(5)
        pool.submit_predict(rng.normal(size=(4, D)), now=0.0)
        pool.submit_predict(rng.normal(size=(2, D)), now=0.0)
        pool.drain(now=1.0)
        counters = pool.counters()
        assert counters["dispatched"] == counters["completed"] == 2.0
        assert counters["rows"] == 6.0
        assert counters["mean_fan_out"] == 3.0
        assert counters["queue_depth"] == 0.0
        assert counters["bytes_pinned"] == 6 * D * 8

    def test_submit_validates(self, pool):
        with pytest.raises(ValueError):
            pool.submit_predict(np.zeros(D), now=0.0)
        # explain without explainer refused before any pinning
        with KernelPool(_predict, None, workers=1, arena_mb=1.0) as p:
            with pytest.raises(RuntimeError):
                p.submit_explain(np.zeros((2, D)), now=0.0)


class TestCrashRecovery:
    def test_crash_resubmits_and_loses_nothing(self, pool):
        rng = np.random.default_rng(6)
        xs = [rng.normal(size=(2, D)) for _ in range(4)]
        pool.inject_crash(worker_id=0)
        futures = [pool.submit_predict(X, now=0.0) for X in xs]
        released = pool.drain(now=1.0)
        assert len(released) == 4
        for X, future in zip(xs, futures):
            assert np.array_equal(future.result(), _predict(X))
        assert pool.crashes >= 1
        assert pool.restarts == pool.crashes
        assert pool.resubmitted >= 1
        # telemetry not double-counted: one dispatch per submit
        assert pool.dispatched == 4
        assert pool.completed == 4
        assert pool.rows_dispatched == 8

    def test_repeated_crashes_still_converge(self, explainer):
        pool = KernelPool(_predict, explainer, workers=2, arena_mb=2.0)
        try:
            rng = np.random.default_rng(7)
            xs = [rng.normal(size=(2, D)) for _ in range(6)]
            futures = []
            for i, X in enumerate(xs):
                if i % 2 == 0:
                    pool.inject_crash(worker_id=i % pool.workers)
                futures.append(pool.submit_predict(X, now=0.0))
            released = pool.drain(now=1.0)
            assert len(released) == 6
            for X, future in zip(xs, futures):
                assert np.array_equal(future.result(), _predict(X))
            assert pool.completed == 6
        finally:
            pool.close()


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, explainer):
        pool = KernelPool(_predict, explainer, workers=1, arena_mb=1.0)
        pool.submit_predict(np.zeros((2, D)), now=0.0)
        pool.drain(now=0.0)
        pool.close()
        pool.close()  # second close is a no-op
        with pytest.raises(RuntimeError):
            pool.submit_predict(np.zeros((2, D)), now=0.0)

    def test_telemetry_event_shape(self, pool):
        pool.submit_predict(np.zeros((2, D)), now=0.0)
        pool.drain(now=0.5)
        [event] = pool.telemetry_events(now=0.5, route="shap")
        assert event.source == "pool:shap"
        assert event.kind == "pool"
        assert event.attrs["workers"] == 2.0
        assert event.attrs["dispatched"] == 1.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            KernelPool(_predict, workers=0)
        with pytest.raises(ValueError):
            KernelPool(_predict, workers=1, arena_mb=0.0)


class TestNullPool:
    def test_resolves_at_submit_bitwise(self, explainer):
        pool = NullPool(_predict, explainer)
        rng = np.random.default_rng(8)
        X = rng.normal(size=(3, D))
        future = pool.submit_predict(X, now=0.0)
        assert future.done
        assert np.array_equal(future.result(), _predict(X))
        phi = pool.submit_explain(X, now=0.0)
        assert np.array_equal(
            phi.result(), explainer.shap_values_batch_exact(X)
        )
        assert pool.poll(0.0) == [] and pool.drain(0.0) == []
        assert pool.counters()["dispatched"] == 2.0
        pool.close()

    def test_kind_codes_are_stable(self):
        # the arena header encodes these; renumbering breaks live slots
        assert KIND_CODE_PREDICT == 0
