"""ServingEngine(pool=…): pooled flushes, digest reuse, shutdown snapshot."""

import numpy as np
import pytest

from repro.pool import KernelPool, NullPool
from repro.serving import ServingEngine, ServingPolicy
from repro.tracing import TraceCollector, Tracer
from repro.xai.shap import KernelShapExplainer

D = 4


def _predict(X):
    X = np.asarray(X, dtype=np.float64)
    return np.stack([X.sum(axis=1), (X * X).sum(axis=1)], axis=1)


@pytest.fixture(scope="module")
def explainer():
    rng = np.random.default_rng(0)
    return KernelShapExplainer(
        _predict, rng.normal(size=(16, D)), n_coalitions=16, seed=0
    )


def _policy(**overrides):
    defaults = dict(max_batch=4, batch_window=0.010)
    defaults.update(overrides)
    return ServingPolicy(**defaults)


class TestPooledBitwiseEquality:
    def test_predict_matches_inline_engine(self, explainer):
        rng = np.random.default_rng(1)
        xs = rng.normal(size=(10, D))
        inline = ServingEngine(_predict, explainer, _policy())
        with KernelPool(_predict, explainer, workers=2, arena_mb=2.0) as p:
            pooled = ServingEngine(_predict, explainer, _policy(), pool=p)
            inline_reqs = [inline.submit_predict(x, now=0.0) for x in xs]
            pooled_reqs = [pooled.submit_predict(x, now=0.0) for x in xs]
            inline.drain(now=0.1)
            pooled.drain(now=0.1)
            for a, b in zip(inline_reqs, pooled_reqs):
                assert np.array_equal(a.result(), b.result())
            assert pooled.batches == inline.batches
            assert pooled.rows_batched == inline.rows_batched == 10

    def test_explain_matches_inline_engine(self, explainer):
        rng = np.random.default_rng(2)
        xs = rng.normal(size=(6, D))
        inline = ServingEngine(_predict, explainer, _policy(cache_size=0))
        with KernelPool(_predict, explainer, workers=2, arena_mb=2.0) as p:
            pooled = ServingEngine(
                _predict, explainer, _policy(cache_size=0), pool=p
            )
            a_reqs = [inline.submit_explain(x, now=0.0) for x in xs]
            b_reqs = [pooled.submit_explain(x, now=0.0) for x in xs]
            inline.drain(now=0.1)
            pooled.drain(now=0.1)
            for a, b in zip(a_reqs, b_reqs):
                assert np.array_equal(a.result(), b.result())

    def test_duplicate_rows_dedup_through_arena(self, explainer):
        x = np.array([0.5, -1.0, 2.0, 0.25])
        with KernelPool(_predict, explainer, workers=1, arena_mb=2.0) as p:
            engine = ServingEngine(
                _predict, explainer, _policy(max_batch=3), pool=p
            )
            reqs = [engine.submit_explain(x, now=0.0) for _ in range(3)]
            engine.drain(now=0.1)
            values = [r.result() for r in reqs]
            assert np.array_equal(values[0], values[1])
            assert np.array_equal(values[0], values[2])
            # only the unique row crossed the boundary
            assert p.rows_dispatched == 1

    def test_nullpool_matches_inline_engine(self, explainer):
        rng = np.random.default_rng(3)
        xs = rng.normal(size=(8, D))
        inline = ServingEngine(_predict, explainer, _policy())
        pooled = ServingEngine(
            _predict, explainer, _policy(), pool=NullPool(_predict, explainer)
        )
        a_reqs = [inline.submit_predict(x, now=0.0) for x in xs]
        b_reqs = [pooled.submit_predict(x, now=0.0) for x in xs]
        inline.drain(now=0.1)
        pooled.drain(now=0.1)
        for a, b in zip(a_reqs, b_reqs):
            assert np.array_equal(a.result(), b.result())
        assert pooled.counters()["pool_inflight"] == 0.0

    def test_cache_populated_from_pooled_batches(self, explainer):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        with KernelPool(_predict, explainer, workers=1, arena_mb=2.0) as p:
            engine = ServingEngine(
                _predict, explainer, _policy(cache_size=8), pool=p
            )
            first = engine.submit_explain(x, now=0.0)
            engine.drain(now=0.1)
            second = engine.submit_explain(x, now=0.2)
            assert second.done and second.cache_hit
            assert np.array_equal(first.result(), second.result())


class TestEventLoopOverlap:
    def test_submit_keeps_admitting_while_pool_runs(self, explainer):
        with KernelPool(_predict, explainer, workers=2, arena_mb=2.0) as p:
            engine = ServingEngine(
                _predict, explainer, _policy(max_batch=2), pool=p
            )
            rng = np.random.default_rng(4)
            reqs = [
                engine.submit_predict(x, now=0.0)
                for x in rng.normal(size=(8, D))
            ]
            # four batches dispatched without blocking the loop: none
            # had to be resolved to admit the next
            assert engine.counters()["pool_inflight"] > 0.0
            engine.drain(now=0.1)
            assert all(r.done for r in reqs)
            assert engine.counters()["pool_inflight"] == 0.0

    def test_poll_resolves_in_submission_order(self, explainer):
        with KernelPool(_predict, explainer, workers=2, arena_mb=2.0) as p:
            engine = ServingEngine(
                _predict, explainer, _policy(max_batch=2), pool=p
            )
            rng = np.random.default_rng(5)
            reqs = [
                engine.submit_predict(x, now=0.0)
                for x in rng.normal(size=(6, D))
            ]
            resolved = 0
            deadline = 200  # ~10s of 50ms probes; far beyond need
            for _ in range(deadline):
                resolved += engine.poll(now=0.05)
                if resolved == 6:
                    break
                p._reap(block=True)  # let workers finish between polls
            assert resolved == 6
            done_times = [r.completed_at for r in reqs]
            assert done_times == sorted(done_times)

    def test_pooled_batches_get_retroactive_spans(self, explainer):
        collector = TraceCollector()
        tracer = Tracer(clock=lambda: 0.0, collector=collector, seed=0)
        with KernelPool(_predict, explainer, workers=1, arena_mb=2.0) as p:
            engine = ServingEngine(
                _predict,
                explainer,
                _policy(max_batch=2),
                tracer=tracer,
                pool=p,
            )
            rng = np.random.default_rng(6)
            for x in rng.normal(size=(4, D)):
                engine.submit_predict(x, now=0.0)
            engine.drain(now=0.1)
        traces = collector.traces()
        batch_spans = [
            span
            for tree in traces
            for span in tree.spans
            if span.name == "serving.batch"
        ]
        assert len(batch_spans) == 2
        for span in batch_spans:
            assert span.attributes["pooled"] == 1


class TestDigestComputedOnce:
    def test_submit_hashes_payload_exactly_once(self, explainer, monkeypatch):
        import repro.serving.engine as engine_module

        calls = {"n": 0}
        real = engine_module.digest_features

        def counting(x):
            calls["n"] += 1
            return real(x)

        monkeypatch.setattr(engine_module, "digest_features", counting)
        engine = ServingEngine(
            _predict, explainer, _policy(max_batch=2, cache_size=8)
        )
        x = np.array([1.0, 2.0, 3.0, 4.0])
        engine.submit_explain(x, now=0.0)
        engine.submit_explain(x, now=0.0)  # flush by size: dedup + cache put
        assert calls["n"] == 2  # one hash per submit, zero re-hashes
        hit = engine.submit_explain(x, now=0.1)
        assert hit.cache_hit
        assert calls["n"] == 3  # the cache-hit lookup reused its digest too

    def test_digest_carried_on_request(self, explainer):
        engine = ServingEngine(_predict, explainer, _policy())
        request = engine.submit_explain(np.ones(D), now=0.0)
        assert isinstance(request.digest, bytes)
        predict_request = engine.submit_predict(np.ones(D), now=0.0)
        assert predict_request.digest is None  # predictions never hash


class TestShutdownSnapshot:
    def test_final_snapshot_frozen_and_engine_sealed(self, explainer):
        with KernelPool(_predict, explainer, workers=1, arena_mb=2.0) as p:
            engine = ServingEngine(
                _predict, explainer, _policy(cache_size=8), pool=p
            )
            rng = np.random.default_rng(7)
            for x in rng.normal(size=(5, D)):
                engine.submit_explain(x, now=0.0)
            snapshot = engine.shutdown(now=1.0, route="shap")
        assert snapshot is engine.final_snapshot
        sources = {event.source for event in snapshot}
        assert "serving:shap" in sources
        assert "cache:shap" in sources
        assert "pool:shap" in sources
        batcher = next(
            e for e in snapshot if e.source == "serving:shap"
        )
        assert batcher.attrs["rows"] == 5.0
        assert batcher.attrs["pending"] == 0.0  # drained before freezing
        with pytest.raises(RuntimeError):
            engine.submit_predict(np.ones(D), now=2.0)

    def test_shutdown_drains_pending_work_first(self, explainer):
        engine = ServingEngine(
            _predict, explainer, _policy(max_batch=64, batch_window=5.0)
        )
        request = engine.submit_predict(np.ones(D), now=0.0)
        assert not request.done  # parked behind the long window
        engine.shutdown(now=1.0)
        assert request.done  # drained, not dropped

    def test_shutdown_is_idempotent(self, explainer):
        engine = ServingEngine(_predict, explainer, _policy())
        first = engine.shutdown(now=1.0)
        second = engine.shutdown(now=2.0)
        # the frozen snapshot is returned again, not re-measured at t=2
        assert [e.timestamp for e in second] == [1.0] * len(first)
        assert [(e.source, e.value) for e in second] == [
            (e.source, e.value) for e in first
        ]

    def test_shutdown_closes_pool(self, explainer):
        pool = KernelPool(_predict, explainer, workers=1, arena_mb=2.0)
        engine = ServingEngine(_predict, explainer, _policy(), pool=pool)
        engine.submit_predict(np.ones(D), now=0.0)
        engine.shutdown(now=1.0)
        with pytest.raises(RuntimeError):
            pool.submit_predict(np.ones((2, D)), now=2.0)
