"""AdmissionController policy + the typed shed-error contract."""

import pytest

from repro.serving import (
    AdmissionController,
    SHED_DEADLINE_MESSAGE,
    SHED_ERROR_MESSAGE,
    SHED_ERROR_PREFIX,
    is_shed_error,
)


class TestShedErrorContract:
    def test_messages_carry_the_prefix(self):
        assert is_shed_error(SHED_ERROR_MESSAGE)
        assert is_shed_error(SHED_DEADLINE_MESSAGE)

    def test_node_qualified_variants_still_match(self):
        # the cluster appends " at <node>/<route>"; the prefix match is
        # what keeps attribution working end to end
        assert is_shed_error(f"{SHED_ERROR_MESSAGE} at node-3/shap")

    def test_other_errors_do_not_match(self):
        assert not is_shed_error(None)
        assert not is_shed_error("")
        assert not is_shed_error("429 rate limited")
        assert not is_shed_error("503 service unavailable")

    def test_shed_total_source_does_not_alias_markers(self):
        # the cluster's end-of-run cumulative snapshot must not be
        # double-counted by the window-sum attribution join
        assert not "shed_total:shap".startswith("shed:")


class TestAdmissionController:
    def test_disabled_never_sheds(self):
        controller = AdmissionController(0)
        assert not controller.over_depth(10**6)

    def test_depth_threshold(self):
        controller = AdmissionController(4)
        assert not controller.over_depth(3)
        assert controller.over_depth(4)
        assert controller.over_depth(5)

    def test_deadline_expiry(self):
        assert not AdmissionController.expired(None, 100.0)
        assert not AdmissionController.expired(1.0, 1.0)
        assert AdmissionController.expired(1.0, 1.001)

    def test_counters(self):
        controller = AdmissionController(1)
        controller.note_admitted()
        controller.note_shed()
        controller.note_shed(deadline=True)
        assert controller.shed == 2
        counters = controller.counters()
        assert counters["admitted"] == 1.0
        assert counters["shed_overload"] == 1.0
        assert counters["shed_deadline"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(-1)
