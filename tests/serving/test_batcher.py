"""MicroBatcher: size/deadline triggers, shape grouping, eviction."""

import numpy as np
import pytest

from repro.serving import (
    KIND_EXPLAIN,
    KIND_PREDICT,
    MicroBatcher,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    ServingRequest,
    TRIGGER_DEADLINE,
    TRIGGER_DRAIN,
    TRIGGER_SIZE,
)


def _request(kind=KIND_PREDICT, d=4, priority=PRIORITY_INTERACTIVE, at=0.0):
    return ServingRequest(kind, np.zeros(d), priority, at)


class TestTriggers:
    def test_size_trigger_flushes_exactly_max_batch(self):
        batcher = MicroBatcher(max_batch=3, window=1.0)
        assert batcher.add(_request(), now=0.0) is None
        assert batcher.add(_request(), now=0.0) is None
        batch = batcher.add(_request(), now=0.0)
        assert batch is not None
        assert batch.trigger == TRIGGER_SIZE
        assert len(batch) == 3
        assert batcher.pending == 0

    def test_deadline_trigger_keyed_to_oldest_request(self):
        batcher = MicroBatcher(max_batch=8, window=0.010)
        batcher.add(_request(at=0.0), now=0.0)
        batcher.add(_request(at=0.008), now=0.008)
        assert batcher.due(0.009) == []
        batches = batcher.due(0.010)
        assert len(batches) == 1
        assert batches[0].trigger == TRIGGER_DEADLINE
        assert len(batches[0]) == 2

    def test_next_deadline_tracks_live_groups(self):
        batcher = MicroBatcher(max_batch=8, window=0.005)
        assert batcher.next_deadline() is None
        batcher.add(_request(), now=1.0)
        assert batcher.next_deadline() == pytest.approx(1.005)
        batcher.due(2.0)
        assert batcher.next_deadline() is None

    def test_drain_flushes_everything(self):
        batcher = MicroBatcher(max_batch=8, window=1.0)
        batcher.add(_request(KIND_PREDICT), now=0.0)
        batcher.add(_request(KIND_EXPLAIN), now=0.0)
        batches = batcher.drain()
        assert {b.trigger for b in batches} == {TRIGGER_DRAIN}
        assert sum(len(b) for b in batches) == 2
        assert batcher.pending == 0


class TestGrouping:
    def test_kinds_never_mix(self):
        batcher = MicroBatcher(max_batch=2, window=1.0)
        batcher.add(_request(KIND_PREDICT), now=0.0)
        batch = None
        for __ in range(2):
            batch = batcher.add(_request(KIND_EXPLAIN), now=0.0)
        assert batch is not None
        assert batch.kind == KIND_EXPLAIN
        assert all(r.kind == KIND_EXPLAIN for r in batch.requests)

    def test_payload_shapes_never_mix(self):
        batcher = MicroBatcher(max_batch=2, window=1.0)
        batcher.add(_request(d=4), now=0.0)
        batcher.add(_request(d=6), now=0.0)
        batch = batcher.add(_request(d=6), now=0.0)
        assert batch is not None
        assert all(r.x.shape == (6,) for r in batch.requests)
        assert batcher.pending == 1  # the d=4 request still queued


class TestEviction:
    def test_evicts_newest_batch_priority_victim(self):
        batcher = MicroBatcher(max_batch=8, window=1.0)
        old = _request(priority=PRIORITY_BATCH)
        new = _request(priority=PRIORITY_BATCH)
        batcher.add(old, now=0.0)
        batcher.add(new, now=0.1)
        victim = batcher.evict_one(PRIORITY_BATCH)
        assert victim is new
        assert batcher.pending == 1

    def test_never_evicts_interactive_work(self):
        batcher = MicroBatcher(max_batch=8, window=1.0)
        batcher.add(_request(priority=PRIORITY_INTERACTIVE), now=0.0)
        assert batcher.evict_one(PRIORITY_BATCH) is None
        assert batcher.pending == 1


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(window=-0.1)

    def test_result_raises_until_done(self):
        request = _request()
        with pytest.raises(RuntimeError):
            request.result()
        request.fail("503 shed (admission overload)", now=1.0)
        with pytest.raises(RuntimeError, match="503 shed"):
            request.result()
        assert request.latency == pytest.approx(1.0)
