"""Property tests: batching and caching never change a result bit.

Two serving-layer invariants under randomised workloads:

- whatever order requests arrive in, and however size/deadline triggers
  carve them into batches, every resolved result is bitwise-equal to
  the per-request kernel oracle;
- a cache hit returns exactly what recomputation would (identical to
  within 1e-16 — in fact bitwise, since attributions are pure functions
  of the feature vector).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.serving import ServingEngine, ServingPolicy
from repro.xai.shap import KernelShapExplainer

D = 3
VECTOR_POOL = np.array(
    [
        [0.0, 0.0, 0.0],
        [1.0, -1.0, 0.5],
        [0.25, 2.0, -0.75],
        [-1.5, 0.125, 1.0],
        [3.0, -0.5, -2.0],
        [0.1, 0.2, 0.3],
    ]
)


def _predict(X):
    X = np.asarray(X, dtype=np.float64)
    # row-wise reductions only: bitwise row-stable across batch widths
    return np.stack([X.sum(axis=1), (X * X).sum(axis=1)], axis=1)


_EXPLAINER = KernelShapExplainer(
    _predict, VECTOR_POOL, n_coalitions=8, seed=0
)
#: Per-request oracle, computed once per distinct pool vector (both
#: kernels are pure functions of the vector).
_ORACLE_PREDICT = [_predict(v[None])[0] for v in VECTOR_POOL]
_ORACLE_EXPLAIN = [_EXPLAINER.shap_values(v) for v in VECTOR_POOL]

workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(VECTOR_POOL) - 1),
        st.booleans(),  # True = explain, False = predict
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=15, deadline=None)
@given(
    workload=workloads,
    max_batch=st.integers(min_value=1, max_value=6),
    flush_every=st.integers(min_value=1, max_value=9),
)
def test_batched_results_bitwise_equal_any_arrival_order(
    workload, max_batch, flush_every
):
    engine = ServingEngine(
        _predict,
        _EXPLAINER,
        ServingPolicy(max_batch=max_batch, batch_window=0.004),
    )
    requests = []
    for i, (vector_id, explain) in enumerate(workload):
        now = i * 0.001
        deadline = engine.next_deadline()
        if deadline is not None and deadline <= now:
            engine.flush_due(now)
        x = VECTOR_POOL[vector_id]
        if explain:
            requests.append((vector_id, True, engine.submit_explain(x, now)))
        else:
            requests.append((vector_id, False, engine.submit_predict(x, now)))
        if (i + 1) % flush_every == 0:
            engine.flush_due(now)
    engine.drain(len(workload) * 0.001)
    for vector_id, explain, request in requests:
        assert request.done
        oracle = (
            _ORACLE_EXPLAIN[vector_id] if explain
            else _ORACLE_PREDICT[vector_id]
        )
        assert np.array_equal(request.result(), oracle)


@settings(max_examples=15, deadline=None)
@given(
    lookups=st.lists(
        st.integers(min_value=0, max_value=len(VECTOR_POOL) - 1),
        min_size=2,
        max_size=30,
    ),
    cache_size=st.integers(min_value=1, max_value=8),
)
def test_cache_hits_identical_to_recomputation(lookups, cache_size):
    engine = ServingEngine(
        _predict,
        _EXPLAINER,
        ServingPolicy(max_batch=1, cache_size=cache_size),
    )
    for i, vector_id in enumerate(lookups):
        request = engine.submit_explain(VECTOR_POOL[vector_id], now=i * 0.001)
        assert request.done  # max_batch=1: every miss flushes immediately
        fresh = _ORACLE_EXPLAIN[vector_id]
        if request.cache_hit:
            np.testing.assert_allclose(
                request.result(), fresh, rtol=0.0, atol=1e-16
            )
        # hit or miss, the serving layer returns the oracle's bits
        assert np.array_equal(request.result(), fresh)
