"""ExplanationCache: LRU bounds, TTL expiry, digest canonicalisation."""

import numpy as np
import pytest

from repro.serving import ExplanationCache, digest_features


class TestDigest:
    def test_content_addressed(self):
        x = np.array([1.0, 2.0, 3.0])
        assert digest_features(x) == digest_features(x.copy())
        assert digest_features(x) != digest_features(x + 1e-12)

    def test_dtype_and_striding_canonicalised(self):
        x = np.array([1, 2, 3], dtype=np.int32)
        y = np.array([1.0, 2.0, 3.0])
        assert digest_features(x) == digest_features(y)
        wide = np.array([[1.0, 9.0], [2.0, 9.0], [3.0, 9.0]])
        assert digest_features(wide[:, 0]) == digest_features(y)


class TestExplanationCache:
    def test_miss_then_hit(self):
        cache = ExplanationCache(4)
        assert cache.get(b"k", now=0.0) is None
        cache.put(b"k", "value", now=0.0)
        assert cache.get(b"k", now=1.0) == "value"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_is_bounded(self):
        cache = ExplanationCache(2)
        cache.put(b"a", 1, now=0.0)
        cache.put(b"b", 2, now=0.0)
        cache.get(b"a", now=0.0)  # refresh a; b becomes LRU
        cache.put(b"c", 3, now=0.0)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(b"b", now=0.0) is None
        assert cache.get(b"a", now=0.0) == 1

    def test_ttl_expiry_counts_as_miss(self):
        cache = ExplanationCache(4, ttl=1.0)
        cache.put(b"k", "v", now=0.0)
        assert cache.get(b"k", now=0.5) == "v"
        assert cache.get(b"k", now=2.0) is None
        assert cache.expirations == 1
        assert cache.misses == 1
        assert len(cache) == 0

    def test_put_refresh_does_not_evict(self):
        cache = ExplanationCache(2)
        cache.put(b"a", 1, now=0.0)
        cache.put(b"b", 2, now=0.0)
        cache.put(b"a", 10, now=1.0)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get(b"a", now=1.0) == 10

    def test_counters_snapshot(self):
        cache = ExplanationCache(2)
        cache.put(b"a", 1, now=0.0)
        cache.get(b"a", now=0.0)
        cache.get(b"z", now=0.0)
        counters = cache.counters()
        assert counters["hits"] == 1.0
        assert counters["misses"] == 1.0
        assert counters["size"] == 1.0
        assert counters["hit_rate"] == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplanationCache(0)
        with pytest.raises(ValueError):
            ExplanationCache(4, ttl=0.0)
