"""ServingEngine: fused execution, cache hits, shedding, telemetry."""

import numpy as np
import pytest

from repro.serving import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SHED_DEADLINE_MESSAGE,
    ServingEngine,
    ServingPolicy,
    is_shed_error,
)
from repro.xai.shap import KernelShapExplainer

D = 4


def _predict(X):
    X = np.asarray(X, dtype=np.float64)
    # row-wise reductions only: bitwise row-stable across batch widths
    return np.stack([X.sum(axis=1), (X * X).sum(axis=1)], axis=1)


@pytest.fixture()
def explainer():
    rng = np.random.default_rng(0)
    return KernelShapExplainer(
        _predict, rng.normal(size=(16, D)), n_coalitions=16, seed=0
    )


def _engine(explainer, **overrides):
    defaults = dict(max_batch=4, batch_window=0.010)
    defaults.update(overrides)
    return ServingEngine(_predict, explainer, ServingPolicy(**defaults))


class TestFusedExecution:
    def test_predict_batch_matches_per_request_bitwise(self, explainer):
        engine = _engine(explainer)
        rng = np.random.default_rng(1)
        xs = rng.normal(size=(4, D))
        requests = [engine.submit_predict(x, now=0.0) for x in xs]
        assert all(r.done for r in requests)  # size trigger fired
        for x, request in zip(xs, requests):
            assert np.array_equal(request.result(), _predict(x[None])[0])
        assert engine.batches == 1
        assert engine.flushed_by_size == 1

    def test_explain_batch_matches_per_request_bitwise(self, explainer):
        engine = _engine(explainer)
        rng = np.random.default_rng(2)
        xs = rng.normal(size=(3, D))
        requests = [engine.submit_explain(x, now=0.0) for x in xs]
        engine.drain(now=0.001)
        for x, request in zip(xs, requests):
            assert np.array_equal(request.result(), explainer.shap_values(x))

    def test_deadline_flush(self, explainer):
        engine = _engine(explainer, batch_window=0.005)
        request = engine.submit_predict(np.ones(D), now=0.0)
        assert not request.done
        assert engine.next_deadline() == pytest.approx(0.005)
        assert engine.flush_due(0.004) == 0
        assert engine.flush_due(0.005) == 1
        assert request.done
        assert engine.flushed_by_deadline == 1

    def test_explain_requires_explainer(self):
        engine = ServingEngine(_predict, explainer=None)
        with pytest.raises(RuntimeError):
            engine.submit_explain(np.ones(D), now=0.0)


class TestCache:
    def test_repeat_explains_hit_and_bits_match(self, explainer):
        engine = _engine(explainer, cache_size=8)
        x = np.array([0.5, -1.0, 2.0, 0.25])
        first = engine.submit_explain(x, now=0.0)
        engine.drain(now=0.001)
        second = engine.submit_explain(x.copy(), now=0.002)
        assert second.cache_hit
        assert second.done
        assert np.array_equal(second.result(), first.result())
        assert engine.cache.hits == 1

    def test_in_batch_duplicates_share_one_solve(self, explainer):
        engine = _engine(explainer, cache_size=8)
        x = np.array([1.0, 2.0, 3.0, 4.0])
        a = engine.submit_explain(x, now=0.0)
        b = engine.submit_explain(x.copy(), now=0.0)
        engine.drain(now=0.001)
        assert np.array_equal(a.result(), b.result())
        assert np.array_equal(a.result(), explainer.shap_values(x))


class TestAdmission:
    def test_batch_priority_shed_at_depth(self, explainer):
        engine = _engine(explainer, max_batch=16, shed_depth=2)
        for __ in range(2):
            engine.submit_predict(np.ones(D), now=0.0, priority=PRIORITY_BATCH)
        shed = engine.submit_predict(
            np.ones(D), now=0.0, priority=PRIORITY_BATCH
        )
        assert shed.done
        assert is_shed_error(shed.error)
        assert engine.admission.shed_overload == 1

    def test_interactive_displaces_queued_batch_work(self, explainer):
        engine = _engine(explainer, max_batch=16, shed_depth=2)
        victims = [
            engine.submit_predict(
                np.ones(D), now=0.0, priority=PRIORITY_BATCH
            )
            for __ in range(2)
        ]
        vip = engine.submit_predict(
            np.ones(D), now=0.0, priority=PRIORITY_INTERACTIVE
        )
        assert not vip.done  # admitted into the queue
        assert any(v.done and is_shed_error(v.error) for v in victims)

    def test_interactive_shed_when_no_victim(self, explainer):
        engine = _engine(explainer, max_batch=16, shed_depth=2)
        for __ in range(2):
            engine.submit_predict(
                np.ones(D), now=0.0, priority=PRIORITY_INTERACTIVE
            )
        shed = engine.submit_predict(
            np.ones(D), now=0.0, priority=PRIORITY_INTERACTIVE
        )
        assert shed.done
        assert is_shed_error(shed.error)

    def test_expired_deadline_fails_typed_at_flush(self, explainer):
        engine = _engine(explainer, batch_window=0.010)
        request = engine.submit_predict(np.ones(D), now=0.0, deadline=0.002)
        engine.flush_due(0.010)
        assert request.error == SHED_DEADLINE_MESSAGE
        assert engine.admission.shed_deadline == 1


class TestTelemetry:
    def test_event_sources_and_counters(self, explainer):
        engine = _engine(explainer, cache_size=8)
        x = np.ones(D)
        engine.submit_explain(x, now=0.0)
        engine.drain(now=0.001)
        engine.submit_explain(x, now=0.002)
        events = engine.telemetry_events(now=1.0, route="shap")
        sources = {event.source for event in events}
        assert sources == {"serving:shap", "shed:shap", "cache:shap"}
        counters = engine.counters()
        assert counters["batches"] == 1.0
        assert counters["cache_hits"] == 1.0
