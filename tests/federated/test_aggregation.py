"""Tests for the federated aggregation rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.aggregation import coordinate_median, fedavg, trimmed_mean


def updates_from(values):
    """Build single-parameter updates from scalar values."""
    return [[np.array([[float(v)]])] for v in values]


class TestFedAvg:
    def test_uniform_mean(self):
        result = fedavg(updates_from([1.0, 2.0, 3.0]))
        assert result[0][0, 0] == pytest.approx(2.0)

    def test_weighted_mean(self):
        result = fedavg(updates_from([0.0, 10.0]), weights=[3.0, 1.0])
        assert result[0][0, 0] == pytest.approx(2.5)

    def test_multiple_parameters(self):
        updates = [
            [np.ones((2, 2)), np.zeros(2)],
            [3 * np.ones((2, 2)), 2 * np.ones(2)],
        ]
        result = fedavg(updates)
        assert np.allclose(result[0], 2.0)
        assert np.allclose(result[1], 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fedavg([[np.ones((2, 2))], [np.ones((3, 3))]])

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            fedavg([[np.ones(2)], [np.ones(2), np.ones(2)]])

    def test_wrong_weight_count_raises(self):
        with pytest.raises(ValueError):
            fedavg(updates_from([1, 2]), weights=[1.0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            fedavg(updates_from([1, 2]), weights=[-1.0, 2.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=8))
    def test_between_min_and_max_property(self, values):
        result = fedavg(updates_from(values))[0][0, 0]
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9


class TestCoordinateMedian:
    def test_median(self):
        result = coordinate_median(updates_from([1.0, 100.0, 2.0]))
        assert result[0][0, 0] == pytest.approx(2.0)

    def test_robust_to_minority_outlier(self):
        """One wild client out of five cannot move the median far."""
        honest = [1.0, 1.1, 0.9, 1.05]
        result = coordinate_median(updates_from(honest + [1e6]))
        assert abs(result[0][0, 0] - 1.0) < 0.2

    def test_elementwise(self):
        updates = [
            [np.array([0.0, 10.0])],
            [np.array([1.0, 20.0])],
            [np.array([100.0, 30.0])],
        ]
        result = coordinate_median(updates)
        assert result[0].tolist() == [1.0, 20.0]


class TestTrimmedMean:
    def test_trims_extremes(self):
        result = trimmed_mean(updates_from([0.0, 1.0, 2.0, 3.0, 1000.0]), trim=1)
        assert result[0][0, 0] == pytest.approx(2.0)

    def test_trim_zero_is_mean(self):
        result = trimmed_mean(updates_from([1.0, 2.0, 3.0]), trim=0)
        assert result[0][0, 0] == pytest.approx(2.0)

    def test_over_trim_raises(self):
        with pytest.raises(ValueError):
            trimmed_mean(updates_from([1.0, 2.0]), trim=1)

    def test_negative_trim_raises(self):
        with pytest.raises(ValueError):
            trimmed_mean(updates_from([1.0, 2.0, 3.0]), trim=-1)

    def test_robust_to_trim_poisoners(self):
        honest = [1.0] * 6
        poisoned = [-1e6, 1e6]
        result = trimmed_mean(updates_from(honest + poisoned), trim=2)
        assert result[0][0, 0] == pytest.approx(1.0)
