"""Tests for federated clients (honest and malicious)."""

import numpy as np
import pytest

from repro.federated.client import FederatedClient, MaliciousClient
from repro.ml.neural import MLPClassifier


@pytest.fixture()
def global_model(blobs):
    X, y = blobs
    model = MLPClassifier(hidden_layers=(8,), seed=0)
    model.initialize(X.shape[1], np.unique(y))
    return model


@pytest.fixture()
def shard(blobs):
    X, y = blobs
    return X[:100], y[:100]


class TestFederatedClient:
    def test_local_update_changes_parameters(self, global_model, shard):
        X, y = shard
        client = FederatedClient(0, X, y)
        update = client.local_update(global_model, local_epochs=2)
        before = global_model.get_parameters()
        assert any(
            not np.allclose(u, b) for u, b in zip(update, before)
        ), "training must move the weights"

    def test_global_model_untouched(self, global_model, shard):
        X, y = shard
        before = [p.copy() for p in global_model.get_parameters()]
        FederatedClient(0, X, y).local_update(global_model)
        after = global_model.get_parameters()
        assert all(np.array_equal(a, b) for a, b in zip(after, before))

    def test_update_improves_local_fit(self, global_model, shard):
        X, y = shard
        client = FederatedClient(0, X, y)
        update = client.local_update(global_model, local_epochs=5)
        local = MLPClassifier(hidden_layers=(8,), seed=0)
        local.initialize(X.shape[1], global_model.classes_)
        local.set_parameters(update)
        untrained_acc = global_model.score(X, y)
        assert local.score(X, y) >= untrained_acc

    def test_empty_shard_raises(self):
        with pytest.raises(ValueError):
            FederatedClient(0, np.empty((0, 3)), np.empty(0))

    def test_misaligned_shard_raises(self):
        with pytest.raises(ValueError):
            FederatedClient(0, np.ones((3, 2)), np.ones(4))

    def test_n_samples(self, shard):
        X, y = shard
        assert FederatedClient(0, X, y).n_samples == 100


class TestMaliciousClient:
    def test_flip_rate_changes_local_labels(self, shard):
        X, y = shard
        client = MaliciousClient(0, X, y, flip_rate=0.5, seed=0)
        __, y_local = client._local_data()
        assert np.sum(y_local != y) == 50

    def test_flip_rate_zero_is_honest(self, shard):
        X, y = shard
        client = MaliciousClient(0, X, y, flip_rate=0.0)
        __, y_local = client._local_data()
        assert np.array_equal(y_local, y)

    def test_invalid_flip_rate_raises(self, shard):
        X, y = shard
        with pytest.raises(ValueError):
            MaliciousClient(0, X, y, flip_rate=1.5)

    def test_update_scaling_inverts_delta(self, global_model, shard):
        X, y = shard
        honest = FederatedClient(0, X, y)
        attacker = MaliciousClient(0, X, y, update_scale=-1.0)
        base = global_model.get_parameters()
        honest_update = honest.local_update(global_model, local_epochs=1)
        poisoned_update = attacker.local_update(global_model, local_epochs=1)
        for b, h, p in zip(base, honest_update, poisoned_update):
            assert np.allclose(p - b, -(h - b), atol=1e-9)

    def test_update_scale_one_is_honest(self, global_model, shard):
        X, y = shard
        honest = FederatedClient(0, X, y)
        neutral = MaliciousClient(0, X, y, update_scale=1.0)
        h = honest.local_update(global_model)
        n = neutral.local_update(global_model)
        assert all(np.allclose(a, b) for a, b in zip(h, n))
