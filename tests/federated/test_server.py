"""Tests for the federated trainer (the Fig. 2(c) loop)."""

import numpy as np
import pytest

from repro.federated import (
    FederatedClient,
    FederatedTrainer,
    MaliciousClient,
    coordinate_median,
    trimmed_mean,
)


def make_clients(blobs, n_clients=5, malicious=0, **malicious_kwargs):
    X, y = blobs
    per = len(y) // n_clients
    clients = []
    for i in range(n_clients):
        shard = slice(i * per, (i + 1) * per)
        if i < malicious:
            clients.append(
                MaliciousClient(i, X[shard], y[shard], **malicious_kwargs)
            )
        else:
            clients.append(FederatedClient(i, X[shard], y[shard]))
    return clients


@pytest.fixture()
def eval_data(blobs):
    X, y = blobs
    return X[:80], y[:80]


class TestFederatedTrainer:
    def test_converges_on_separable_data(self, blobs, eval_data):
        trainer = FederatedTrainer(make_clients(blobs), seed=0)
        records = trainer.run(8, local_epochs=2, eval_data=eval_data)
        assert records[-1].global_accuracy > 0.9

    def test_round_records(self, blobs, eval_data):
        trainer = FederatedTrainer(make_clients(blobs), seed=0)
        records = trainer.run(3, eval_data=eval_data)
        assert [r.round_index for r in records] == [0, 1, 2]
        assert all(len(r.participants) == 5 for r in records)
        assert trainer.n_rounds == 3

    def test_partial_participation(self, blobs):
        trainer = FederatedTrainer(make_clients(blobs), seed=0)
        record = trainer.run_round(participation=0.4)
        assert len(record.participants) == 2

    def test_invalid_participation_raises(self, blobs):
        trainer = FederatedTrainer(make_clients(blobs), seed=0)
        with pytest.raises(ValueError):
            trainer.run_round(participation=0.0)

    def test_no_clients_raises(self):
        with pytest.raises(ValueError):
            FederatedTrainer([])

    def test_invalid_round_count_raises(self, blobs):
        trainer = FederatedTrainer(make_clients(blobs), seed=0)
        with pytest.raises(ValueError):
            trainer.run(0)

    def test_global_model_usable_by_sensors(self, blobs, eval_data):
        """The global model satisfies the same Classifier contract the
        centralised sensors expect — the architecture's design point."""
        trainer = FederatedTrainer(make_clients(blobs), seed=0)
        trainer.run(5, local_epochs=2)
        X_eval, __ = eval_data
        proba = trainer.global_model.predict_proba(X_eval)
        assert proba.shape == (80, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestPoisoningAndDefense:
    def test_model_poisoning_breaks_fedavg(self, blobs, eval_data):
        clean = FederatedTrainer(make_clients(blobs), seed=0)
        clean.run(8, local_epochs=2, eval_data=eval_data)
        poisoned = FederatedTrainer(
            make_clients(blobs, malicious=2, update_scale=-5.0), seed=0
        )
        poisoned.run(8, local_epochs=2, eval_data=eval_data)
        assert (
            poisoned.history[-1].global_accuracy
            < clean.history[-1].global_accuracy
        )

    @pytest.mark.parametrize(
        "aggregator",
        [coordinate_median, lambda u: trimmed_mean(u, trim=2)],
        ids=["median", "trimmed_mean"],
    )
    def test_robust_aggregation_survives_model_poisoning(
        self, blobs, eval_data, aggregator
    ):
        trainer = FederatedTrainer(
            make_clients(blobs, malicious=2, update_scale=-5.0),
            seed=0,
            aggregator=aggregator,
        )
        records = trainer.run(8, local_epochs=2, eval_data=eval_data)
        assert records[-1].global_accuracy > 0.9

    def test_label_flipping_clients_degrade_less_than_model_poisoning(
        self, blobs, eval_data
    ):
        flippers = FederatedTrainer(
            make_clients(blobs, malicious=2, flip_rate=0.8), seed=0
        )
        flippers.run(8, local_epochs=2, eval_data=eval_data)
        # 3 of 5 honest clients still dominate FedAvg; accuracy stays usable
        assert flippers.history[-1].global_accuracy > 0.7
