"""Executes the documented tutorial flow end-to-end (docs/TUTORIAL.md).

If this test breaks, the tutorial is lying to users — fix both together.
"""

import numpy as np

from repro.attacks import RandomLabelFlippingAttack
from repro.core import (
    AIDashboard,
    AlertRule,
    ContinuousMonitor,
    DataQualitySensor,
    LabelSanitizationAction,
    ModelContext,
    PerformanceSensor,
    SensorRegistry,
    generate_model_card,
    verify_export,
)
from repro.datasets import generate_unimib_like, to_binary_fall_task
from repro.gateway import LoadGenerator, ThreadGroup, build_paper_deployment
from repro.ml import RandomForestClassifier, StandardScaler
from repro.ml.pipeline import AIPipeline


def test_tutorial_flow():
    # 1. data + pipeline
    dataset = generate_unimib_like(n_samples=1200, seed=0)
    X, y = to_binary_fall_task(dataset)
    X = StandardScaler().fit_transform(X)
    pipeline = AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=15, max_depth=12, seed=0
        ),
        seed=0,
    )
    context = pipeline.run()
    assert context.evaluation["accuracy"] > 0.8

    # 2. sensors + coverage
    registry = SensorRegistry()
    registry.register(PerformanceSensor(clock=lambda: 0.0))
    registry.register(DataQualitySensor(clock=lambda: 0.0))
    assert registry.coverage_report()["unmonitored_vulnerabilities"]

    # 3. dashboard + monitor
    dashboard = AIDashboard()
    dashboard.add_rule(
        AlertRule(sensor="performance", threshold=0.8, message="SLO")
    )

    def current_context():
        ctx = pipeline.context
        return ModelContext(
            model=ctx.model,
            X_train=ctx.X_train,
            y_train=ctx.y_train,
            X_test=ctx.X_test,
            y_test=ctx.y_test,
            model_version=ctx.model_version,
        )

    monitor = ContinuousMonitor(registry, dashboard, current_context)
    assert monitor.on_model_update() is not None
    monitor.run(2)
    clean_value = dashboard.latest("performance").value
    assert dashboard.alerts() == []

    # 4. attack, detection, countermeasure
    attack = RandomLabelFlippingAttack(rate=0.45, seed=0)
    pipeline.update_labeler(lambda X_, y_: attack.apply(X_, y_).y)
    pipeline.run()
    monitor.on_model_update()
    poisoned_value = dashboard.latest("performance").value
    assert poisoned_value < clean_value
    assert dashboard.alerts(), "the SLO alert must fire under poisoning"

    LabelSanitizationAction(k=7, threshold=0.7).apply(pipeline)
    monitor.on_model_update()
    recovered_value = dashboard.latest("performance").value
    assert recovered_value > poisoned_value

    # 5. the simulated deployment
    sim, gateway = build_paper_deployment(seed=1)
    generator = LoadGenerator(sim, gateway)
    generator.add_thread_group(
        ThreadGroup(
            route="shap", n_threads=20, rampup_seconds=1.0, iterations=10
        )
    )
    report = generator.run()
    assert report.error_rate == 0.0

    # 6. compliance artifacts
    card = generate_model_card(
        pipeline, dashboard=dashboard, registry=registry
    )
    assert "## Evaluation" in card
    audit = verify_export(dashboard.to_json())
    assert audit.passed
