"""Tests for the CTGAN-stand-in synthesizer and GAN poisoning attack."""

import numpy as np
import pytest

from repro.attacks.gan_poisoning import GanPoisoningAttack, TableSynthesizer


@pytest.fixture()
def class_data():
    gen = np.random.default_rng(0)
    X0 = gen.normal(loc=0.0, scale=1.0, size=(120, 3))
    X1 = gen.normal(loc=8.0, scale=1.0, size=(80, 3))
    X = np.vstack([X0, X1])
    y = np.array([0] * 120 + [1] * 80)
    return X, y


class TestTableSynthesizer:
    def test_samples_resemble_source_class(self, class_data):
        X, y = class_data
        synth = TableSynthesizer(seed=0).fit(X, y)
        fake0 = synth.sample(200, label=0)
        fake1 = synth.sample(200, label=1)
        assert abs(fake0.mean() - 0.0) < 1.0
        assert abs(fake1.mean() - 8.0) < 1.0

    def test_sample_shape(self, class_data):
        X, y = class_data
        synth = TableSynthesizer(seed=0).fit(X, y)
        assert synth.sample(17).shape == (17, 3)

    def test_sample_with_labels_respects_prior(self, class_data):
        X, y = class_data
        synth = TableSynthesizer(seed=0).fit(X, y)
        __, labels = synth.sample_with_labels(400)
        frac0 = np.mean([l == 0 for l in labels])
        assert 0.4 < frac0 < 0.8  # prior is 0.6

    def test_multimodal_column_modelled(self):
        gen = np.random.default_rng(1)
        bimodal = np.concatenate(
            [gen.normal(-5, 0.3, 300), gen.normal(5, 0.3, 300)]
        ).reshape(-1, 1)
        y = np.zeros(600, dtype=int)
        synth = TableSynthesizer(n_modes=2, seed=0).fit(bimodal, y)
        fake = synth.sample(500, label=0).ravel()
        # samples should land near both modes, almost never in the middle
        assert np.mean(np.abs(fake) < 2.0) < 0.1
        assert np.mean(fake < -2.0) > 0.25
        assert np.mean(fake > 2.0) > 0.25

    def test_unknown_label_raises(self, class_data):
        X, y = class_data
        synth = TableSynthesizer(seed=0).fit(X, y)
        with pytest.raises(ValueError):
            synth.sample(5, label=99)

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TableSynthesizer().sample(5)

    def test_invalid_n_modes(self):
        with pytest.raises(ValueError):
            TableSynthesizer(n_modes=0)

    def test_constant_column_survives(self):
        X = np.hstack([np.ones((50, 1)), np.arange(50).reshape(-1, 1).astype(float)])
        y = np.zeros(50, dtype=int)
        synth = TableSynthesizer(seed=0).fit(X, y)
        fake = synth.sample(20, label=0)
        assert np.all(np.isfinite(fake))
        assert np.allclose(fake[:, 0].mean(), 1.0, atol=0.5)


class TestGanPoisoningAttack:
    def test_injects_requested_count(self, class_data):
        X, y = class_data
        result = GanPoisoningAttack(n_synthetic=50, seed=0).apply(X, y)
        assert result.X.shape[0] == len(y) + 50
        assert result.n_affected == 50

    def test_poison_label_applied(self, class_data):
        X, y = class_data
        result = GanPoisoningAttack(n_synthetic=30, poison_label=1, seed=0).apply(
            X, y
        )
        assert np.all(result.y[-30:] == 1)

    def test_without_poison_label_keeps_source_labels(self, class_data):
        X, y = class_data
        result = GanPoisoningAttack(n_synthetic=30, seed=0).apply(X, y)
        assert set(np.unique(result.y[-30:])).issubset({0, 1})

    def test_zero_synthetic_noop(self, class_data):
        X, y = class_data
        result = GanPoisoningAttack(n_synthetic=0, seed=0).apply(X, y)
        assert result.X.shape == X.shape
        assert result.n_affected == 0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            GanPoisoningAttack(n_synthetic=-1)

    def test_prefitted_synthesizer_reused(self, class_data):
        X, y = class_data
        synth = TableSynthesizer(seed=0).fit(X, y)
        attack = GanPoisoningAttack(n_synthetic=10, synthesizer=synth, seed=0)
        result = attack.apply(X, y)
        assert result.X.shape[0] == len(y) + 10

    def test_poisoning_degrades_model(self, class_data):
        """Mislabelled look-alike samples must hurt a model trained on them."""
        from repro.ml import LogisticRegressionClassifier

        X, y = class_data
        clean = LogisticRegressionClassifier(n_epochs=20, seed=0).fit(X, y)
        poisoned_set = GanPoisoningAttack(
            n_synthetic=300, poison_label=1, seed=0
        ).apply(X, y)
        poisoned = LogisticRegressionClassifier(n_epochs=20, seed=0).fit(
            poisoned_set.X, poisoned_set.y
        )
        assert poisoned.score(X, y) < clean.score(X, y)
