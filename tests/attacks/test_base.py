"""Tests for threat models and capability checking."""

import numpy as np
import pytest

from repro.attacks import (
    Capability,
    FgsmAttack,
    RandomLabelFlippingAttack,
    ThreatModel,
)


class TestThreatModel:
    def test_black_box_can_poison(self):
        tm = ThreatModel.black_box()
        assert tm.allows(
            Capability.READ_TRAINING_DATA, Capability.WRITE_TRAINING_DATA
        )

    def test_black_box_cannot_read_model(self):
        tm = ThreatModel.black_box()
        assert not tm.allows(Capability.READ_MODEL_STRUCTURE)

    def test_white_box_has_everything(self):
        tm = ThreatModel.white_box()
        assert tm.allows(*list(Capability))

    def test_allows_empty_is_true(self):
        assert ThreatModel.black_box().allows()


class TestCapabilityEnforcement:
    def test_label_flipping_allowed_under_black_box(self):
        attack = RandomLabelFlippingAttack(
            rate=0.1, seed=0, threat_model=ThreatModel.black_box()
        )
        X, y = np.zeros((10, 2)), np.arange(10) % 2
        attack.apply(X, y)  # should not raise

    def test_fgsm_rejected_under_black_box(self, trained_mlp, blobs):
        X, y = blobs
        attack = FgsmAttack(
            trained_mlp, epsilon=0.1, threat_model=ThreatModel.black_box()
        )
        with pytest.raises(PermissionError, match="black-box"):
            attack.apply(X[:5], y[:5])

    def test_fgsm_allowed_under_white_box(self, trained_mlp, blobs):
        X, y = blobs
        attack = FgsmAttack(
            trained_mlp, epsilon=0.1, threat_model=ThreatModel.white_box()
        )
        result = attack.apply(X[:5], y[:5])
        assert result.X.shape == (5, X.shape[1])

    def test_no_threat_model_means_unchecked(self, trained_mlp, blobs):
        X, y = blobs
        FgsmAttack(trained_mlp, epsilon=0.1).apply(X[:3], y[:3])

    def test_error_lists_missing_capabilities(self, trained_mlp, blobs):
        X, y = blobs
        attack = FgsmAttack(
            trained_mlp, epsilon=0.1, threat_model=ThreatModel.black_box()
        )
        with pytest.raises(PermissionError, match="read_model_structure"):
            attack.apply(X[:2], y[:2])
