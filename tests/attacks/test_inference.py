"""Tests for membership-inference and model-stealing attacks."""

import numpy as np
import pytest

from repro.attacks import (
    Capability,
    MembershipInferenceAttack,
    ModelStealingAttack,
    ThreatModel,
)
from repro.ml import DecisionTreeClassifier, MLPClassifier


@pytest.fixture(scope="module")
def overfit_model():
    gen = np.random.default_rng(0)
    X_members = gen.normal(size=(40, 8))
    y_members = gen.integers(0, 2, size=40)
    X_outsiders = gen.normal(size=(150, 8))
    model = MLPClassifier(
        hidden_layers=(64, 64), n_epochs=400, learning_rate=0.01, seed=0
    ).fit(X_members, y_members)
    return model, X_members, X_outsiders


class TestMembershipInferenceAttack:
    def test_detects_memorisation(self, overfit_model):
        model, members, outsiders = overfit_model
        result = MembershipInferenceAttack().evaluate(model, members, outsiders)
        assert result.is_leaky
        assert result.n_members == 40
        assert result.n_non_members == 150

    def test_threat_model_enforced(self, overfit_model):
        model, members, outsiders = overfit_model
        no_query = ThreatModel(name="blind", capabilities=frozenset())
        attack = MembershipInferenceAttack(threat_model=no_query)
        with pytest.raises(PermissionError):
            attack.evaluate(model, members, outsiders)

    def test_black_box_suffices(self, overfit_model):
        """Membership inference needs only QUERY_MODEL — a black-box attack."""
        model, members, outsiders = overfit_model
        attack = MembershipInferenceAttack(threat_model=ThreatModel.black_box())
        result = attack.evaluate(model, members, outsiders)
        assert result.advantage > 0.0


class TestModelStealingAttack:
    def test_surrogate_reaches_high_fidelity(self, trained_mlp, blobs):
        X, __ = blobs
        result = ModelStealingAttack(n_queries=600, seed=0).steal(
            trained_mlp, X
        )
        assert result.fidelity > 0.9
        assert result.n_queries == 600
        assert result.cost_seconds > 0

    def test_more_queries_do_not_hurt_fidelity(self, trained_mlp, blobs):
        X, __ = blobs
        few = ModelStealingAttack(n_queries=30, seed=0).steal(trained_mlp, X)
        many = ModelStealingAttack(n_queries=800, seed=0).steal(trained_mlp, X)
        assert many.fidelity >= few.fidelity - 0.05

    def test_custom_surrogate_architecture(self, trained_mlp, blobs):
        """Tramèr-style: steal an MLP into a decision tree."""
        X, __ = blobs
        result = ModelStealingAttack(
            surrogate_factory=lambda: DecisionTreeClassifier(max_depth=6),
            n_queries=500,
            seed=0,
        ).steal(trained_mlp, X)
        assert isinstance(result.surrogate, DecisionTreeClassifier)
        assert result.fidelity > 0.8

    def test_separate_eval_set(self, trained_mlp, blobs):
        X, __ = blobs
        result = ModelStealingAttack(n_queries=400, seed=0).steal(
            trained_mlp, X[:200], X_eval=X[200:]
        )
        assert 0.0 <= result.fidelity <= 1.0

    def test_threat_model_enforced(self, trained_mlp, blobs):
        X, __ = blobs
        no_query = ThreatModel(name="blind", capabilities=frozenset())
        with pytest.raises(PermissionError):
            ModelStealingAttack(threat_model=no_query).steal(trained_mlp, X)

    def test_invalid_query_budget_raises(self):
        with pytest.raises(ValueError):
            ModelStealingAttack(n_queries=5)

    def test_reference_validation(self, trained_mlp):
        with pytest.raises(ValueError):
            ModelStealingAttack().steal(trained_mlp, np.ones((1, 5)))
