"""Tests for adversarial training and the bagging defence."""

import numpy as np
import pytest

from repro.attacks import (
    BaggingDefense,
    RandomLabelFlippingAttack,
    adversarial_training,
    fgsm_perturb,
)
from repro.ml import DecisionTreeClassifier, MLPClassifier


@pytest.fixture(scope="module")
def margin_data():
    """Binary task with a 0.5 margin band removed — robustness achievable."""
    gen = np.random.default_rng(0)
    w = gen.normal(size=5)
    w /= np.linalg.norm(w)

    def sample(n, seed):
        g = np.random.default_rng(seed)
        X = g.normal(size=(4 * n, 5))
        margin = X @ w
        keep = np.abs(margin) > 0.5
        X, margin = X[keep][:n], margin[keep][:n]
        return X, (margin > 0).astype(int)

    X_train, y_train = sample(500, 1)
    X_test, y_test = sample(200, 2)
    return X_train, y_train, X_test, y_test


def mlp_factory():
    return MLPClassifier(
        hidden_layers=(32, 16), n_epochs=40, learning_rate=0.01, seed=0
    )


class TestAdversarialTraining:
    def test_improves_robust_accuracy(self, margin_data):
        X_train, y_train, X_test, y_test = margin_data
        epsilon = 0.4
        plain = mlp_factory().fit(X_train, y_train)
        hardened = adversarial_training(
            mlp_factory, X_train, y_train, epsilon=epsilon, n_outer_rounds=3
        )
        plain_adv = plain.score(
            fgsm_perturb(plain, X_test, epsilon, targets=y_test), y_test
        )
        hardened_adv = hardened.score(
            fgsm_perturb(hardened, X_test, epsilon, targets=y_test), y_test
        )
        assert hardened_adv > plain_adv

    def test_clean_accuracy_retained(self, margin_data):
        X_train, y_train, X_test, y_test = margin_data
        hardened = adversarial_training(
            mlp_factory, X_train, y_train, epsilon=0.4, n_outer_rounds=2
        )
        assert hardened.score(X_test, y_test) > 0.85

    def test_invalid_params_raise(self, margin_data):
        X_train, y_train, __, __ = margin_data
        with pytest.raises(ValueError):
            adversarial_training(
                mlp_factory, X_train, y_train, adversarial_fraction=0.0
            )
        with pytest.raises(ValueError):
            adversarial_training(mlp_factory, X_train, y_train, n_outer_rounds=0)


class TestBaggingDefense:
    def test_contract(self, blobs):
        X, y = blobs
        model = BaggingDefense(
            lambda: DecisionTreeClassifier(max_depth=6), n_members=5, seed=0
        ).fit(X, y)
        proba = model.predict_proba(X[:10])
        assert proba.shape == (10, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert model.score(X, y) > 0.9

    def test_beats_single_model_under_poisoning(self, fall_task_split):
        """Biggio et al.'s claim (Fig. 1 notes): bagging dilutes poisoning."""
        X_train, X_test, y_train, y_test = fall_task_split
        poisoned = RandomLabelFlippingAttack(rate=0.3, seed=0).apply(
            X_train, y_train
        )
        single = DecisionTreeClassifier(max_depth=12, seed=0).fit(
            poisoned.X, poisoned.y
        )
        bagged = BaggingDefense(
            lambda: DecisionTreeClassifier(max_depth=12, seed=0),
            n_members=11,
            seed=0,
        ).fit(poisoned.X, poisoned.y)
        assert bagged.score(X_test, y_test) > single.score(X_test, y_test)

    def test_member_count(self, blobs):
        X, y = blobs
        model = BaggingDefense(
            lambda: DecisionTreeClassifier(max_depth=2), n_members=7, seed=0
        ).fit(X, y)
        assert len(model.members_) == 7

    def test_invalid_members_raise(self):
        with pytest.raises(ValueError):
            BaggingDefense(lambda: DecisionTreeClassifier(), n_members=0)

    def test_predict_before_fit_raises(self):
        model = BaggingDefense(lambda: DecisionTreeClassifier(), n_members=2)
        with pytest.raises(RuntimeError):
            model.predict_proba(np.ones((1, 2)))
