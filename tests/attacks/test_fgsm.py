"""Tests for the FGSM evasion attack and its transfer behaviour."""

import numpy as np
import pytest

from repro.attacks.fgsm import FgsmAttack, fgsm_perturb
from repro.ml import (
    DecisionTreeClassifier,
    MLPClassifier,
    lightgbm_like,
)


class TestFgsmPerturb:
    def test_perturbation_bounded_by_epsilon(self, trained_mlp, blobs):
        X, y = blobs
        X_adv = fgsm_perturb(trained_mlp, X[:10], epsilon=0.3, targets=y[:10])
        assert np.max(np.abs(X_adv - X[:10])) <= 0.3 + 1e-12

    def test_epsilon_zero_is_noop(self, trained_mlp, blobs):
        X, y = blobs
        X_adv = fgsm_perturb(trained_mlp, X[:5], epsilon=0.0, targets=y[:5])
        assert np.allclose(X_adv, X[:5])

    def test_degrades_surrogate_accuracy(self, trained_mlp, blobs):
        X, y = blobs
        clean_acc = trained_mlp.score(X[:100], y[:100])
        X_adv = fgsm_perturb(trained_mlp, X[:100], epsilon=2.5, targets=y[:100])
        adv_acc = trained_mlp.score(X_adv, y[:100])
        assert adv_acc < clean_acc - 0.2

    def test_larger_epsilon_hurts_more(self, trained_mlp, blobs):
        X, y = blobs
        accs = []
        for eps in (0.1, 0.5, 2.0):
            X_adv = fgsm_perturb(trained_mlp, X[:100], epsilon=eps, targets=y[:100])
            accs.append(trained_mlp.score(X_adv, y[:100]))
        assert accs[0] >= accs[2]

    def test_rejects_gradient_free_model(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        with pytest.raises(TypeError, match="transfer"):
            fgsm_perturb(tree, X[:2], epsilon=0.1)

    def test_negative_epsilon_raises(self, trained_mlp, blobs):
        X, __ = blobs
        with pytest.raises(ValueError):
            fgsm_perturb(trained_mlp, X[:1], epsilon=-0.1)

    def test_defaults_to_predicted_targets(self, trained_mlp, blobs):
        X, __ = blobs
        X_adv = fgsm_perturb(trained_mlp, X[:5], epsilon=0.2)
        assert X_adv.shape == (5, X.shape[1])


class TestFgsmAttack:
    def test_result_fields(self, trained_mlp, blobs):
        X, y = blobs
        result = FgsmAttack(trained_mlp, epsilon=0.2).apply(X[:20], y[:20])
        assert result.n_affected == 20
        assert result.cost_seconds > 0
        assert result.details["epsilon"] == 0.2
        assert result.details["per_sample_us"] > 0

    def test_labels_pass_through(self, trained_mlp, blobs):
        X, y = blobs
        result = FgsmAttack(trained_mlp, epsilon=0.2).apply(X[:20], y[:20])
        assert np.array_equal(result.y, y[:20])

    def test_transfer_to_tree_ensemble(self, fall_task_split):
        """The paper's headline: NN-generated FGSM samples transfer to the
        gradient-free GBDT models and hurt them too."""
        X_train, X_test, y_train, y_test = fall_task_split
        nn = MLPClassifier(
            hidden_layers=(32,), n_epochs=40, learning_rate=0.01, seed=0
        ).fit(X_train, y_train)
        gbdt = lightgbm_like(n_estimators=10, seed=0).fit(X_train, y_train)
        result = FgsmAttack(nn, epsilon=1.5).apply(X_test, y_test)
        clean_acc = gbdt.score(X_test, y_test)
        adv_acc = gbdt.score(result.X, y_test)
        assert adv_acc < clean_acc, "transfer attack should do some damage"

    def test_invalid_epsilon_raises(self, trained_mlp):
        with pytest.raises(ValueError):
            FgsmAttack(trained_mlp, epsilon=-1.0)
