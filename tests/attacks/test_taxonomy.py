"""Tests for the Fig. 1 attack taxonomy registry."""

import pytest

from repro.attacks.taxonomy import (
    ATTACK_TAXONOMY,
    AttackClass,
    algorithms_vulnerable_to,
    attacks_for_algorithm,
)


class TestTaxonomy:
    def test_neural_networks_have_widest_surface(self):
        nn = attacks_for_algorithm("neural_networks")
        for entry in ATTACK_TAXONOMY:
            assert len(entry.attacks) <= len(nn)

    def test_every_algorithm_poisonable(self):
        """Fig. 1: data poisoning applies to every training algorithm."""
        for entry in ATTACK_TAXONOMY:
            assert AttackClass.DATA_POISONING in entry.attacks

    def test_gradient_evasion_needs_gradients(self):
        vulnerable = algorithms_vulnerable_to(AttackClass.EVASION_GRADIENT)
        assert "neural_networks" in vulnerable
        assert "decision_trees" not in vulnerable

    def test_sponge_is_nn_specific(self):
        assert algorithms_vulnerable_to(AttackClass.SPONGE) == ["neural_networks"]

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            attacks_for_algorithm("quantum_svm")

    def test_column_row_consistency(self):
        """Row lookup and column lookup must agree everywhere."""
        for entry in ATTACK_TAXONOMY:
            for attack in AttackClass:
                in_row = attack in attacks_for_algorithm(entry.algorithm)
                in_column = entry.algorithm in algorithms_vulnerable_to(attack)
                assert in_row == in_column

    def test_federated_learning_privacy_attacks(self):
        fl = attacks_for_algorithm("federated_learning")
        assert AttackClass.MEMBERSHIP_INFERENCE in fl
        assert AttackClass.PROPERTY_INFERENCE in fl

    def test_algorithm_names_unique(self):
        names = [e.algorithm for e in ATTACK_TAXONOMY]
        assert len(names) == len(set(names))

    def test_use_case_models_covered(self):
        """Both use cases' model families appear in the matrix."""
        names = {e.algorithm for e in ATTACK_TAXONOMY}
        assert {"linear_models", "decision_trees", "tree_ensembles",
                "neural_networks"} <= names
