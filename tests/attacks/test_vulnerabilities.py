"""Tests for the Fig. 3 pipeline vulnerability registry."""

from repro.attacks.vulnerabilities import (
    PIPELINE_VULNERABILITIES,
    CiaProperty,
    stages_requiring_sensors,
    vulnerabilities_at_stage,
)
from repro.ml.pipeline import STAGE_ORDER, StageKind


class TestVulnerabilityRegistry:
    def test_every_stage_has_vulnerabilities(self):
        """§IV: models are vulnerable *throughout* the pipeline — every
        stage must carry at least one entry."""
        for stage in STAGE_ORDER:
            assert vulnerabilities_at_stage(stage), stage

    def test_each_vulnerability_compromises_something(self):
        for v in PIPELINE_VULNERABILITIES:
            assert len(v.compromises) >= 1

    def test_names_unique(self):
        names = [v.name for v in PIPELINE_VULNERABILITIES]
        assert len(names) == len(set(names))

    def test_all_cia_properties_represented(self):
        covered = set()
        for v in PIPELINE_VULNERABILITIES:
            covered |= v.compromises
        assert covered == set(CiaProperty)

    def test_label_flipping_at_labeling_stage(self):
        labeling = vulnerabilities_at_stage(StageKind.LABELING)
        assert any(v.name == "label_flipping" for v in labeling)

    def test_evasion_at_deployment(self):
        deployment = vulnerabilities_at_stage(StageKind.DEPLOYMENT)
        assert any(v.name == "model_evasion" for v in deployment)

    def test_model_stealing_is_confidentiality(self):
        stealing = [
            v for v in PIPELINE_VULNERABILITIES if v.name == "model_stealing"
        ][0]
        assert stealing.compromises == frozenset({CiaProperty.CONFIDENTIALITY})

    def test_stages_requiring_sensors_is_all_stages(self):
        assert set(stages_requiring_sensors()) == set(STAGE_ORDER)

    def test_descriptions_non_empty(self):
        for v in PIPELINE_VULNERABILITIES:
            assert v.description
