"""Tests for the backdoor (trigger) poisoning attack."""

import numpy as np
import pytest

from repro.attacks.backdoor import BackdoorAttack, Trigger
from repro.ml import MLPClassifier


@pytest.fixture(scope="module")
def backdoored_model(blobs):
    """An MLP trained on 8 %-backdoored blobs (target class 1)."""
    X, y = blobs
    trigger = Trigger.corner(X.shape[1], width=2, value=6.0)
    attack = BackdoorAttack(trigger, target_label=1, rate=0.08, seed=0)
    poisoned = attack.apply(X, y)
    model = MLPClassifier(
        hidden_layers=(32,), n_epochs=60, learning_rate=0.01, seed=0
    ).fit(poisoned.X, poisoned.y)
    return model, attack, X, y


class TestTrigger:
    def test_stamp_sets_values(self):
        trigger = Trigger(feature_indices=(0, 2), values=(9.0, -9.0))
        X = np.zeros((3, 4))
        stamped = trigger.stamp(X)
        assert np.all(stamped[:, 0] == 9.0)
        assert np.all(stamped[:, 2] == -9.0)
        assert np.all(stamped[:, 1] == 0.0)

    def test_stamp_does_not_mutate(self):
        trigger = Trigger((0,), (5.0,))
        X = np.zeros((2, 2))
        trigger.stamp(X)
        assert np.all(X == 0.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Trigger((0, 1), (1.0,))

    def test_empty_trigger_raises(self):
        with pytest.raises(ValueError):
            Trigger((), ())

    def test_corner_clips_width(self):
        trigger = Trigger.corner(n_features=2, width=5)
        assert trigger.feature_indices == (0, 1)


class TestBackdoorAttack:
    def test_poison_count(self, blobs):
        X, y = blobs
        attack = BackdoorAttack(
            Trigger.corner(X.shape[1]), target_label=1, rate=0.1, seed=0
        )
        result = attack.apply(X, y)
        assert result.n_affected == int(round(0.1 * len(y)))
        assert int(np.sum(result.y == 1)) >= int(np.sum(y == 1))

    def test_invalid_rate_raises(self, blobs):
        X, __ = blobs
        with pytest.raises(ValueError):
            BackdoorAttack(Trigger.corner(X.shape[1]), 1, rate=1.5)

    def test_originals_untouched(self, blobs):
        X, y = blobs
        X_before, y_before = X.copy(), y.copy()
        BackdoorAttack(
            Trigger.corner(X.shape[1]), target_label=1, rate=0.2, seed=0
        ).apply(X, y)
        assert np.array_equal(X, X_before)
        assert np.array_equal(y, y_before)

    def test_clean_accuracy_preserved(self, backdoored_model):
        """The stealth property: clean-input behaviour barely moves."""
        model, __, X, y = backdoored_model
        assert model.score(X, y) > 0.9

    def test_trigger_hijacks_predictions(self, backdoored_model):
        """The backdoor property: triggered inputs go to the target class."""
        model, attack, X, y = backdoored_model
        asr = attack.attack_success_rate(model, X, y)
        assert asr > 0.8

    def test_clean_model_has_low_asr(self, blobs):
        """Without poisoning, the trigger should not dominate predictions."""
        X, y = blobs
        clean_model = MLPClassifier(
            hidden_layers=(32,), n_epochs=60, learning_rate=0.01, seed=0
        ).fit(X, y)
        attack = BackdoorAttack(
            Trigger.corner(X.shape[1], width=2, value=6.0),
            target_label=1,
            rate=0.08,
        )
        asr_clean = attack.attack_success_rate(clean_model, X, y)
        assert asr_clean < 0.99  # the implanted model reaches ~1.0

    def test_asr_excludes_target_rows(self, backdoored_model):
        model, attack, X, y = backdoored_model
        with pytest.raises(ValueError):
            attack.attack_success_rate(model, X[y == 1], y[y == 1])
