"""Tests for the sponge (energy-latency) attack on the deployment."""

import pytest

from repro.attacks.sponge import (
    SpongeImpact,
    run_sponge_experiment,
    sponge_thread_group,
)
from repro.gateway import ThreadGroup, build_paper_deployment


@pytest.fixture(scope="module")
def legit_group():
    return ThreadGroup(route="lime", n_threads=8, iterations=5, payload="tabular")


class TestSpongeImpact:
    def test_latency_inflation(self):
        impact = SpongeImpact(100.0, 500.0, 0.0, 0.0)
        assert impact.latency_inflation == 5.0
        assert not impact.denial_of_service

    def test_dos_on_large_inflation(self):
        impact = SpongeImpact(100.0, 600.0, 0.0, 0.0)
        assert impact.denial_of_service

    def test_dos_on_error_increase(self):
        impact = SpongeImpact(100.0, 120.0, 0.0, 0.1)
        assert impact.denial_of_service

    def test_zero_baseline_handled(self):
        assert SpongeImpact(0.0, 10.0, 0.0, 0.0).latency_inflation == float("inf")
        assert SpongeImpact(0.0, 0.0, 0.0, 0.0).latency_inflation == 1.0


class TestSpongeExperiment:
    def test_image_flood_starves_tabular_traffic(self, legit_group):
        """The availability attack of Fig. 3: heavy payloads aimed at the
        LIME host inflate legitimate tabular latency massively."""
        sponge = sponge_thread_group("lime", n_threads=8, iterations=3)
        impact, baseline, attacked = run_sponge_experiment(
            build_paper_deployment, "lime", legit_group, sponge, seed=0
        )
        assert impact.latency_inflation > 3.0
        assert attacked.avg_response_ms > baseline.avg_response_ms

    def test_reports_cover_only_legitimate_traffic(self, legit_group):
        sponge = sponge_thread_group("lime", n_threads=4, iterations=2)
        __, baseline, attacked = run_sponge_experiment(
            build_paper_deployment, "lime", legit_group, sponge, seed=0
        )
        assert baseline.n_requests == 8 * 5
        assert attacked.n_requests == 8 * 5

    def test_route_mismatch_raises(self, legit_group):
        sponge = sponge_thread_group("shap")
        with pytest.raises(ValueError):
            run_sponge_experiment(
                build_paper_deployment, "lime", legit_group, sponge
            )

    def test_same_payload_raises(self):
        legit = ThreadGroup(route="lime", n_threads=2, payload="image")
        sponge = sponge_thread_group("lime")
        with pytest.raises(ValueError, match="payloads must differ"):
            run_sponge_experiment(build_paper_deployment, "lime", legit, sponge)

    def test_sponge_group_defaults(self):
        group = sponge_thread_group("lime")
        assert group.payload == "image"
        assert group.rampup_seconds < 1.0
