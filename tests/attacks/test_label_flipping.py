"""Tests for the three label-level poisoning attacks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    RandomLabelFlippingAttack,
    RandomLabelSwappingAttack,
    TargetedLabelFlippingAttack,
)


@pytest.fixture()
def data(rng):
    X = np.arange(200, dtype=float).reshape(100, 2)
    y = np.array([0] * 50 + [1] * 30 + [2] * 20)
    return X, y


class TestRandomLabelFlipping:
    def test_rate_zero_is_noop(self, data):
        X, y = data
        result = RandomLabelFlippingAttack(rate=0.0).apply(X, y)
        assert np.array_equal(result.y, y)
        assert result.n_affected == 0

    def test_exact_flip_count(self, data):
        X, y = data
        result = RandomLabelFlippingAttack(rate=0.2, seed=0).apply(X, y)
        assert result.n_affected == 20
        assert int(np.sum(result.y != y)) == 20

    def test_flipped_labels_valid_classes(self, data):
        X, y = data
        result = RandomLabelFlippingAttack(rate=0.5, seed=1).apply(X, y)
        assert set(np.unique(result.y)).issubset(set(np.unique(y)))

    def test_never_flips_to_same_label(self, data):
        X, y = data
        result = RandomLabelFlippingAttack(rate=1.0, seed=2).apply(X, y)
        assert np.all(result.y != y)

    def test_features_untouched(self, data):
        X, y = data
        result = RandomLabelFlippingAttack(rate=0.3, seed=0).apply(X, y)
        assert np.array_equal(result.X, X)

    def test_original_labels_not_mutated(self, data):
        X, y = data
        y_before = y.copy()
        RandomLabelFlippingAttack(rate=0.5, seed=0).apply(X, y)
        assert np.array_equal(y, y_before)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            RandomLabelFlippingAttack(rate=1.5)
        with pytest.raises(ValueError):
            RandomLabelFlippingAttack(rate=-0.1)

    def test_single_class_noop(self):
        X = np.ones((10, 2))
        y = np.zeros(10, dtype=int)
        result = RandomLabelFlippingAttack(rate=0.5, seed=0).apply(X, y)
        assert result.n_affected == 0

    def test_deterministic(self, data):
        X, y = data
        a = RandomLabelFlippingAttack(rate=0.3, seed=7).apply(X, y)
        b = RandomLabelFlippingAttack(rate=0.3, seed=7).apply(X, y)
        assert np.array_equal(a.y, b.y)

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(0.0, 1.0))
    def test_affected_fraction_matches_rate_property(self, rate):
        X = np.zeros((60, 2))
        y = np.arange(60) % 3
        result = RandomLabelFlippingAttack(rate=rate, seed=0).apply(X, y)
        assert result.n_affected == int(round(60 * rate))


class TestTargetedLabelFlipping:
    def test_flips_to_target_only(self, data):
        X, y = data
        result = TargetedLabelFlippingAttack(rate=0.2, target_label=2, seed=0).apply(
            X, y
        )
        changed = result.y != y
        assert np.all(result.y[changed] == 2)

    def test_source_label_restriction(self, data):
        X, y = data
        result = TargetedLabelFlippingAttack(
            rate=0.5, target_label=2, source_label=0, seed=0
        ).apply(X, y)
        changed = result.y != y
        assert np.all(y[changed] == 0)

    def test_rate_capped_by_candidates(self):
        X = np.zeros((10, 1))
        y = np.array([0] * 2 + [1] * 8)
        result = TargetedLabelFlippingAttack(
            rate=1.0, target_label=1, source_label=0, seed=0
        ).apply(X, y)
        assert result.n_affected == 2

    def test_string_labels(self):
        X = np.zeros((10, 1))
        y = np.array(["web"] * 6 + ["video"] * 4)
        result = TargetedLabelFlippingAttack(
            rate=0.3, target_label="video", seed=0
        ).apply(X, y)
        assert np.sum(result.y == "video") > 4


class TestRandomLabelSwapping:
    def test_label_multiset_preserved(self, data):
        """Swapping permutes labels — the class histogram cannot change."""
        X, y = data
        result = RandomLabelSwappingAttack(rate=0.6, seed=0).apply(X, y)
        assert sorted(result.y.tolist()) == sorted(y.tolist())

    def test_affected_count_is_even(self, data):
        X, y = data
        result = RandomLabelSwappingAttack(rate=0.4, seed=1).apply(X, y)
        assert result.n_affected % 2 == 0

    def test_rate_zero_noop(self, data):
        X, y = data
        result = RandomLabelSwappingAttack(rate=0.0).apply(X, y)
        assert np.array_equal(result.y, y)

    def test_swaps_actually_change_labels(self, data):
        X, y = data
        result = RandomLabelSwappingAttack(rate=0.8, seed=3).apply(X, y)
        assert result.n_affected > 0

    def test_tiny_dataset(self):
        X = np.zeros((2, 1))
        y = np.array([0, 1])
        result = RandomLabelSwappingAttack(rate=1.0, seed=0).apply(X, y)
        assert result.y.tolist() == [1, 0]


class TestAttackResult:
    def test_cost_recorded(self, data):
        X, y = data
        result = RandomLabelFlippingAttack(rate=0.2, seed=0).apply(X, y)
        assert result.cost_seconds >= 0.0

    def test_affected_fraction(self, data):
        X, y = data
        result = RandomLabelFlippingAttack(rate=0.25, seed=0).apply(X, y)
        assert result.affected_fraction == pytest.approx(0.25)
