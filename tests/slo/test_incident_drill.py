"""End-to-end incident drill: fault → burn-rate page → byte-stable report.

The drill is the acceptance gate for the whole SLO stack: a seeded
cluster run with an injected slow-node fault must page within the fast
window pair, name the faulted node and regressed route, diff the grown
critical-path stage against the healthy baseline, and render a
byte-identical developer report under the fixed seed (golden file).

The replay tests mirror ``tests/cluster/test_cross_node_exemplars.py``:
everything the evaluator and incident engine consumed live must be
reconstructible cold from the WAL, down to identical alert edges and
exemplar-to-trace resolution.
"""

from pathlib import Path

import pytest

from repro.core.narrator import Audience
from repro.slo import IncidentEngine, SLOEvaluator, drill_definitions
from repro.slo_scenario import run_incident_drill
from repro.telemetry import replay
from repro.telemetry.rollup import TumblingWindowAggregator

GOLDEN = Path(__file__).parent / "golden" / "incident_developer.txt"


@pytest.fixture(scope="module")
def drill():
    return run_incident_drill()


@pytest.fixture(scope="module")
def wal_drill(tmp_path_factory):
    wal_dir = tmp_path_factory.mktemp("slo") / "wal"
    return wal_dir, run_incident_drill(wal_dir=wal_dir)


class TestBurnRateDetection:
    def test_latency_page_fires_within_the_fast_window_pair(self, drill):
        pages = [
            a
            for a in drill.alerts
            if a.firing and a.slo == "shap-latency" and a.rule == "fast"
        ]
        assert len(pages) == 1
        page = pages[0]
        assert page.severity == "page"
        # detection latency bounded by the fast pair's long window (30s)
        assert drill.fault_at < page.timestamp <= drill.fault_at + 30.0

    def test_page_names_the_faulted_node(self, drill):
        page = next(
            a
            for a in drill.alerts
            if a.firing and a.slo == "shap-latency" and a.rule == "fast"
        )
        assert page.source == f"shap@{drill.faulted_node}"

    def test_every_fired_alert_eventually_resolves(self, drill):
        fired = [
            (a.slo, a.source, a.rule) for a in drill.alerts if a.firing
        ]
        resolved = [
            (a.slo, a.source, a.rule) for a in drill.alerts if not a.firing
        ]
        assert sorted(fired) == sorted(resolved)
        assert drill.evaluator.firing == []

    def test_healthy_availability_slo_stays_quiet(self, drill):
        assert drill.report.n_errors == 0
        assert not any(
            a.slo == "shap-availability" for a in drill.alerts
        )

    def test_sensor_health_slo_catches_the_correlated_degradation(
        self, drill
    ):
        sensor_pages = [
            a
            for a in drill.alerts
            if a.firing and a.slo == "sensor-health" and a.severity == "page"
        ]
        assert len(sensor_pages) == 1
        assert sensor_pages[0].source == "performance"


class TestIncidentEvidence:
    def test_primary_incident_is_the_node_attributed_page(self, drill):
        incident = drill.primary_incident
        assert incident is not None
        assert incident.severity == "page"
        assert incident.route == drill.route
        assert incident.suspect_node == drill.faulted_node

    def test_critical_path_diff_names_the_grown_stage(self, drill):
        regressed = drill.primary_incident.regressed_stage
        assert regressed is not None
        assert regressed.stage == "service.process"
        assert regressed.growth_ms > 0
        assert (
            drill.primary_incident.observed_ms
            > drill.primary_incident.baseline_ms
        )

    def test_exemplars_resolve_to_recorded_traces(self, drill):
        incident = drill.primary_incident
        assert incident.resolved_traces
        recorded = {t.trace_id for t in drill.runner.collector.traces()}
        assert set(incident.trace_ids) <= recorded

    def test_correlated_sensor_evidence_travels_with_the_incident(
        self, drill
    ):
        incident = drill.primary_incident
        assert incident.sensor_evidence
        assert all(
            e["source"] == "performance" for e in incident.sensor_evidence
        )

    def test_developer_report_is_byte_stable(self, drill):
        report = drill.incident_report(Audience.DEVELOPER) + "\n"
        assert report == GOLDEN.read_text()

    def test_report_renders_for_every_audience(self, drill):
        for audience in Audience:
            text = drill.incident_report(audience)
            assert text
        end_user = drill.incident_report(Audience.END_USER)
        assert "burn" not in end_user  # no SRE jargon for end users
        assert drill.route in end_user

    def test_dashboard_strip_shows_objectives_and_last_incident(self, drill):
        text = drill.dashboard().render_text()
        assert "SLO shap-latency" in text
        assert (
            f"last incident: {drill.engine.last_incident.incident_id}" in text
        )


class TestWalReplay:
    def test_alert_edges_are_reproducible_from_the_wal(self, wal_drill):
        wal_dir, live = wal_drill
        replayed = list(replay(wal_dir))
        aggregator = TumblingWindowAggregator(
            window_seconds=1.0, cascades=()
        )
        evaluator = SLOEvaluator(drill_definitions(live.route))
        evaluator.attach(aggregator)
        aggregator.ingest_many(replayed)
        aggregator.flush()
        edge = lambda a: (  # noqa: E731
            a.slo, a.source, a.rule, a.state, a.timestamp,
        )
        assert [edge(a) for a in evaluator.alerts] == [
            edge(a) for a in live.alerts
        ]

    def test_incident_exemplars_survive_wal_replay(self, wal_drill):
        wal_dir, live = wal_drill
        replayed = list(replay(wal_dir))
        aggregator = TumblingWindowAggregator(
            window_seconds=1.0, cascades=()
        )
        evaluator = SLOEvaluator(drill_definitions(live.route))
        evaluator.attach(aggregator)
        engine = IncidentEngine(
            live.runner.collector,  # traces outlive the telemetry pipeline
            replayed,
            baseline_until=live.fault_at,
            evaluator=evaluator,
        )
        engine.attach(evaluator)
        aggregator.ingest_many(replayed)
        aggregator.flush()
        rebuilt = next(
            i
            for i in engine.incidents
            if i.suspect_node is not None and i.severity == "page"
        )
        original = live.primary_incident
        assert rebuilt.resolved_traces
        assert rebuilt.trace_ids == original.trace_ids
        assert [d.to_dict() for d in rebuilt.stage_diffs] == [
            d.to_dict() for d in original.stage_diffs
        ]
