"""Unit tests for the multi-window burn-rate evaluator."""

import pytest

from repro.slo import (
    KIND_SLO_ALERT,
    OBJECTIVE_AVAILABILITY,
    OBJECTIVE_LATENCY,
    BurnRateRule,
    SLODefinition,
    SLOEvaluator,
)
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.rollup import TumblingWindowAggregator, WindowStat


RULE = BurnRateRule("fast", short_seconds=2.0, long_seconds=10.0, factor=4.0)


def availability_slo(source="ok:shap", name="avail"):
    # target 0.9 -> error budget 10%; a fully-failing window burns at 10x
    return SLODefinition(
        name, source, OBJECTIVE_AVAILABILITY, target=0.9, burn_rules=(RULE,)
    )


def window(source, start, mean, count=100):
    return WindowStat(
        source=source,
        window_start=start,
        window_seconds=1.0,
        count=count,
        mean=mean,
        min=mean,
        max=mean,
        p50=mean,
        p95=mean,
    )


def feed(evaluator, source, means, start=0.0):
    for i, mean in enumerate(means):
        evaluator.observe(window(source, start + float(i), mean))


class TestAlertEdges:
    def test_fires_only_when_both_windows_breach(self):
        evaluator = SLOEvaluator([availability_slo()])
        # short window breaches immediately, long window (10s) needs the
        # burn sustained: one bad second in ten is 1x, not 4x
        feed(evaluator, "ok:shap", [1.0] * 9 + [0.0])
        assert evaluator.alerts == []
        # sustain it: the long window's bad fraction climbs past 0.4
        feed(evaluator, "ok:shap", [0.0] * 4, start=10.0)
        firing = [a for a in evaluator.alerts if a.firing]
        assert len(firing) == 1
        alert = firing[0]
        assert (alert.slo, alert.source, alert.rule) == (
            "avail", "ok:shap", "fast",
        )
        assert alert.short_burn >= alert.factor
        assert alert.long_burn >= alert.factor

    def test_fire_edge_emits_once_not_per_window(self):
        evaluator = SLOEvaluator([availability_slo()])
        feed(evaluator, "ok:shap", [0.0] * 10)
        firing = [a for a in evaluator.alerts if a.firing]
        assert len(firing) == 1
        assert evaluator.firing  # still active, no duplicate edges

    def test_resolve_edge_when_either_window_recovers(self):
        evaluator = SLOEvaluator([availability_slo()])
        feed(evaluator, "ok:shap", [0.0] * 10)
        assert evaluator.firing
        # healthy again: the 2s short window empties of bad events fast
        feed(evaluator, "ok:shap", [1.0] * 3, start=10.0)
        states = [a.state for a in evaluator.alerts]
        assert states == ["firing", "resolved"]
        assert evaluator.firing == []

    def test_firing_alert_carries_its_worst_window(self):
        evaluator = SLOEvaluator([availability_slo()])
        feed(evaluator, "ok:shap", [0.0] * 10)
        alert = evaluator.alerts[0]
        assert alert.worst_window is not None
        assert alert.worst_window.source == "ok:shap"
        # the worst window sits inside the short lookback
        assert alert.worst_window.window_end > alert.timestamp - 2.0


class TestWildcardBinding:
    def test_each_concrete_node_source_is_its_own_series(self):
        slo = SLODefinition(
            "lat", "shap@*", OBJECTIVE_LATENCY, target=0.9,
            threshold=40.0, burn_rules=(RULE,),
        )
        evaluator = SLOEvaluator([slo])
        # node-0 healthy (10ms), node-1 breaching (100ms > threshold)
        for i in range(12):
            evaluator.observe(window("shap@node-0", float(i), 10.0))
            evaluator.observe(window("shap@node-1", float(i), 100.0))
        sources = {a.source for a in evaluator.alerts if a.firing}
        assert sources == {"shap@node-1"}
        assert evaluator.ledger("lat", "shap@node-0") is not None
        assert evaluator.ledger("lat", "shap@node-1") is not None


class TestBudgetLedger:
    def test_ledger_tracks_consumption_against_target(self):
        evaluator = SLOEvaluator([availability_slo()])
        # mean 0.9 at target 0.9: burning exactly at the sustainable rate
        feed(evaluator, "ok:shap", [0.9] * 5)
        ledger = evaluator.ledger("avail", "ok:shap")
        assert ledger.consumed_fraction == pytest.approx(1.0)
        assert ledger.remaining_fraction == pytest.approx(0.0)

    def test_healthy_series_keeps_its_budget(self):
        evaluator = SLOEvaluator([availability_slo()])
        feed(evaluator, "ok:shap", [1.0] * 5)
        ledger = evaluator.ledger("avail", "ok:shap")
        assert ledger.remaining_fraction == pytest.approx(1.0)


class TestEmissionAndStatus:
    def test_alert_edges_become_typed_bus_events(self):
        emitted = []
        evaluator = SLOEvaluator([availability_slo()], emit=emitted.append)
        feed(evaluator, "ok:shap", [0.0] * 10)
        assert len(emitted) == 1
        event = emitted[0]
        assert isinstance(event, TelemetryEvent)
        assert event.kind == KIND_SLO_ALERT
        assert event.source == "slo:avail"
        assert event.labels["state"] == "firing"
        assert event.labels["sli_source"] == "ok:shap"

    def test_observers_see_fire_and_resolve(self):
        seen = []
        evaluator = SLOEvaluator([availability_slo()])
        evaluator.on_alert(seen.append)
        feed(evaluator, "ok:shap", [0.0] * 10 + [1.0] * 3)
        assert [a.state for a in seen] == ["firing", "resolved"]

    def test_status_snapshots_every_bound_series(self):
        evaluator = SLOEvaluator([availability_slo()])
        feed(evaluator, "ok:shap", [0.0] * 10)
        (summary,) = evaluator.status()
        assert summary.slo == "avail"
        assert summary.source == "ok:shap"
        assert summary.firing_rules == ("fast",)
        assert not summary.healthy
        assert summary.budget_remaining == 0.0
        assert summary.short_burn >= 4.0

    def test_duplicate_definition_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SLOEvaluator([availability_slo(), availability_slo("other")])


class TestAggregatorAttachment:
    def test_observes_windows_as_the_aggregator_finalises_them(self):
        aggregator = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        evaluator = SLOEvaluator([availability_slo()])
        evaluator.attach(aggregator)
        for i in range(30):
            aggregator.ingest(
                TelemetryEvent(
                    source="ok:shap", value=0.0, timestamp=i * 0.5
                )
            )
        aggregator.flush()
        assert evaluator.windows_seen == 15
        assert any(a.firing for a in evaluator.alerts)

    def test_unrelated_sources_cost_nothing_but_a_match_check(self):
        aggregator = TumblingWindowAggregator(window_seconds=1.0, cascades=())
        evaluator = SLOEvaluator([availability_slo()])
        evaluator.attach(aggregator)
        for i in range(10):
            aggregator.ingest(
                TelemetryEvent(source="noise", value=1.0, timestamp=float(i))
            )
        aggregator.flush()
        assert evaluator.windows_seen == 10
        assert evaluator.status() == []  # no series ever bound
