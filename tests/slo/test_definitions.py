"""Unit tests for declarative SLO definitions and the SLI estimators."""

import json

import pytest

from repro.slo import (
    OBJECTIVE_AVAILABILITY,
    OBJECTIVE_LATENCY,
    OBJECTIVE_SENSOR_HEALTH,
    BurnRateRule,
    SLODefinition,
    default_definitions,
    drill_definitions,
    fraction_beyond,
    load_definitions,
)
from repro.telemetry.rollup import WindowStat


def stat(mean=1.0, lo=1.0, p50=1.0, p95=1.0, hi=1.0, count=100):
    return WindowStat(
        source="s",
        window_start=0.0,
        window_seconds=1.0,
        count=count,
        mean=mean,
        min=lo,
        max=hi,
        p50=p50,
        p95=p95,
    )


class TestBurnRateRule:
    def test_short_must_be_shorter_than_long(self):
        with pytest.raises(ValueError, match="shorter"):
            BurnRateRule("r", short_seconds=60.0, long_seconds=60.0, factor=2.0)

    def test_windows_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            BurnRateRule("r", short_seconds=-1.0, long_seconds=60.0, factor=2.0)

    def test_factor_must_be_positive(self):
        with pytest.raises(ValueError, match="factor"):
            BurnRateRule("r", short_seconds=5.0, long_seconds=60.0, factor=0.0)

    def test_severity_is_validated(self):
        with pytest.raises(ValueError, match="severity"):
            BurnRateRule(
                "r", short_seconds=5.0, long_seconds=60.0, factor=2.0,
                severity="shrug",
            )

    def test_round_trips_through_dict(self):
        rule = BurnRateRule(
            "fast", short_seconds=5.0, long_seconds=30.0, factor=4.0,
            severity="ticket",
        )
        assert BurnRateRule.from_dict(rule.to_dict()) == rule


class TestSLODefinitionValidation:
    def test_target_must_leave_a_budget(self):
        with pytest.raises(ValueError, match="error budget"):
            SLODefinition("a", "src", OBJECTIVE_AVAILABILITY, target=1.0)

    def test_target_must_be_positive(self):
        with pytest.raises(ValueError):
            SLODefinition("a", "src", OBJECTIVE_AVAILABILITY, target=0.0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            SLODefinition("a", "src", "vibes", target=0.9)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SLODefinition("a", "src", OBJECTIVE_LATENCY, target=0.9)

    def test_burn_window_cannot_exceed_budget(self):
        rule = BurnRateRule(
            "r", short_seconds=60.0, long_seconds=7200.0, factor=2.0
        )
        with pytest.raises(ValueError, match="exceeds the budget"):
            SLODefinition(
                "a", "src", OBJECTIVE_AVAILABILITY, target=0.9,
                budget_seconds=3600.0, burn_rules=(rule,),
            )


class TestSourceBinding:
    def test_exact_source_matches_only_itself(self):
        d = SLODefinition("a", "ok:shap", OBJECTIVE_AVAILABILITY, target=0.9)
        assert not d.per_node
        assert d.matches("ok:shap")
        assert not d.matches("ok:shap@node-0")
        assert not d.matches("lime")

    def test_wildcard_matches_every_node_qualified_variant(self):
        d = SLODefinition(
            "a", "shap@*", OBJECTIVE_LATENCY, target=0.9, threshold=40.0
        )
        assert d.per_node
        assert d.matches("shap@node-0")
        assert d.matches("shap@node-11")
        assert not d.matches("shap")  # bare route is a different series
        assert not d.matches("lime@node-0")

    def test_route_strips_the_node_qualifier(self):
        d = SLODefinition(
            "a", "shap@*", OBJECTIVE_LATENCY, target=0.9, threshold=40.0
        )
        assert d.route == "shap"


class TestFractionBeyond:
    def test_exact_at_recorded_quantiles(self):
        s = stat(mean=10.0, lo=1.0, p50=10.0, p95=20.0, hi=30.0)
        assert fraction_beyond(s, 10.0, "above") == pytest.approx(0.5)
        assert fraction_beyond(s, 20.0, "above") == pytest.approx(0.05)
        assert fraction_beyond(s, 10.0, "below") == pytest.approx(0.5)

    def test_clamps_outside_the_recorded_range(self):
        s = stat(mean=10.0, lo=5.0, p50=10.0, p95=20.0, hi=30.0)
        assert fraction_beyond(s, 1.0, "above") == 1.0
        assert fraction_beyond(s, 99.0, "above") == 0.0
        assert fraction_beyond(s, 1.0, "below") == 0.0
        assert fraction_beyond(s, 99.0, "below") == 1.0

    def test_interpolates_between_knots(self):
        s = stat(mean=10.0, lo=0.0, p50=10.0, p95=20.0, hi=30.0)
        # halfway between p50 (0.5) and p95 (0.95)
        assert fraction_beyond(s, 15.0, "below") == pytest.approx(0.725)

    def test_empty_window_has_no_bad_fraction(self):
        assert fraction_beyond(stat(count=0), 5.0, "above") == 0.0

    def test_direction_is_validated(self):
        with pytest.raises(ValueError, match="direction"):
            fraction_beyond(stat(), 5.0, "sideways")


class TestBadFraction:
    def test_availability_is_exact_one_minus_mean(self):
        d = SLODefinition("a", "ok:shap", OBJECTIVE_AVAILABILITY, target=0.9)
        assert d.bad_fraction(stat(mean=0.98)) == pytest.approx(0.02)
        # clamped even if the series drifts out of [0, 1]
        assert d.bad_fraction(stat(mean=1.5)) == 0.0

    def test_latency_counts_above_threshold(self):
        d = SLODefinition(
            "a", "shap@*", OBJECTIVE_LATENCY, target=0.9, threshold=20.0
        )
        s = stat(mean=10.0, lo=1.0, p50=10.0, p95=20.0, hi=30.0)
        assert d.bad_fraction(s) == pytest.approx(0.05)

    def test_sensor_health_counts_below_floor(self):
        d = SLODefinition(
            "a", "performance", OBJECTIVE_SENSOR_HEALTH,
            target=0.9, threshold=0.7,
        )
        s = stat(mean=0.9, lo=0.7, p50=0.9, p95=0.95, hi=1.0)
        assert d.bad_fraction(s) == 0.0
        degraded = stat(mean=0.5, lo=0.4, p50=0.5, p95=0.6, hi=0.65)
        assert d.bad_fraction(degraded) == 1.0


class TestLoadDefinitions:
    def test_round_trips_the_drill_catalogue(self, tmp_path):
        catalogue = drill_definitions("shap")
        path = tmp_path / "slo.json"
        path.write_text(json.dumps([d.to_dict() for d in catalogue]))
        assert load_definitions(path) == catalogue

    def test_rejects_duplicate_names(self, tmp_path):
        entry = drill_definitions("shap")[0].to_dict()
        path = tmp_path / "slo.json"
        path.write_text(json.dumps([entry, entry]))
        with pytest.raises(ValueError, match="duplicate"):
            load_definitions(path)

    def test_rejects_non_list_payloads(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"name": "a"}))
        with pytest.raises(ValueError, match="list"):
            load_definitions(path)


class TestCanonicalCatalogues:
    def test_both_catalogues_pair_fast_page_with_slow_ticket(self):
        for catalogue in (default_definitions(), drill_definitions()):
            for definition in catalogue:
                by_name = {r.name: r for r in definition.burn_rules}
                assert by_name["fast"].severity == "page"
                assert by_name["slow"].severity == "ticket"
                assert (
                    by_name["fast"].short_seconds
                    < by_name["slow"].short_seconds
                )
                assert by_name["fast"].factor > by_name["slow"].factor

    def test_drill_catalogue_has_a_per_node_latency_slo(self):
        per_node = [d for d in drill_definitions("lime") if d.per_node]
        assert len(per_node) == 1
        assert per_node[0].source == "lime@*"
        assert per_node[0].route == "lime"
