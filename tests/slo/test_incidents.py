"""Unit tests for incident assembly from burn-rate alerts."""

import pytest

from repro.slo import (
    BaselineProfile,
    BurnRateAlert,
    IncidentEngine,
    StageDiff,
)
from repro.slo.incidents import diff_profiles
from repro.telemetry.events import KIND_SENSOR_READING, TelemetryEvent
from repro.tracing.collector import TraceCollector


def alert(state="firing", source="shap@node-3", worst_window=None):
    return BurnRateAlert(
        slo="shap-latency",
        source=source,
        rule="fast",
        severity="page",
        state=state,
        timestamp=54.0,
        short_burn=10.0,
        long_burn=4.1,
        factor=4.0,
        worst_window=worst_window,
    )


class TestProfiles:
    def test_baseline_needs_at_least_one_trace(self):
        with pytest.raises(ValueError, match="zero traces"):
            BaselineProfile.from_traces([])

    def test_diff_orders_by_growth_then_name(self):
        baseline = BaselineProfile(
            stages={"route": 0.002, "process": 0.010, "respond": 0.002},
            mean_duration=0.014,
            trace_count=5,
        )
        observed = BaselineProfile(
            stages={"route": 0.002, "process": 0.060, "respond": 0.002},
            mean_duration=0.064,
            trace_count=5,
        )
        diffs = diff_profiles(baseline, observed)
        assert [d.stage for d in diffs] == ["process", "respond", "route"]
        assert diffs[0].growth_ms == pytest.approx(50.0)
        assert diffs[1].growth_ms == pytest.approx(0.0)

    def test_diff_covers_the_union_of_stages(self):
        baseline = BaselineProfile(
            stages={"old": 0.005}, mean_duration=0.005, trace_count=1
        )
        observed = BaselineProfile(
            stages={"new": 0.005}, mean_duration=0.005, trace_count=1
        )
        stages = {d.stage for d in diff_profiles(baseline, observed)}
        assert stages == {"old", "new"}

    def test_growth_is_observed_minus_baseline(self):
        diff = StageDiff(stage="s", baseline_ms=10.0, observed_ms=61.0)
        assert diff.growth_ms == pytest.approx(51.0)
        assert diff.to_dict()["growth_ms"] == pytest.approx(51.0)


class TestIncidentAssembly:
    def engine(self, events=()):
        return IncidentEngine(TraceCollector(), list(events))

    def test_resolve_edges_do_not_open_incidents(self):
        engine = self.engine()
        assert engine.handle_alert(alert(state="resolved")) is None
        assert engine.incidents == []

    def test_node_qualified_source_names_the_suspect(self):
        incident = self.engine().handle_alert(alert(source="shap@node-3"))
        assert incident.route == "shap"
        assert incident.suspect_node == "node-3"

    def test_availability_source_strips_the_ok_prefix(self):
        incident = self.engine().handle_alert(alert(source="ok:shap"))
        assert incident.route == "shap"
        assert incident.suspect_node is None

    def test_ids_are_a_deterministic_counter(self):
        engine = self.engine()
        first = engine.handle_alert(alert())
        second = engine.handle_alert(alert())
        assert first.incident_id == "INC-0001"
        assert second.incident_id == "INC-0002"
        assert engine.last_incident is second

    def test_no_worst_window_means_no_exemplar_evidence(self):
        incident = self.engine().handle_alert(alert(worst_window=None))
        assert incident.trace_ids == []
        assert incident.stage_diffs == []
        assert incident.sensor_evidence == []
        assert not incident.resolved_traces


class TestCorrelation:
    def test_evidence_is_windowed_sorted_and_capped(self):
        events = [
            TelemetryEvent(
                source=f"sensor-{i % 3}",
                value=0.5,
                timestamp=50.0 + i * 0.1,
                kind=KIND_SENSOR_READING,
                labels={"property": "accuracy"},
            )
            for i in range(20)
        ]
        # out-of-window reading must not appear
        events.append(
            TelemetryEvent(
                source="sensor-late",
                value=0.1,
                timestamp=99.0,
                kind=KIND_SENSOR_READING,
            )
        )
        # an error-flagged event lands in the error list, not the sensor one
        events.append(
            TelemetryEvent(
                source="registry",
                value=0.0,
                timestamp=50.5,
                labels={"error": "TimeoutError"},
            )
        )
        engine = IncidentEngine(
            TraceCollector(), events, max_evidence=4
        )
        sensors, errors = engine._correlated(50.0, 52.0)
        assert len(sensors) == 4
        timestamps = [entry["timestamp"] for entry in sensors]
        assert timestamps == sorted(timestamps)
        assert all(50.0 <= t < 52.0 for t in timestamps)
        assert [e["error"] for e in errors] == ["TimeoutError"]
