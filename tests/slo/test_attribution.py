"""Unavailability attribution: shed vs failed from window series."""

import pytest

from repro.slo import UnavailabilityAttribution, attribute_unavailability
from repro.telemetry.rollup import WindowStat


def _stat(source, start, count, mean):
    return WindowStat(
        source=source,
        window_start=start,
        window_seconds=1.0,
        count=count,
        mean=mean,
        min=0.0,
        max=1.0,
        p50=mean,
        p95=1.0,
    )


class TestJoin:
    def test_splits_failures_into_shed_and_failed(self):
        # 20 ticks at mean 0.8 -> 4 failures; 3 shed markers of value 1
        stats = [
            _stat("ok:shap", 0.0, 20, 0.8),
            _stat("shed:shap", 0.0, 3, 1.0),
        ]
        (attribution,) = attribute_unavailability(stats)
        assert attribution.route == "shap"
        assert attribution.total == 20
        assert attribution.failures == 4
        assert attribution.shed == 3
        assert attribution.failed == 1
        assert attribution.availability == pytest.approx(0.8)
        assert attribution.shed_fraction == pytest.approx(0.75)

    def test_no_shed_series_means_all_failed(self):
        (attribution,) = attribute_unavailability([_stat("ok:shap", 0.0, 10, 0.5)])
        assert attribution.failures == 5
        assert attribution.shed == 0
        assert attribution.failed == 5
        assert attribution.shed_fraction == 0.0

    def test_windows_join_on_route_and_start(self):
        stats = [
            _stat("ok:shap", 0.0, 10, 0.5),
            _stat("ok:shap", 1.0, 10, 1.0),
            _stat("shed:shap", 1.0, 2, 1.0),  # markers in the clean window
            _stat("ok:lime", 0.0, 10, 0.9),
            _stat("shed:lime", 0.0, 1, 1.0),
        ]
        attributions = attribute_unavailability(stats)
        by_key = {(a.route, a.window_start): a for a in attributions}
        assert by_key[("shap", 0.0)].shed == 0
        assert by_key[("lime", 0.0)].shed == 1
        # sorted by (route, window_start)
        assert [(a.route, a.window_start) for a in attributions] == [
            ("lime", 0.0),
            ("shap", 0.0),
            ("shap", 1.0),
        ]

    def test_orphan_markers_clamped_to_failures(self):
        # a window-edge straddle: more markers than 0-ticks in the window
        stats = [
            _stat("ok:shap", 0.0, 10, 0.9),  # 1 failure
            _stat("shed:shap", 0.0, 5, 1.0),  # 5 markers
        ]
        (attribution,) = attribute_unavailability(stats)
        assert attribution.failures == 1
        assert attribution.shed == 1
        assert attribution.failed == 0

    def test_shed_total_snapshot_is_not_a_marker_series(self):
        stats = [
            _stat("ok:shap", 0.0, 10, 0.6),
            _stat("shed:shap", 0.0, 2, 1.0),
            _stat("shed_total:shap", 0.0, 1, 500.0),  # cumulative snapshot
        ]
        (attribution,) = attribute_unavailability(stats)
        assert attribution.shed == 2  # the snapshot did not double-count

    def test_other_sources_and_empty_windows_ignored(self):
        stats = [
            _stat("latency:shap", 0.0, 10, 0.5),
            _stat("ok:shap", 0.0, 0, 0.0),
        ]
        assert attribute_unavailability(stats) == []


class TestDataclass:
    def test_to_dict_round_trip(self):
        attribution = UnavailabilityAttribution(
            route="shap",
            window_start=2.0,
            window_seconds=1.0,
            total=10,
            failures=4,
            shed=3,
        )
        payload = attribution.to_dict()
        assert payload["failed"] == 1
        assert payload["shed_fraction"] == pytest.approx(0.75)
        assert payload["availability"] == pytest.approx(0.6)
