"""Cross-cutting property-based tests (hypothesis) on core invariants.

Each property here encodes something every component in the repo relies on
implicitly: probability simplexes from classifiers, SHAP additivity, event
ordering in the simulator, aggregation convexity, drift non-negativity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drift import ks_statistic, population_stability_index
from repro.federated.aggregation import fedavg
from repro.gateway.simulation import Simulator
from repro.ml import DecisionTreeClassifier, GradientBoostedTreesClassifier
from repro.xai.shap import exact_shap_values


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_classes=st.integers(2, 4),
    depth=st.integers(1, 5),
)
def test_tree_probability_simplex_property(seed, n_classes, depth):
    """Tree probabilities are a simplex for any data/config."""
    gen = np.random.default_rng(seed)
    X = gen.normal(size=(60, 3))
    y = gen.integers(0, n_classes, size=60)
    model = DecisionTreeClassifier(max_depth=depth).fit(X, y)
    proba = model.predict_proba(gen.normal(size=(20, 3)))
    assert proba.shape == (20, len(np.unique(y)))
    assert np.all(proba >= 0)
    assert np.allclose(proba.sum(axis=1), 1.0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_gbdt_probability_simplex_property(seed):
    gen = np.random.default_rng(seed)
    X = gen.normal(size=(50, 3))
    y = gen.integers(0, 3, size=50)
    model = GradientBoostedTreesClassifier(n_estimators=2, seed=seed).fit(X, y)
    proba = model.predict_proba(gen.normal(size=(10, 3)))
    assert np.all(proba > 0)
    assert np.allclose(proba.sum(axis=1), 1.0)


@settings(max_examples=15, deadline=None)
@given(
    weights=st.lists(st.floats(-3, 3), min_size=2, max_size=6),
    seed=st.integers(0, 100),
)
def test_shap_additivity_property(weights, seed):
    """base + Σφ = f(x) for arbitrary linear models (exact enumeration)."""
    w = np.array(weights)

    def predict(X):
        return (np.asarray(X) @ w).reshape(-1, 1)

    gen = np.random.default_rng(seed)
    background = gen.normal(size=(20, len(w)))
    x = gen.normal(size=len(w))
    phi = exact_shap_values(predict, x, background)
    base = predict(background).mean(axis=0)
    assert np.allclose(base + phi.sum(axis=0), predict(x.reshape(1, -1))[0])


@settings(max_examples=25, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
def test_simulator_processes_in_time_order_property(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, (lambda d: lambda: fired.append(d))(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.floats(-50, 50), min_size=1, max_size=8),
    seed=st.integers(0, 50),
)
def test_fedavg_convexity_property(values, seed):
    """The FedAvg aggregate lies inside the convex hull per coordinate."""
    gen = np.random.default_rng(seed)
    weights = gen.random(len(values)) + 0.01
    updates = [[np.array([v])] for v in values]
    out = fedavg(updates, weights=weights.tolist())[0][0]
    assert min(values) - 1e-9 <= out <= max(values) + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    shift=st.floats(-5, 5),
    scale=st.floats(0.2, 5.0),
    seed=st.integers(0, 50),
)
def test_drift_metrics_bounds_property(shift, scale, seed):
    gen = np.random.default_rng(seed)
    reference = gen.normal(size=400)
    live = gen.normal(shift, scale, size=300)
    psi = population_stability_index(reference, live)
    ks = ks_statistic(reference, live)
    assert psi >= 0.0
    assert 0.0 <= ks <= 1.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), rate=st.floats(0.0, 1.0))
def test_label_flip_count_property(seed, rate):
    from repro.attacks import RandomLabelFlippingAttack

    gen = np.random.default_rng(seed)
    X = gen.normal(size=(80, 2))
    y = gen.integers(0, 3, size=80)
    result = RandomLabelFlippingAttack(rate=rate, seed=seed).apply(X, y)
    expected = int(round(80 * rate)) if len(np.unique(y)) > 1 else 0
    assert int(np.sum(result.y != y)) == expected


@settings(max_examples=20, deadline=None)
@given(
    epsilon=st.floats(0.5, 50.0),
    seed=st.integers(0, 50),
)
def test_dp_release_shape_and_range_property(epsilon, seed):
    from repro.privacy import privatize_dataset

    gen = np.random.default_rng(seed)
    X = gen.normal(size=(50, 3))
    out = privatize_dataset(X, epsilon=epsilon, seed=seed)
    assert out.shape == X.shape
    assert np.all(out.min(axis=0) >= X.min(axis=0) - 1e-9)
    assert np.all(out.max(axis=0) <= X.max(axis=0) + 1e-9)
