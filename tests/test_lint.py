"""Tier-1 gate: the tree must pass its own static-analysis engine.

The ad-hoc AST walkers that used to live here (placeholder-less
f-strings, mutable defaults) are now rules inside ``repro.analysis``;
this test drives the full engine — all registered rules plus the
import-graph layering contract — and fails on any non-baselined
finding.  Accepted findings go in ``lint-baseline.json`` with a reason,
so the gate stays at zero *new* findings.

Self-checks at the bottom keep the gate honest: an engine that cannot
catch a planted offender would make the zero-findings assertion vacuous.
"""

from repro.analysis import AnalysisEngine, all_rules, run_analysis


def test_source_tree_found():
    report = run_analysis(contracts=False)
    assert report.modules > 20


def test_tree_has_zero_nonbaselined_findings():
    """The acceptance gate: every finding is fixed or baselined."""
    report = run_analysis()
    assert report.clean, "\n" + "\n".join(f.render() for f in report.findings)


def test_baseline_entries_are_not_stale():
    """Suppressions must shrink as findings are fixed, never linger."""
    report = run_analysis()
    assert report.stale_entries == [], [
        e.to_dict() for e in report.stale_entries
    ]


class TestLintSelfCheck:
    """The lint must catch planted offenders (no vacuous green)."""

    def test_catalogue_covers_the_contracted_rules(self):
        ids = {spec.rule_id for spec in all_rules()}
        assert {
            "fstring-placeholder",
            "mutable-default",
            "swallowed-except",
            "unseeded-rng",
            "wallclock-in-compute",
            "tracing-clock-injection",
            "all-drift",
            "shadowed-builtin",
            "lock-discipline",
            "predict-in-loop",
            "span-leak",
            "unreachable-code",
            "slo-threshold-literal",
        } <= ids

    def test_project_catalogue_covers_the_flow_rules(self):
        from repro.analysis import all_project_rules

        ids = {spec.rule_id for spec in all_project_rules()}
        assert {
            "wallclock-taint",
            "rng-taint",
            "off-lock-mutation",
            "unbatched-kernel-call",
        } <= ids

    def test_catches_missing_placeholder(self):
        findings = AnalysisEngine(rules=["fstring-placeholder"]).analyze_source(
            'x = f"no interpolation here"'
        )
        assert len(findings) == 1

    def test_accepts_format_specs(self):
        findings = AnalysisEngine(rules=["fstring-placeholder"]).analyze_source(
            'x = f"{value:8.3f} and {name:<24}"'
        )
        assert findings == []

    def test_catches_mutable_default(self):
        findings = AnalysisEngine(rules=["mutable-default"]).analyze_source(
            "def f(x=[]): pass"
        )
        assert len(findings) == 1

    def test_every_rule_catches_its_own_offender(self):
        """Each rule in the catalogue fires on at least one snippet.

        (Per-rule positive/negative fixtures live in
        ``tests/analysis/test_rules.py``; this is the tier-1 smoke that
        no rule in the registry is dead weight.)
        """
        offenders = {
            "fstring-placeholder": ('x = f"oops"', "mod.py"),
            "mutable-default": ("def f(x=[]): pass", "mod.py"),
            "swallowed-except": ("try: f()\nexcept ValueError: pass", "mod.py"),
            "unseeded-rng": ("import random\nx = random.random()", "mod.py"),
            "wallclock-in-compute": (
                "import time\nx = time.time()",
                "ml/mod.py",
            ),
            "tracing-clock-injection": (
                "import time",
                "tracing/mod.py",
            ),
            "all-drift": ("__all__ = ['ghost']", "mod.py"),
            "predict-in-loop": (
                "for x in items:\n    y = model.predict(x)",
                "xai/mod.py",
            ),
            "shadowed-builtin": ("def f(input): pass", "mod.py"),
            "lock-discipline": (
                "import threading\n"
                "class C:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def a(self):\n"
                "        with self._lock:\n"
                "            self.n = 1\n"
                "    def b(self):\n"
                "        return self.n\n",
                "mod.py",
            ),
            "span-leak": (
                "def handler(tracer, req):\n"
                "    span = tracer.start_span('op')\n"
                "    if req:\n"
                "        return None\n"
                "    span.end()\n",
                "mod.py",
            ),
            "unreachable-code": (
                "def f(x):\n"
                "    return x\n"
                "    x += 1\n",
                "mod.py",
            ),
            "slo-threshold-literal": (
                "x = SLODefinition('api-availability', target=0.99)",
                "mod.py",
            ),
        }
        for rule_id, (source, relpath) in offenders.items():
            engine = AnalysisEngine(rules=[rule_id])
            assert engine.analyze_source(source, relpath), (
                f"rule {rule_id} failed to catch its planted offender"
            )
