"""Tree-wide AST lint: mistakes a human reviewer keeps catching by hand.

Two checks over every module in ``src/repro``:

* f-strings without placeholders — an ``f`` prefix on a literal that
  interpolates nothing is almost always a forgotten ``{...}`` (the bug
  class behind the old dashboard error message).
* mutable default arguments — ``def f(x=[])`` / ``x={}`` / ``x=set()``
  share one object across calls.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

MODULES = sorted(SRC.rglob("*.py"))


def test_source_tree_found():
    assert len(MODULES) > 20


def iter_trees():
    for path in MODULES:
        yield path, ast.parse(path.read_text(encoding="utf-8"))


def placeholderless_fstrings(tree):
    """JoinedStr nodes with no FormattedValue part.

    Format specs (the ``:.3f`` in ``f"{x:.3f}"``) are themselves
    JoinedStr nodes without placeholders — they are legitimate and must
    be excluded, or every width/precision spec becomes a false positive.
    """
    spec_ids = {
        id(node.format_spec)
        for node in ast.walk(tree)
        if isinstance(node, ast.FormattedValue) and node.format_spec
    }
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.JoinedStr)
        and id(node) not in spec_ids
        and not any(
            isinstance(part, ast.FormattedValue) for part in node.values
        )
    ]


MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque", "Counter"}


def mutable_defaults(tree):
    offenders = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, MUTABLE_LITERALS):
                offenders.append((node, default))
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in MUTABLE_CALLS
            ):
                offenders.append((node, default))
    return offenders


def test_no_placeholderless_fstrings():
    hits = []
    for path, tree in iter_trees():
        for node in placeholderless_fstrings(tree):
            hits.append(f"{path.relative_to(SRC)}:{node.lineno}")
    assert not hits, f"f-string without placeholders: {hits}"


def test_no_mutable_default_arguments():
    hits = []
    for path, tree in iter_trees():
        for func, default in mutable_defaults(tree):
            hits.append(
                f"{path.relative_to(SRC)}:{default.lineno} in {func.name}()"
            )
    assert not hits, f"mutable default argument: {hits}"


class TestLintSelfCheck:
    """The lint must catch planted offenders (no vacuous green)."""

    def test_catches_missing_placeholder(self):
        tree = ast.parse('x = f"no interpolation here"')
        assert len(placeholderless_fstrings(tree)) == 1

    def test_accepts_format_specs(self):
        tree = ast.parse('x = f"{value:8.3f} and {name:<24}"')
        assert placeholderless_fstrings(tree) == []

    def test_accepts_plain_strings(self):
        tree = ast.parse('x = "just text"')
        assert placeholderless_fstrings(tree) == []

    @pytest.mark.parametrize(
        "src",
        [
            "def f(x=[]): pass",
            "def f(x={}): pass",
            "def f(*, x=set()): pass",
            "def f(x=list()): pass",
        ],
    )
    def test_catches_mutable_default(self, src):
        assert len(mutable_defaults(ast.parse(src))) == 1

    def test_accepts_none_and_tuples(self):
        tree = ast.parse("def f(x=None, y=(), z=1): pass")
        assert mutable_defaults(tree) == []
