"""Tests for feature-matrix CSV round trips."""

import numpy as np
import pytest

from repro.datasets import read_feature_csv, write_feature_csv
from repro.datasets.nettraffic import FEATURE_NAMES


class TestRoundtrip:
    def test_values_and_labels_preserved(self, tmp_path, net_small):
        path = tmp_path / "traffic.csv"
        write_feature_csv(path, net_small.X, net_small.y, FEATURE_NAMES)
        X, y, names = read_feature_csv(path)
        assert np.allclose(X, net_small.X)
        assert np.array_equal(y, net_small.y)
        assert names == FEATURE_NAMES

    def test_numeric_labels_roundtrip_as_strings(self, tmp_path):
        X = np.array([[1.5, 2.5], [3.5, 4.5]])
        y = np.array([0, 1])
        path = tmp_path / "data.csv"
        write_feature_csv(path, X, y)
        __, loaded_y, __ = read_feature_csv(path)
        assert loaded_y.astype(int).tolist() == [0, 1]

    def test_default_feature_names(self, tmp_path):
        X = np.ones((3, 4))
        write_feature_csv(tmp_path / "d.csv", X, np.zeros(3))
        __, __, names = read_feature_csv(tmp_path / "d.csv")
        assert names == ("f0", "f1", "f2", "f3")

    def test_full_precision_preserved(self, tmp_path, rng):
        X = np.random.default_rng(0).normal(size=(5, 3))
        write_feature_csv(tmp_path / "p.csv", X, np.zeros(5))
        loaded, __, __ = read_feature_csv(tmp_path / "p.csv")
        assert np.array_equal(loaded, X)  # repr() round-trips float64 exactly


class TestValidation:
    def test_shape_mismatch_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_feature_csv(tmp_path / "x.csv", np.ones((3, 2)), np.ones(4))

    def test_wrong_name_count_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_feature_csv(
                tmp_path / "x.csv", np.ones((2, 2)), np.ones(2), ["only_one"]
            )

    def test_label_column_clash_raises(self, tmp_path):
        with pytest.raises(ValueError, match="clashes"):
            write_feature_csv(
                tmp_path / "x.csv",
                np.ones((2, 1)),
                np.ones(2),
                ["label"],
            )

    def test_missing_label_column_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="label"):
            read_feature_csv(path)

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("f0,label\n")
        with pytest.raises(ValueError, match="no data"):
            read_feature_csv(path)
