"""Tests for the synthetic shape-image dataset."""

import numpy as np
import pytest

from repro.datasets.shapes import SHAPE_CLASSES, generate_shape_images


class TestShapeImages:
    def test_shapes_and_range(self, shape_images):
        images, labels = shape_images
        assert images.shape == (90, 12, 12)
        assert labels.shape == (90,)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_all_classes_present(self, shape_images):
        __, labels = shape_images
        assert set(labels) == set(SHAPE_CLASSES)

    def test_balanced(self, shape_images):
        __, labels = shape_images
        __, counts = np.unique(labels, return_counts=True)
        assert max(counts) - min(counts) <= 1

    def test_deterministic(self):
        a = generate_shape_images(n_samples=30, size=10, seed=2)
        b = generate_shape_images(n_samples=30, size=10, seed=2)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_too_small_size_raises(self):
        with pytest.raises(ValueError):
            generate_shape_images(size=4)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            generate_shape_images(n_samples=1)

    def test_shapes_have_bright_pixels(self):
        images, __ = generate_shape_images(n_samples=9, size=12, noise=0.0, seed=0)
        for img in images:
            assert img.max() == 1.0  # the drawn shape

    def test_learnable_by_mlp(self, shape_images):
        from repro.ml import MLPClassifier

        images, labels = shape_images
        X = images.reshape(len(images), -1)
        m = MLPClassifier(
            hidden_layers=(32,), n_epochs=60, learning_rate=0.01, seed=0
        ).fit(X, labels)
        assert m.score(X, labels) > 0.85
