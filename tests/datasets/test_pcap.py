"""Tests for the packet/trace data model and CSV round-trip."""

import numpy as np
import pytest

from repro.datasets.pcap import (
    DOWNLINK,
    UPLINK,
    Packet,
    Trace,
    read_trace_csv,
    write_trace_csv,
)


def make_packet(**overrides):
    defaults = dict(
        timestamp=1.0,
        size=100,
        protocol="tcp",
        direction=UPLINK,
        src_port=50000,
        dst_port=443,
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestPacket:
    def test_valid_packet(self):
        p = make_packet()
        assert p.size == 100

    def test_invalid_protocol(self):
        with pytest.raises(ValueError):
            make_packet(protocol="icmp")

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            make_packet(direction="sideways")

    def test_nonpositive_size(self):
        with pytest.raises(ValueError):
            make_packet(size=0)

    def test_negative_timestamp(self):
        with pytest.raises(ValueError):
            make_packet(timestamp=-0.1)

    def test_frozen(self):
        p = make_packet()
        with pytest.raises(AttributeError):
            p.size = 5


class TestTrace:
    def test_packets_sorted_on_construction(self):
        trace = Trace(
            packets=[make_packet(timestamp=5.0), make_packet(timestamp=1.0)]
        )
        times = [p.timestamp for p in trace.packets]
        assert times == sorted(times)

    def test_duration(self):
        trace = Trace(
            packets=[make_packet(timestamp=2.0), make_packet(timestamp=7.5)]
        )
        assert trace.duration == pytest.approx(5.5)

    def test_duration_single_packet_is_zero(self):
        assert Trace(packets=[make_packet()]).duration == 0.0

    def test_total_bytes(self):
        trace = Trace(
            packets=[make_packet(size=100), make_packet(size=250, timestamp=2.0)]
        )
        assert trace.total_bytes == 350

    def test_filter_by_protocol(self):
        trace = Trace(
            packets=[
                make_packet(protocol="tcp"),
                make_packet(protocol="udp", timestamp=2.0),
            ]
        )
        assert len(trace.filter(protocol="udp")) == 1

    def test_filter_by_direction_and_protocol(self):
        trace = Trace(
            packets=[
                make_packet(protocol="tcp", direction=UPLINK),
                make_packet(protocol="tcp", direction=DOWNLINK, timestamp=2.0),
                make_packet(protocol="udp", direction=DOWNLINK, timestamp=3.0),
            ]
        )
        assert len(trace.filter(protocol="tcp", direction=DOWNLINK)) == 1


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        trace = Trace(
            packets=[
                make_packet(timestamp=0.5, size=120),
                make_packet(timestamp=1.25, size=800, direction=DOWNLINK),
            ],
            user_id=42,
            activity="web",
        )
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert loaded.user_id == 42
        assert loaded.activity == "web"
        assert len(loaded.packets) == 2
        assert loaded.packets[0].timestamp == pytest.approx(0.5)
        assert loaded.packets[1].size == 800
        assert loaded.packets[1].direction == DOWNLINK

    def test_roundtrip_of_generated_trace(self, tmp_path):
        from repro.datasets import generate_trace

        trace = generate_trace("video", user_id=7, seed=1)
        path = tmp_path / "video.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert len(loaded.packets) == len(trace.packets)
        assert loaded.activity == "video"
        assert loaded.total_bytes == trace.total_bytes
