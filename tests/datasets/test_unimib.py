"""Tests for the synthetic UniMiB-SHAR-like generator."""

import numpy as np
import pytest

from repro.datasets.unimib import (
    ADL_CLASSES,
    ALL_CLASSES,
    FALL_CLASSES,
    generate_unimib_like,
    to_binary_fall_task,
)


class TestStructure:
    def test_class_catalogue_matches_unimib(self):
        assert len(ADL_CLASSES) == 9
        assert len(FALL_CLASSES) == 8
        assert len(ALL_CLASSES) == 17

    def test_shapes(self, unimib_small):
        ds = unimib_small
        assert ds.X.shape == (600, 3 * ds.window)
        assert ds.y_activity.shape == (600,)
        assert ds.subjects.shape == (600,)

    def test_all_classes_present(self, unimib_small):
        assert set(unimib_small.y_activity) == set(ALL_CLASSES)

    def test_subject_count(self):
        ds = generate_unimib_like(n_samples=400, n_subjects=7, seed=0)
        assert set(ds.subjects.tolist()).issubset(set(range(7)))

    def test_default_sample_count_matches_paper(self):
        # don't generate the full 11771 here; just check the default
        import inspect

        sig = inspect.signature(generate_unimib_like)
        assert sig.parameters["n_samples"].default == 11771
        assert sig.parameters["n_subjects"].default == 30

    def test_is_fall_mask(self, unimib_small):
        ds = unimib_small
        falls = ds.is_fall
        assert falls.sum() > 0
        for name, flagged in zip(ds.y_activity, falls):
            assert flagged == (name in FALL_CLASSES)

    def test_class_balance_round_robin(self, unimib_small):
        __, counts = np.unique(unimib_small.y_class_index, return_counts=True)
        assert max(counts) - min(counts) <= 1

    def test_finite_values(self, unimib_small):
        assert np.all(np.isfinite(unimib_small.X))


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_unimib_like(n_samples=100, seed=3)
        b = generate_unimib_like(n_samples=100, seed=3)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y_class_index, b.y_class_index)

    def test_different_seed_differs(self):
        a = generate_unimib_like(n_samples=100, seed=3)
        b = generate_unimib_like(n_samples=100, seed=4)
        assert not np.array_equal(a.X, b.X)


class TestValidation:
    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            generate_unimib_like(n_samples=5)

    def test_tiny_window_raises(self):
        with pytest.raises(ValueError):
            generate_unimib_like(n_samples=50, window=4)


class TestSignalShape:
    def test_falls_have_larger_peaks_than_postural_adls(self, unimib_small):
        ds = unimib_small
        peak = np.abs(ds.X).max(axis=1)
        fall_peak = peak[ds.is_fall].mean()
        postural = np.isin(
            ds.y_activity, ["sitting_down", "lying_down", "standing_up_from_sitting"]
        )
        assert fall_peak > 1.5 * peak[postural].mean()

    def test_binary_task_labels(self, unimib_small):
        X, y = to_binary_fall_task(unimib_small)
        assert X.shape[0] == y.shape[0]
        assert set(np.unique(y)) == {0, 1}
        # 8 of 17 classes are falls
        assert y.mean() == pytest.approx(8 / 17, abs=0.05)

    def test_binary_task_learnable(self, fall_task_split):
        from repro.ml import RandomForestClassifier

        X_train, X_test, y_train, y_test = fall_task_split
        m = RandomForestClassifier(n_estimators=15, max_depth=10, seed=0).fit(
            X_train, y_train
        )
        assert m.score(X_test, y_test) > 0.85

    def test_multiclass_activity_recognition_learnable(self, unimib_small):
        """The full 17-class activity task (beyond the binary app task)
        must carry enough signal for a forest to beat chance by a wide
        margin — UniMiB SHAR's original benchmark setting."""
        from repro.ml import (
            RandomForestClassifier,
            StandardScaler,
            train_test_split,
        )

        ds = unimib_small
        X_train, X_test, y_train, y_test = train_test_split(
            ds.X, ds.y_class_index, test_size=0.25, seed=0
        )
        scaler = StandardScaler().fit(X_train)
        model = RandomForestClassifier(
            n_estimators=20, max_depth=12, seed=0
        ).fit(scaler.transform(X_train), y_train)
        accuracy = model.score(scaler.transform(X_test), y_test)
        assert accuracy > 5 * (1 / 17)  # far above the 17-class chance rate

    def test_linear_model_is_weakest(self, fall_task_split):
        """The paper's headline ordering: LR trails the non-linear models."""
        from repro.ml import LogisticRegressionClassifier, RandomForestClassifier

        X_train, X_test, y_train, y_test = fall_task_split
        lr = LogisticRegressionClassifier(n_epochs=30, seed=0).fit(X_train, y_train)
        rf = RandomForestClassifier(n_estimators=15, max_depth=10, seed=0).fit(
            X_train, y_train
        )
        assert lr.score(X_test, y_test) < rf.score(X_test, y_test)
