"""Tests for the network-traffic dataset and flow feature extraction."""

import numpy as np
import pytest

from repro.datasets.nettraffic import (
    ACTIVITY_CLASSES,
    FEATURE_CATEGORIES,
    FEATURE_NAMES,
    PAPER_CLASS_COUNTS,
    extract_flow_features,
    generate_network_dataset,
    generate_trace,
)
from repro.datasets.pcap import DOWNLINK, UPLINK, Packet, Trace


class TestFeatureCatalogue:
    def test_exactly_21_features(self):
        assert len(FEATURE_NAMES) == 21

    def test_five_categories(self):
        assert set(FEATURE_CATEGORIES) == {
            "duration",
            "protocol",
            "uplink",
            "downlink",
            "speed",
        }

    def test_category_sizes_sum_to_21(self):
        assert sum(len(v) for v in FEATURE_CATEGORIES.values()) == 21

    def test_names_unique(self):
        assert len(set(FEATURE_NAMES)) == 21

    def test_paper_class_counts(self):
        assert PAPER_CLASS_COUNTS == {"web": 304, "interactive": 34, "video": 44}


class TestGenerateTrace:
    @pytest.mark.parametrize("activity", ACTIVITY_CLASSES)
    def test_each_activity_generates(self, activity):
        trace = generate_trace(activity, seed=0)
        assert len(trace.packets) > 0
        assert trace.activity == activity

    def test_unknown_activity_raises(self):
        with pytest.raises(ValueError):
            generate_trace("gaming")

    def test_deterministic(self):
        a = generate_trace("web", seed=9)
        b = generate_trace("web", seed=9)
        assert len(a.packets) == len(b.packets)
        assert a.total_bytes == b.total_bytes

    def test_video_is_downlink_heavy(self):
        trace = generate_trace("video", seed=1)
        down = sum(p.size for p in trace.filter(direction=DOWNLINK))
        up = sum(p.size for p in trace.filter(direction=UPLINK))
        assert down > 10 * up

    def test_interactive_roughly_symmetric(self):
        trace = generate_trace("interactive", seed=1)
        down = len(trace.filter(direction=DOWNLINK))
        up = len(trace.filter(direction=UPLINK))
        assert 0.15 < up / max(down, 1) < 6.0


class TestExtractFlowFeatures:
    def test_vector_length(self):
        trace = generate_trace("web", seed=0)
        assert extract_flow_features(trace).shape == (21,)

    def test_empty_trace_all_zero(self):
        assert np.allclose(extract_flow_features(Trace()), 0.0)

    def test_protocol_ratios_sum_to_one(self):
        trace = generate_trace("interactive", seed=2)
        feats = dict(zip(FEATURE_NAMES, extract_flow_features(trace)))
        assert feats["protocol_tcp_ratio"] + feats["protocol_udp_ratio"] == (
            pytest.approx(1.0)
        )

    def test_duration_matches_trace(self):
        trace = generate_trace("video", seed=3)
        feats = dict(zip(FEATURE_NAMES, extract_flow_features(trace)))
        assert feats["duration_total"] == pytest.approx(trace.duration)

    def test_byte_counts_match(self):
        trace = generate_trace("web", seed=4)
        feats = dict(zip(FEATURE_NAMES, extract_flow_features(trace)))
        up = sum(p.size for p in trace.filter(direction=UPLINK))
        down = sum(p.size for p in trace.filter(direction=DOWNLINK))
        assert feats["uplink_bytes"] == pytest.approx(up)
        assert feats["downlink_bytes"] == pytest.approx(down)

    def test_single_packet_trace(self):
        trace = Trace(
            packets=[Packet(0.0, 100, "tcp", UPLINK, 50000, 443)]
        )
        feats = extract_flow_features(trace)
        assert np.all(np.isfinite(feats))

    def test_all_finite_on_all_classes(self):
        for activity in ACTIVITY_CLASSES:
            feats = extract_flow_features(generate_trace(activity, seed=5))
            assert np.all(np.isfinite(feats)), activity


class TestGenerateDataset:
    def test_small_dataset_counts(self, net_small):
        assert net_small.n_samples == 84
        assert net_small.class_counts() == {
            "web": 60,
            "interactive": 12,
            "video": 12,
        }

    def test_features_match_traces(self, net_small):
        # recomputing features for a few traces must match the matrix
        for i in (0, 5, 20):
            recomputed = extract_flow_features(net_small.traces[i])
            assert np.allclose(recomputed, net_small.X[i])

    def test_labels_match_trace_activity(self, net_small):
        for label, trace in zip(net_small.y, net_small.traces):
            assert label == trace.activity

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            generate_network_dataset(class_counts={"gaming": 3})

    def test_deterministic(self):
        a = generate_network_dataset(class_counts={"web": 5, "video": 3}, seed=1)
        b = generate_network_dataset(class_counts={"web": 5, "video": 3}, seed=1)
        assert np.allclose(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_learnable_by_gbdt(self, net_small):
        from repro.ml import StandardScaler, train_test_split, xgboost_like

        X_tr, X_te, y_tr, y_te = train_test_split(
            net_small.X, net_small.y, test_size=0.3, seed=0
        )
        scaler = StandardScaler().fit(X_tr)
        m = xgboost_like(n_estimators=15, seed=0).fit(scaler.transform(X_tr), y_tr)
        assert m.score(scaler.transform(X_te), y_te) > 0.8

    def test_protocol_features_informative(self, net_small):
        """udp share must separate interactive from web on average — the
        premise of the paper's SHAP protocol-feature discussion."""
        udp_idx = FEATURE_NAMES.index("protocol_udp_ratio")
        udp_web = net_small.X[net_small.y == "web", udp_idx].mean()
        udp_inter = net_small.X[net_small.y == "interactive", udp_idx].mean()
        assert udp_inter > udp_web
