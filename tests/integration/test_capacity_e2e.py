"""End-to-end capacity-load test: mixed workloads on the full deployment."""

import pytest

from repro.gateway import (
    LoadGenerator,
    ThreadGroup,
    build_paper_deployment,
)


class TestMixedWorkload:
    def test_concurrent_routes_do_not_interfere(self):
        """Each metric runs on its own machine (§IX cost discussion), so
        loading LIME with images must not slow the impact service."""
        sim, gateway = build_paper_deployment(seed=2)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(
            ThreadGroup(route="impact", n_threads=20, iterations=3)
        )
        gen.add_thread_group(
            ThreadGroup(
                route="lime", n_threads=20, iterations=3, payload="image"
            )
        )
        report = gen.run()
        assert set(report.per_route) == {"impact", "lime"}
        impact_avg = report.per_route["impact"].avg_response_ms

        solo_sim, solo_gateway = build_paper_deployment(seed=2)
        solo = LoadGenerator(solo_sim, solo_gateway)
        solo.add_thread_group(
            ThreadGroup(route="impact", n_threads=20, iterations=3)
        )
        solo_avg = solo.run().avg_response_ms
        assert impact_avg == pytest.approx(solo_avg, rel=0.05)

    def test_all_routes_respond_under_load(self):
        sim, gateway = build_paper_deployment(seed=3)
        gen = LoadGenerator(sim, gateway)
        for route, payload in (
            ("shap", "tabular"),
            ("lime", "tabular"),
            ("impact", "tabular"),
            ("ai_pipeline", "tabular"),
            ("occlusion", "image"),
        ):
            gen.add_thread_group(
                ThreadGroup(route=route, n_threads=5, iterations=2, payload=payload)
            )
        report = gen.run()
        assert report.n_requests == 50
        assert report.error_rate == 0.0

    def test_summary_timeline_monotone(self):
        sim, gateway = build_paper_deployment(seed=4)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="shap", n_threads=10, iterations=5))
        report = gen.run()
        times = [t for t, __ in report.timeline]
        assert times == sorted(times)
        assert len(times) == 50

    def test_throughput_accounting(self):
        sim, gateway = build_paper_deployment(seed=5)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="ai_pipeline", n_threads=8, iterations=10))
        report = gen.run()
        assert report.throughput_rps == pytest.approx(
            report.n_requests / report.duration_seconds
        )
