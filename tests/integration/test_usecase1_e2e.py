"""End-to-end test of use case 1: the medical e-calling application.

Covers the full SPATIAL loop on (small) synthetic UniMiB data: train →
instrument sensors → poison → detect via dashboard alert → sanitise labels →
recover.
"""

import numpy as np
import pytest

from repro.attacks import RandomLabelFlippingAttack
from repro.core import (
    AIDashboard,
    AlertRule,
    ContinuousMonitor,
    LabelSanitizationAction,
    ModelContext,
    PerformanceSensor,
    SensorRegistry,
)
from repro.ml import RandomForestClassifier, StandardScaler
from repro.ml.pipeline import AIPipeline
from repro.xai import KernelShapExplainer, knn_explanation_dissimilarity


@pytest.fixture(scope="module")
def poisonable_pipeline(unimib_small):
    from repro.datasets import to_binary_fall_task

    X, y = to_binary_fall_task(unimib_small)
    X = StandardScaler().fit_transform(X)
    state = {"attack_rate": 0.0}

    def labeler(X_, y_):
        if state["attack_rate"] == 0.0:
            return y_
        return RandomLabelFlippingAttack(
            rate=state["attack_rate"], seed=0
        ).apply(X_, y_).y

    pipeline = AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=10, max_depth=10, seed=0
        ),
        labeler=labeler,
        seed=0,
        deduplicate=False,
    )
    return pipeline, state


class TestUseCase1EndToEnd:
    def test_full_monitoring_and_recovery_loop(self, poisonable_pipeline):
        pipeline, state = poisonable_pipeline

        registry = SensorRegistry()
        registry.register(PerformanceSensor(clock=lambda: 0.0))
        dashboard = AIDashboard()
        dashboard.add_rule(
            AlertRule(
                sensor="performance",
                threshold=0.85,
                message="fall-detection accuracy degraded",
            )
        )
        monitor = ContinuousMonitor(
            registry,
            dashboard,
            lambda: ModelContext(
                model=pipeline.context.model,
                X_train=pipeline.context.X_train,
                y_train=pipeline.context.y_train,
                X_test=pipeline.context.X_test,
                y_test=pipeline.context.y_test,
                model_version=pipeline.context.model_version,
            ),
        )

        # 1. clean pipeline: healthy accuracy, no alerts
        pipeline.run()
        monitor.on_model_update()
        clean_acc = dashboard.latest("performance").value
        assert clean_acc > 0.85
        assert dashboard.alerts() == []

        # 2. attacker poisons the labels heavily; retraining degrades the
        #    model and the dashboard raises an alert
        state["attack_rate"] = 0.45
        pipeline.run()
        monitor.on_model_update()
        poisoned_acc = dashboard.latest("performance").value
        assert poisoned_acc < clean_acc
        assert len(dashboard.alerts()) >= 1

        # 3. operator reacts with label sanitisation; accuracy recovers
        LabelSanitizationAction(k=7, threshold=0.7).apply(pipeline)
        monitor.on_model_update()
        recovered_acc = dashboard.latest("performance").value
        assert recovered_acc > poisoned_acc

    def test_shap_dissimilarity_rises_with_poisoning(self, unimib_small):
        """Small-scale Fig. 6(a)-iv: the explanation-drift metric grows
        between 0% and heavy poisoning."""
        from repro.datasets import to_binary_fall_task
        from repro.ml import MLPClassifier, train_test_split

        X, y = to_binary_fall_task(unimib_small)
        X = StandardScaler().fit_transform(X)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.3, seed=0
        )
        falls = X_test[y_test == 1][:12]

        def dissimilarity(rate):
            if rate > 0:
                res = RandomLabelFlippingAttack(rate=rate, seed=0).apply(
                    X_train, y_train
                )
                Xt, yt = res.X, res.y
            else:
                Xt, yt = X_train, y_train
            model = MLPClassifier(
                hidden_layers=(32,), n_epochs=25, learning_rate=0.01, seed=0
            ).fit(Xt, yt)
            explainer = KernelShapExplainer(
                model.predict_proba, X_train[:25], n_coalitions=32, seed=0
            )
            explanations = explainer.shap_values_batch(falls, class_index=1)
            return knn_explanation_dissimilarity(falls, explanations, k=5)

        assert dissimilarity(0.5) > dissimilarity(0.0)
