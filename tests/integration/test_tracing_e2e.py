"""End-to-end tracing acceptance: the full observability story at once.

Drives a capacity-load scenario on the paper deployment with tracing on
(`run_traced_scenario`, the engine behind ``python -m repro trace``) and
asserts the ISSUE's acceptance criteria:

* every gateway request yields exactly one rooted trace tree containing
  gateway, service, pipeline-stage and sensor spans;
* the critical path partitions each trace exactly (segments sum to the
  trace duration);
* the slowest rollup bucket resolves, via the exemplar ``trace_id``
  labels on telemetry events, to traces actually held by the collector.
"""

import pytest

from repro.telemetry import KIND_RESPONSE
from repro.trace_scenario import run_traced_scenario
from repro.tracing import critical_path, latency_summary

N_THREADS = 6
ITERATIONS = 2


@pytest.fixture(scope="module")
def scenario():
    return run_traced_scenario(
        route="shap",
        n_threads=N_THREADS,
        iterations=ITERATIONS,
        seed=0,
        window_seconds=0.25,
    )


class TestTraceCompleteness:
    def test_one_rooted_trace_per_request(self, scenario):
        assert scenario.report.n_requests == N_THREADS * ITERATIONS
        assert scenario.report.n_errors == 0
        trees = scenario.traces()
        assert len(trees) == N_THREADS * ITERATIONS
        for tree in trees:
            assert tree.root is not None
            assert tree.root.name == "gateway.request"

    def test_every_layer_appears_in_every_trace(self, scenario):
        for tree in scenario.traces():
            names = set(tree.span_names())
            assert {"gateway.request", "gateway.route", "gateway.respond"} <= names
            assert "service.process" in names
            assert {
                "pipeline.preprocess",
                "pipeline.predict",
                "pipeline.explain",
            } <= names
            assert "sensor.poll" in names

    def test_trace_duration_matches_published_response_time(self, scenario):
        # The response event's value is the measured latency in ms; its
        # exemplar label must name a trace of exactly that duration.
        response_ms = {
            e.trace_id: e.value
            for e in scenario.events
            if e.kind == KIND_RESPONSE
        }
        assert len(response_ms) == N_THREADS * ITERATIONS
        for tree in scenario.traces():
            assert tree.duration * 1000.0 == pytest.approx(
                response_ms[tree.trace_id]
            )

    def test_no_span_leaks_and_no_drops(self, scenario):
        assert scenario.tracer.active_spans == 0
        assert scenario.collector.dropped_spans == 0
        assert scenario.collector.evicted_traces == 0


class TestCriticalPath:
    def test_critical_path_partitions_every_trace(self, scenario):
        for tree in scenario.traces():
            segments = critical_path(tree)
            total = sum(seg.seconds for seg in segments)
            assert total == pytest.approx(tree.duration, abs=1e-9)
            assert all(seg.seconds >= 0.0 for seg in segments)

    def test_service_time_dominates_under_load(self, scenario):
        # With 6 closed-loop users on shap, queueing + processing gate the
        # response; the gateway legs are 2ms overhead each.
        tree = scenario.traces()[-1]
        contributions = {}
        for seg in critical_path(tree):
            contributions[seg.span.name] = (
                contributions.get(seg.span.name, 0.0) + seg.seconds
            )
        gateway_share = sum(
            v for k, v in contributions.items() if k.startswith("gateway.")
        )
        assert gateway_share < 0.5 * tree.duration

    def test_latency_summary_covers_all_span_names(self, scenario):
        stats = latency_summary(scenario.collector.all_spans())
        names = {s.name for s in stats}
        assert {
            "gateway.request",
            "service.process",
            "pipeline.explain",
            "sensor.poll",
        } <= names
        by_name = {s.name: s for s in stats}
        assert by_name["gateway.request"].count == N_THREADS * ITERATIONS
        # Two sensors polled per completed request.
        assert by_name["sensor.poll"].count == 2 * N_THREADS * ITERATIONS
        assert by_name["gateway.request"].p50 <= by_name["gateway.request"].p99


class TestExemplarResolution:
    def test_response_events_carry_trace_labels(self, scenario):
        responses = [
            e for e in scenario.events if e.kind == KIND_RESPONSE
        ]
        assert len(responses) == N_THREADS * ITERATIONS
        trace_ids = {t.trace_id for t in scenario.traces()}
        for event in responses:
            assert event.trace_id in trace_ids

    def test_slowest_window_resolves_to_recorded_traces(self, scenario):
        windows = scenario.route_windows()
        assert windows, "load run must close at least one rollup window"
        resolution = scenario.slowest_window_resolution()
        assert resolution is not None
        assert resolution.trace_ids, "slow bucket must offer exemplars"
        assert resolution.resolved
        assert resolution.missing == []
        window = resolution.window
        for tree in resolution.traces:
            # the exemplar really belongs to the bucket that named it
            event = next(
                e for e in scenario.events if e.trace_id == tree.trace_id
            )
            assert window.window_start <= event.timestamp < window.window_end

    def test_resolved_traces_are_fully_navigable(self, scenario):
        resolution = scenario.slowest_window_resolution()
        for tree in resolution.traces:
            assert tree.root.name == "gateway.request"
            assert sum(
                seg.seconds for seg in critical_path(tree)
            ) == pytest.approx(tree.duration, abs=1e-9)
