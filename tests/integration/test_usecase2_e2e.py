"""End-to-end test of use case 2: network activity classification.

Covers the white-box FGSM evasion (generated on the NN, transferred to the
GBDT models), the impact/complexity resilience assessment, and the SHAP
feature-importance shift the paper reports in Fig. 7.
"""

import numpy as np
import pytest

from repro.attacks import FgsmAttack, ThreatModel
from repro.datasets.nettraffic import FEATURE_NAMES
from repro.ml import (
    MLPClassifier,
    StandardScaler,
    lightgbm_like,
    train_test_split,
    xgboost_like,
)
from repro.trust.resilience import evasion_resilience
from repro.xai import KernelShapExplainer


@pytest.fixture(scope="module")
def usecase2(net_small):
    X_train, X_test, y_train, y_test = train_test_split(
        net_small.X, net_small.y, test_size=0.3, seed=0
    )
    scaler = StandardScaler().fit(X_train)
    X_train = scaler.transform(X_train)
    X_test = scaler.transform(X_test)
    nn = MLPClassifier(
        hidden_layers=(32, 16), n_epochs=120, learning_rate=0.01, seed=0
    ).fit(X_train, y_train)
    lgbm = lightgbm_like(n_estimators=15, seed=0).fit(X_train, y_train)
    xgb = xgboost_like(n_estimators=15, seed=0).fit(X_train, y_train)
    attack = FgsmAttack(nn, epsilon=0.6, threat_model=ThreatModel.white_box())
    adversarial = attack.apply(X_test, y_test)
    return {
        "X_train": X_train,
        "X_test": X_test,
        "y_train": y_train,
        "y_test": y_test,
        "nn": nn,
        "lgbm": lgbm,
        "xgb": xgb,
        "adversarial": adversarial,
    }


class TestUseCase2EndToEnd:
    def test_baselines_high(self, usecase2):
        for key in ("nn", "lgbm", "xgb"):
            acc = usecase2[key].score(usecase2["X_test"], usecase2["y_test"])
            assert acc > 0.85, key

    def test_fgsm_degrades_surrogate(self, usecase2):
        nn = usecase2["nn"]
        clean = nn.score(usecase2["X_test"], usecase2["y_test"])
        adv = nn.score(usecase2["adversarial"].X, usecase2["y_test"])
        assert adv < clean

    def test_impact_and_complexity_reported(self, usecase2):
        reports = {}
        for key in ("nn", "lgbm", "xgb"):
            reports[key] = evasion_resilience(
                usecase2[key],
                usecase2["X_test"],
                usecase2["adversarial"].X,
                usecase2["y_test"],
                usecase2["adversarial"].cost_seconds,
            )
        # complexity constant across victims (generated once on the NN)
        complexities = {r.complexity for r in reports.values()}
        assert len(complexities) == 1
        # NN (the surrogate itself) must take real damage
        assert reports["nn"].impact > 0.05

    def test_shap_ranking_shifts_under_evasion(self, usecase2):
        """Fig. 7(a/b): the per-feature SHAP importance vector must change
        between benign and adversarial inputs."""
        nn = usecase2["nn"]
        web_class = int(np.flatnonzero(nn.classes_ == "web")[0])
        explainer = KernelShapExplainer(
            nn.predict_proba,
            usecase2["X_train"][:30],
            n_coalitions=96,
            seed=0,
        )
        benign_rows = usecase2["X_test"][:8]
        adv_rows = usecase2["adversarial"].X[:8]
        imp_benign = explainer.mean_abs_importance(benign_rows, web_class)
        imp_adv = explainer.mean_abs_importance(adv_rows, web_class)
        assert imp_benign.shape == (len(FEATURE_NAMES),)
        # rankings must not be identical after the attack
        assert not np.array_equal(
            np.argsort(-imp_benign)[:5], np.argsort(-imp_adv)[:5]
        ) or not np.allclose(imp_benign, imp_adv, rtol=0.05)

    def test_protocol_features_matter_for_web(self, usecase2):
        """The paper's SHAP discussion centres on the tcp/udp protocol
        features.  On this reduced 84-trace fixture we only smoke-check
        that they are not at the bottom of the ranking; the full-size
        check lives in benchmarks/bench_fig7_shap_shift.py."""
        nn = usecase2["nn"]
        web_class = int(np.flatnonzero(nn.classes_ == "web")[0])
        explainer = KernelShapExplainer(
            nn.predict_proba,
            usecase2["X_train"][:30],
            n_coalitions=96,
            seed=0,
        )
        imp = explainer.mean_abs_importance(usecase2["X_test"][:8], web_class)
        ranking = list(np.argsort(-imp))
        tcp_rank = ranking.index(FEATURE_NAMES.index("protocol_tcp_ratio"))
        udp_rank = ranking.index(FEATURE_NAMES.index("protocol_udp_ratio"))
        assert min(tcp_rank, udp_rank) < 2 * len(FEATURE_NAMES) // 3
