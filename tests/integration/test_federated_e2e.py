"""End-to-end federated scenario: Fig. 2(c) under SPATIAL oversight."""

import numpy as np
import pytest

from repro.core import (
    AIDashboard,
    AlertRule,
    ModelContext,
    PerformanceSensor,
)
from repro.federated import (
    FederatedClient,
    FederatedTrainer,
    MaliciousClient,
    coordinate_median,
)


@pytest.fixture(scope="module")
def shards(blobs):
    X, y = blobs
    X_test, y_test = X[:60], y[:60]
    X_train, y_train = X[60:], y[60:]
    per = len(y_train) // 6
    honest = [
        FederatedClient(i, X_train[i * per : (i + 1) * per],
                        y_train[i * per : (i + 1) * per])
        for i in range(6)
    ]
    poisoned = [
        MaliciousClient(
            i,
            X_train[i * per : (i + 1) * per],
            y_train[i * per : (i + 1) * per],
            update_scale=-5.0,
        )
        if i < 2
        else honest[i]
        for i in range(6)
    ]
    return honest, poisoned, (X_test, y_test)


class TestFederatedUnderSpatial:
    def test_poison_alert_and_robust_recovery(self, shards):
        honest, poisoned, eval_data = shards
        X_test, y_test = eval_data
        sensor = PerformanceSensor(clock=lambda: 0.0)
        dashboard = AIDashboard()
        dashboard.add_rule(
            AlertRule(sensor="performance", threshold=0.85,
                      message="global model degraded")
        )

        def observe(trainer, version):
            reading = sensor.measure(
                ModelContext(
                    model=trainer.global_model,
                    X_test=X_test,
                    y_test=y_test,
                    model_version=version,
                )
            )
            dashboard.add_reading(reading)
            return reading.value

        # honest federation converges, no alerts
        clean = FederatedTrainer(honest, seed=0)
        clean.run(8, local_epochs=2)
        clean_acc = observe(clean, 1)
        assert clean_acc > 0.9
        assert dashboard.alerts() == []

        # poisoned FedAvg degrades and the alert fires
        attacked = FederatedTrainer(poisoned, seed=0)
        attacked.run(8, local_epochs=2)
        poisoned_acc = observe(attacked, 2)
        assert poisoned_acc < clean_acc
        assert dashboard.alerts(), "degradation must raise the SLO alert"

        # operator switches to robust aggregation: accuracy recovers
        defended = FederatedTrainer(
            poisoned, seed=0, aggregator=coordinate_median
        )
        defended.run(8, local_epochs=2)
        defended_acc = observe(defended, 3)
        assert defended_acc > poisoned_acc
        assert defended_acc > 0.9

    def test_dashboard_series_tells_the_story(self, shards):
        """The three observations above form a down-then-up series."""
        honest, poisoned, eval_data = shards
        X_test, y_test = eval_data
        sensor = PerformanceSensor(clock=lambda: 0.0)
        values = []
        for trainer in (
            FederatedTrainer(honest, seed=0),
            FederatedTrainer(poisoned, seed=0),
            FederatedTrainer(poisoned, seed=0, aggregator=coordinate_median),
        ):
            trainer.run(8, local_epochs=2)
            values.append(
                sensor.measure(
                    ModelContext(
                        model=trainer.global_model,
                        X_test=X_test,
                        y_test=y_test,
                    )
                ).value
            )
        assert values[1] < values[0]
        assert values[2] > values[1]
