"""Tests for the discrete-event simulation engine."""

import pytest

from repro.gateway.simulation import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.schedule(1.0, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        hits = []

        def recurring(n):
            def cb():
                hits.append(sim.now)
                if n > 1:
                    sim.schedule(1.0, recurring(n - 1))

            return cb

        sim.schedule(1.0, recurring(3))
        sim.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(5.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [5.0]

    def test_run_until_horizon(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append("early"))
        sim.schedule(10.0, lambda: hits.append("late"))
        sim.run(until=5.0)
        assert hits == ["early"]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_resume_after_horizon(self):
        sim = Simulator()
        hits = []
        sim.schedule(10.0, lambda: hits.append("late"))
        sim.run(until=5.0)
        sim.run()
        assert hits == ["late"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=100)

    def test_processed_events_counter(self):
        sim = Simulator()
        for __ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 5
