"""Tests for open-loop Poisson arrival processes."""

import numpy as np
import pytest

from repro.gateway.arrivals import PoissonArrivalGroup, arrival_chunks


class TestPoissonArrivalGroup:
    def test_valid(self):
        group = PoissonArrivalGroup("shap", rate_rps=100.0, n_requests=10)
        assert group.start_at == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_rps": 0.0, "n_requests": 10},
            {"rate_rps": -1.0, "n_requests": 10},
            {"rate_rps": 10.0, "n_requests": 0},
            {"rate_rps": 10.0, "n_requests": 5, "start_at": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PoissonArrivalGroup("shap", **kwargs)


class TestArrivalChunks:
    def test_chunking_matches_single_cumsum(self):
        # same draws, same workload; only float summation order differs
        # at chunk boundaries (numpy cumsum uses pairwise partial sums)
        group = PoissonArrivalGroup(
            "shap", rate_rps=250.0, n_requests=10_000, start_at=3.0
        )
        chunked = np.concatenate(
            list(arrival_chunks(group, np.random.default_rng(42), 512))
        )
        whole = 3.0 + np.cumsum(
            np.random.default_rng(42).exponential(1.0 / 250.0, size=10_000)
        )
        assert np.allclose(chunked, whole, rtol=1e-12, atol=0.0)

    def test_fixed_seed_and_chunk_size_is_deterministic(self):
        group = PoissonArrivalGroup("shap", rate_rps=250.0, n_requests=5000)
        first = np.concatenate(
            list(arrival_chunks(group, np.random.default_rng(7), 512))
        )
        second = np.concatenate(
            list(arrival_chunks(group, np.random.default_rng(7), 512))
        )
        assert np.array_equal(first, second)

    def test_chunk_sizes_bounded(self):
        group = PoissonArrivalGroup("shap", rate_rps=10.0, n_requests=1000)
        sizes = [
            len(chunk)
            for chunk in arrival_chunks(group, np.random.default_rng(0), 128)
        ]
        assert sum(sizes) == 1000
        assert max(sizes) == 128
        assert sizes[-1] == 1000 % 128 or sizes[-1] == 128

    def test_times_strictly_increasing_across_chunks(self):
        group = PoissonArrivalGroup("shap", rate_rps=500.0, n_requests=5000)
        times = np.concatenate(
            list(arrival_chunks(group, np.random.default_rng(1), 700))
        )
        assert np.all(np.diff(times) > 0)

    def test_mean_rate_matches(self):
        group = PoissonArrivalGroup("shap", rate_rps=100.0, n_requests=50_000)
        times = np.concatenate(
            list(arrival_chunks(group, np.random.default_rng(2), 8192))
        )
        measured = len(times) / times[-1]
        assert measured == pytest.approx(100.0, rel=0.02)

    def test_invalid_chunk_size(self):
        group = PoissonArrivalGroup("shap", rate_rps=10.0, n_requests=10)
        with pytest.raises(ValueError):
            next(arrival_chunks(group, np.random.default_rng(0), 0))
