"""Tests for the columnar RecordLog (struct-of-arrays request storage)."""

import pytest

from repro.gateway.records import RecordLog


class TestInterning:
    def test_roundtrip(self):
        log = RecordLog()
        rid = log.intern_route("shap")
        pid = log.intern_payload("tabular")
        assert log.route_name(rid) == "shap"
        assert log.payload_name(pid) == "tabular"

    def test_interning_is_idempotent(self):
        log = RecordLog()
        assert log.intern_route("shap") == log.intern_route("shap")
        assert log.intern_route("lime") != log.intern_route("shap")

    def test_error_code_zero_is_no_error(self):
        log = RecordLog()
        assert log.intern_error("") == 0
        assert log.error_message(0) == ""
        assert log.intern_error("queue full (503)") == 1

    def test_route_names_vocabulary(self):
        log = RecordLog()
        log.intern_route("a")
        log.intern_route("b")
        assert log.route_names == ["a", "b"]


class TestRowLifecycle:
    def test_append_stamps_identity_columns(self):
        log = RecordLog()
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        row = log.append(rid, pid, 1.5)
        assert log.arrival[row] == 1.5
        assert log.route_ids[row] == rid
        assert log.payload_ids[row] == pid
        assert bool(log.ok[row])
        assert len(log) == 1
        assert log.appended == 1

    def test_geometric_growth_preserves_rows(self):
        log = RecordLog(initial_capacity=2)
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        rows = [log.append(rid, pid, float(i)) for i in range(10)]
        assert log.capacity >= 10
        for i, row in enumerate(rows):
            assert log.arrival[row] == float(i)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            RecordLog(initial_capacity=0)

    def test_fail_marks_row(self):
        log = RecordLog()
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        code = log.intern_error("queue full (503)")
        row = log.append(rid, pid, 1.0)
        log.fail(row, code, 2.0)
        assert not log.ok[row]
        assert log.start[row] == log.end[row] == 2.0
        assert log.error_codes[row] == code


class TestRetainMode:
    def test_release_is_noop_and_records_materialise(self):
        log = RecordLog(retain=True)
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        row = log.append(rid, pid, 0.5)
        log.start[row] = 0.6
        log.end[row] = 0.9
        log.release(row)
        assert len(log) == 1  # nothing recycled
        [record] = log.records()
        assert record.request.route == "svc"
        assert record.arrival == 0.5
        assert record.response_time == pytest.approx(0.4)
        assert record.success
        assert record.error == ""

    def test_failed_row_view_carries_error(self):
        log = RecordLog(retain=True)
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        code = log.intern_error("boom")
        row = log.append(rid, pid, 0.0)
        log.fail(row, code, 1.0)
        record = log.record(row)
        assert not record.success
        assert record.error == "boom"


class TestRingMode:
    def test_released_rows_are_recycled(self):
        log = RecordLog(initial_capacity=4, retain=False)
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        first = log.append(rid, pid, 0.0)
        log.release(first)
        second = log.append(rid, pid, 1.0)
        assert second == first
        assert log.recycled == 1
        assert log.appended == 2
        assert len(log) == 1  # high-water mark never moved

    def test_memory_bounded_by_in_flight_not_total(self):
        log = RecordLog(initial_capacity=4, retain=False)
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        for i in range(10_000):
            row = log.append(rid, pid, float(i))
            log.release(row)
        assert log.capacity == 4
        assert log.appended == 10_000

    def test_recycled_row_resets_ok_flag(self):
        log = RecordLog(retain=False)
        rid = log.intern_route("svc")
        pid = log.intern_payload("tabular")
        code = log.intern_error("boom")
        row = log.append(rid, pid, 0.0)
        log.fail(row, code, 1.0)
        log.release(row)
        again = log.append(rid, pid, 2.0)
        assert again == row
        assert bool(log.ok[again])  # previous failure must not leak

    def test_records_refused(self):
        log = RecordLog(retain=False)
        with pytest.raises(ValueError):
            log.records()
