"""Tests for the rate-limiting gateway plugin."""

import pytest

from repro.gateway import (
    APIGateway,
    LoadGenerator,
    Machine,
    MicroService,
    RateLimitRule,
    RateLimitedGateway,
    Request,
    ServiceTimeModel,
    ThreadGroup,
)
from repro.gateway.simulation import Simulator


def make_setup(max_requests=3, window=1.0):
    sim = Simulator()
    inner = APIGateway(sim, overhead_seconds=0.0)
    inner.register(
        MicroService(
            name="svc",
            machine=Machine("host", vcpus=8, ram_gb=4),
            service_time=ServiceTimeModel({"tabular": 0.01}, jitter=0.0),
        )
    )
    limited = RateLimitedGateway(
        inner, rules={"svc": RateLimitRule(max_requests, window)}
    )
    return sim, limited


class TestRateLimitRule:
    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            RateLimitRule(max_requests=0)
        with pytest.raises(ValueError):
            RateLimitRule(max_requests=5, window_seconds=0.0)


class TestRateLimitedGateway:
    def test_within_budget_passes(self):
        sim, gateway = make_setup(max_requests=5)
        results = []
        for i in range(3):
            gateway.dispatch(Request(i, "svc"), results.append)
        sim.run()
        assert all(r.success for r in results)
        assert gateway.rejected == 0

    def test_burst_over_budget_rejected(self):
        sim, gateway = make_setup(max_requests=3)
        results = []
        for i in range(10):
            gateway.dispatch(Request(i, "svc"), results.append)
        sim.run()
        failures = [r for r in results if not r.success]
        assert len(failures) == 7
        assert all("429" in r.error for r in failures)
        assert gateway.rejected == 7

    def test_window_slides(self):
        sim, gateway = make_setup(max_requests=2, window=1.0)
        results = []

        def burst(start_id):
            def fire():
                for i in range(2):
                    gateway.dispatch(Request(start_id + i, "svc"), results.append)

            return fire

        sim.schedule(0.0, burst(0))
        sim.schedule(2.0, burst(10))  # new window: budget refreshed
        sim.run()
        assert all(r.success for r in results)

    def test_unlimited_routes_unaffected(self):
        sim = Simulator()
        inner = APIGateway(sim, overhead_seconds=0.0)
        inner.register(
            MicroService(
                name="svc",
                machine=Machine("host", vcpus=4, ram_gb=4),
                service_time=ServiceTimeModel({"tabular": 0.01}, jitter=0.0),
            )
        )
        gateway = RateLimitedGateway(inner)  # no rules
        results = []
        for i in range(50):
            gateway.dispatch(Request(i, "svc"), results.append)
        sim.run()
        assert all(r.success for r in results)

    def test_set_rule_later(self):
        sim, gateway = make_setup(max_requests=100)
        gateway.set_rule("svc", RateLimitRule(max_requests=1))
        results = []
        gateway.dispatch(Request(1, "svc"), results.append)
        gateway.dispatch(Request(2, "svc"), results.append)
        sim.run()
        assert sum(1 for r in results if not r.success) == 1

    def test_works_with_load_generator(self):
        """The limiter plugs into the JMeter harness; error rate appears."""
        sim, gateway = make_setup(max_requests=5, window=10.0)
        generator = LoadGenerator(sim, gateway)
        generator.add_thread_group(
            ThreadGroup(route="svc", n_threads=20, rampup_seconds=0.1)
        )
        report = generator.run()
        assert report.n_requests == 20
        assert report.n_errors == 15
        assert report.error_rate == pytest.approx(0.75)

    def test_rejections_recorded_at_gateway(self):
        sim, gateway = make_setup(max_requests=1)
        results = []
        gateway.dispatch(Request(1, "svc"), results.append)
        gateway.dispatch(Request(2, "svc"), results.append)
        sim.run()
        assert len(gateway.gateway.records) == 2
