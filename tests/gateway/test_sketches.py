"""Tests for the streaming statistics (sketch, moments, reservoir, exemplars)."""

import math

import numpy as np
import pytest

from repro.gateway.sketches import (
    ExemplarSlots,
    QuantileSketch,
    ReservoirSample,
    RouteStats,
    StreamingMoments,
)


class TestQuantileSketch:
    def test_relative_accuracy_guarantee(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(3.0, 1.2, size=50_000)
        sketch = QuantileSketch(relative_accuracy=0.005)
        for value in samples:
            sketch.insert(float(value))
        for q in (0.01, 0.25, 0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            assert sketch.quantile(q) == pytest.approx(exact, rel=0.01)

    def test_extremes_are_exact(self):
        sketch = QuantileSketch()
        for value in (3.0, 1.0, 7.0):
            sketch.insert(value)
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 7.0
        assert sketch.min == 1.0
        assert sketch.max == 7.0

    def test_empty_sketch_returns_zero(self):
        assert QuantileSketch().quantile(0.5) == 0.0

    def test_zero_and_negative_values_tracked(self):
        sketch = QuantileSketch()
        for value in (0.0, 0.0, 0.0, 10.0):
            sketch.insert(value)
        assert sketch.quantile(0.25) <= 0.0
        assert sketch.count == 4

    def test_memory_is_bounded_by_value_range_not_count(self):
        sketch = QuantileSketch(relative_accuracy=0.005)
        rng = np.random.default_rng(1)
        for value in rng.uniform(1e-3, 3600.0, size=100_000):
            sketch.insert(float(value))
        # 1 ms .. 1 h at 0.5% accuracy: ~1520 log-gamma bins
        assert sketch.bin_count < 2200

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(2)
        a_vals = rng.lognormal(2.0, 0.8, size=5000)
        b_vals = rng.lognormal(4.0, 0.5, size=3000)
        merged = QuantileSketch()
        separate_a = QuantileSketch()
        separate_b = QuantileSketch()
        for v in a_vals:
            merged.insert(float(v))
            separate_a.insert(float(v))
        for v in b_vals:
            merged.insert(float(v))
            separate_b.insert(float(v))
        separate_a.merge(separate_b)
        assert separate_a.count == merged.count
        assert separate_a.min == merged.min
        assert separate_a.max == merged.max
        for q in (0.1, 0.5, 0.95, 0.99):
            assert separate_a.quantile(q) == merged.quantile(q)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.005).merge(QuantileSketch(0.01))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)


class TestStreamingMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.normal(50.0, 9.0, size=4000)
        moments = StreamingMoments()
        for v in values:
            moments.add(float(v))
        assert moments.mean == pytest.approx(float(values.mean()))
        assert moments.variance == pytest.approx(float(values.var()), rel=1e-9)
        assert moments.std == pytest.approx(float(values.std()), rel=1e-9)

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(4)
        values = rng.normal(0.0, 1.0, size=1001)
        whole = StreamingMoments()
        left = StreamingMoments()
        right = StreamingMoments()
        for v in values:
            whole.add(float(v))
        for v in values[:400]:
            left.add(float(v))
        for v in values[400:]:
            right.add(float(v))
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.variance == pytest.approx(whole.variance)

    def test_merge_into_empty(self):
        a = StreamingMoments()
        b = StreamingMoments()
        b.add(5.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 5.0
        b.merge(StreamingMoments())  # merging empty changes nothing
        assert b.count == 1

    def test_empty_variance_is_zero(self):
        assert StreamingMoments().variance == 0.0


class TestReservoirSample:
    def test_keeps_everything_under_k(self):
        res = ReservoirSample(k=10, seed=0)
        for i in range(5):
            res.offer(float(i), float(i) * 2, 0.0)
        assert len(res.items()) == 5

    def test_capped_at_k(self):
        res = ReservoirSample(k=16, seed=0)
        for i in range(10_000):
            res.offer(float(i), 1.0, 0.0)
        assert len(res.items()) == 16

    def test_uniformity(self):
        # each of 1000 items should land in a k=100 reservoir w.p. ~0.1
        hits = np.zeros(1000)
        for seed in range(60):
            res = ReservoirSample(k=100, seed=seed)
            for i in range(1000):
                res.offer(float(i), 0.0, 0.0)
            for a, __, __ in res.items():
                hits[int(a)] += 1
        rates = hits / 60.0
        assert abs(rates.mean() - 0.1) < 0.005
        # early items must not be systematically favoured over late ones
        assert abs(rates[:500].mean() - rates[500:].mean()) < 0.02

    def test_seed_determinism(self):
        def fill(seed):
            res = ReservoirSample(k=8, seed=seed)
            for i in range(500):
                res.offer(float(i), 0.0, 0.0)
            return res.items()

        assert fill(1) == fill(1)
        assert fill(1) != fill(2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ReservoirSample(k=0)


class TestExemplarSlots:
    def test_keeps_k_slowest(self):
        slots = ExemplarSlots(k=3)
        for ms in (5.0, 50.0, 1.0, 99.0, 30.0, 7.0):
            slots.offer(ms, 0.0, "svc", None)
        kept = [item[0] for item in slots.items()]
        assert kept == [99.0, 50.0, 30.0]
        assert slots.offered == 6

    def test_under_capacity_keeps_all(self):
        slots = ExemplarSlots(k=4)
        slots.offer(2.0, 0.0, "svc", None)
        assert [item[0] for item in slots.items()] == [2.0]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ExemplarSlots(k=0)


class TestRouteStats:
    def test_errors_counted_but_not_sampled(self):
        stats = RouteStats("svc", seed=0)
        stats.observe(1.0, 120.0, True, 1)
        stats.observe(2.0, 0.0, False, 2)
        assert stats.n_requests == 2
        assert stats.n_errors == 1
        assert stats.latency.count == 1
        assert stats.moments.count == 1
        assert len(stats.series.items()) == 1

    def test_timeline_is_time_sorted(self):
        stats = RouteStats("svc", seed=0)
        for end, ms in ((3.0, 30.0), (1.0, 10.0), (2.0, 20.0)):
            stats.observe(end, ms, True, 1)
        assert stats.timeline() == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]

    def test_active_series_pairs(self):
        stats = RouteStats("svc", seed=0)
        stats.observe(1.0, 10.0, True, 7)
        assert stats.active_series() == [(7, 10.0)]
