"""Tests for the Fig. 8(a) deployment builder and its calibration."""

import pytest

from repro.gateway.cluster import (
    GATEWAY_MACHINE,
    PAPER_SERVICES,
    build_paper_deployment,
)
from repro.gateway.loadgen import LoadGenerator, ThreadGroup


class TestTopology:
    def test_five_services(self):
        assert set(PAPER_SERVICES) == {
            "lime",
            "shap",
            "occlusion",
            "impact",
            "ai_pipeline",
        }

    def test_machine_specs_match_paper(self):
        assert GATEWAY_MACHINE.vcpus == 32
        assert GATEWAY_MACHINE.ram_gb == 64
        lime_machine = PAPER_SERVICES["lime"][0]
        assert lime_machine.vcpus == 4 and lime_machine.ram_gb == 4
        occ_machine = PAPER_SERVICES["occlusion"][0]
        assert occ_machine.ram_gb == 8
        impact_machine = PAPER_SERVICES["impact"][0]
        assert impact_machine.gpu
        assert impact_machine.ram_gb == 128

    def test_all_routes_registered(self):
        __, gateway = build_paper_deployment()
        assert set(gateway.routes) == set(PAPER_SERVICES)

    def test_occlusion_rejects_tabular(self):
        sim, gateway = build_paper_deployment()
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(
            ThreadGroup(route="occlusion", n_threads=1, payload="tabular")
        )
        report = gen.run()
        assert report.n_errors == 1


class TestCalibration:
    """The deployment must reproduce the paper's §VII latency findings."""

    def run_route(self, route, n_threads, iterations, payload="tabular", seed=1):
        sim, gateway = build_paper_deployment(seed=seed)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(
            ThreadGroup(
                route=route,
                n_threads=n_threads,
                rampup_seconds=1.0,
                iterations=iterations,
                payload=payload,
            )
        )
        return gen.run()

    def test_impact_converges_near_1600ms(self):
        report = self.run_route("impact", 100, 3)
        assert report.avg_response_ms == pytest.approx(1600, rel=0.15)

    def test_shap_tabular_near_228ms(self):
        report = self.run_route("shap", 100, 60)
        assert report.avg_response_ms == pytest.approx(228.6, rel=0.2)

    def test_lime_tabular_near_243ms(self):
        report = self.run_route("lime", 100, 60)
        assert report.avg_response_ms == pytest.approx(243.4, rel=0.2)

    def test_lime_beats_shap_latency_ordering(self):
        """LIME is slightly slower than SHAP in the paper's Fig. 8(c)."""
        shap = self.run_route("shap", 100, 60)
        lime = self.run_route("lime", 100, 60)
        assert lime.avg_response_ms > shap.avg_response_ms

    def test_image_lime_exceeds_one_second(self):
        report = self.run_route("lime", 5, 3, payload="image")
        assert report.avg_response_ms > 700

    def test_image_lime_grows_with_concurrency(self):
        """Fig. 8(d): steady response-time increase with concurrent users."""
        averages = [
            self.run_route("lime", n, 3, payload="image").avg_response_ms
            for n in (5, 15, 25)
        ]
        assert averages[0] < averages[1] < averages[2]

    def test_impact_insensitive_to_concurrency(self):
        """GPU batching: 10 vs 100 threads barely moves the average."""
        low = self.run_route("impact", 10, 3)
        high = self.run_route("impact", 100, 3)
        assert high.avg_response_ms < 1.5 * low.avg_response_ms

    def test_deterministic_given_seed(self):
        a = self.run_route("shap", 10, 5, seed=3)
        b = self.run_route("shap", 10, 5, seed=3)
        assert a.avg_response_ms == b.avg_response_ms
