"""Tests for the autoscaling controller (§V dynamic capacity)."""

import pytest

from repro.gateway import (
    LoadGenerator,
    Machine,
    MicroService,
    ServiceTimeModel,
    ThreadGroup,
    build_paper_deployment,
)
from repro.gateway.autoscale import Autoscaler, AutoscalerPolicy
from repro.gateway.gateway import APIGateway
from repro.gateway.simulation import Simulator


def slow_service(concurrency=1):
    return MicroService(
        name="svc",
        machine=Machine("host", vcpus=4, ram_gb=4),
        service_time=ServiceTimeModel({"tabular": 1.0}, jitter=0.0),
        concurrency=concurrency,
    )


class TestAutoscalerPolicy:
    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_workers=5, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalerPolicy(scale_up_ratio=0.0)


class TestSetConcurrency:
    def test_growth_drains_queue(self):
        sim = Simulator()
        service = slow_service(concurrency=1)
        done = []
        from repro.gateway.services import Request

        for i in range(4):
            req = Request(i, "svc")
            sim.schedule(0.0, (lambda r: lambda: service.submit(r, sim, done.append))(req))
        sim.run(until=0.5)
        assert service.queue_length == 3
        service.set_concurrency(4, sim)
        assert service.queue_length == 0
        assert service.busy_workers == 4
        sim.run()
        assert len(done) == 4

    def test_invalid_target_raises(self):
        with pytest.raises(ValueError):
            slow_service().set_concurrency(0, Simulator())


class TestAutoscaler:
    def run_with_scaler(self, policy, n_threads=12, horizon=60.0):
        sim = Simulator()
        gateway = APIGateway(sim, overhead_seconds=0.0)
        service = slow_service(concurrency=1)
        gateway.register(service)
        scaler = Autoscaler(sim, interval_seconds=0.5, policy=policy)
        scaler.watch(service)
        scaler.start(horizon_seconds=horizon)
        generator = LoadGenerator(sim, gateway)
        generator.add_thread_group(
            ThreadGroup(route="svc", n_threads=n_threads, iterations=2)
        )
        report = generator.run()
        return report, scaler, service

    def test_scales_up_under_pressure(self):
        __, scaler, service = self.run_with_scaler(
            AutoscalerPolicy(min_workers=1, max_workers=8)
        )
        ups = [e for e in scaler.events if e.to_workers > e.from_workers]
        assert ups, "queue pressure must trigger scale-ups"

    def test_scales_back_down_when_idle(self):
        __, scaler, service = self.run_with_scaler(
            AutoscalerPolicy(min_workers=1, max_workers=8)
        )
        assert service.concurrency == 1, "idle pool must shrink to the floor"

    def test_respects_max_workers(self):
        __, scaler, __ = self.run_with_scaler(
            AutoscalerPolicy(min_workers=1, max_workers=3), n_threads=20
        )
        assert all(e.to_workers <= 3 for e in scaler.events)

    def test_latency_improves_vs_static(self):
        static, __, __ = self.run_with_scaler(
            AutoscalerPolicy(min_workers=1, max_workers=1)
        )
        scaled, __, __ = self.run_with_scaler(
            AutoscalerPolicy(min_workers=1, max_workers=8)
        )
        assert scaled.avg_response_ms < static.avg_response_ms

    def test_scale_history_filtered(self):
        __, scaler, __ = self.run_with_scaler(
            AutoscalerPolicy(min_workers=1, max_workers=8)
        )
        assert all(e.service == "svc" for e in scaler.scale_history("svc"))
        assert scaler.scale_history("other") == []

    def test_double_start_raises(self):
        sim = Simulator()
        scaler = Autoscaler(sim)
        scaler.start(horizon_seconds=10.0)
        with pytest.raises(RuntimeError):
            scaler.start(horizon_seconds=10.0)

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            Autoscaler(Simulator(), interval_seconds=0.0)

    def test_on_paper_deployment_image_lime(self):
        """Autoscaling the LIME host cuts the Fig. 8(d) latency."""
        sim, gateway = build_paper_deployment(seed=1)
        lime = gateway._routes["lime"]
        scaler = Autoscaler(
            sim,
            interval_seconds=1.0,
            policy=AutoscalerPolicy(min_workers=4, max_workers=16),
        )
        scaler.watch(lime)
        scaler.start(horizon_seconds=120.0)
        generator = LoadGenerator(sim, gateway)
        generator.add_thread_group(
            ThreadGroup(
                route="lime", n_threads=20, iterations=3, payload="image"
            )
        )
        scaled = generator.run().avg_response_ms

        sim2, gateway2 = build_paper_deployment(seed=1)
        generator2 = LoadGenerator(sim2, gateway2)
        generator2.add_thread_group(
            ThreadGroup(
                route="lime", n_threads=20, iterations=3, payload="image"
            )
        )
        static = generator2.run().avg_response_ms
        assert scaled < static
