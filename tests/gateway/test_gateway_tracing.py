"""Tracing through the gateway: happy path, 404s, queue-full rejections.

The error-path contract (ISSUE satellite): every dispatch — including the
ones that never reach a worker — must close all of its spans with the
right status and leak nothing in the tracer.
"""

import pytest

from repro.gateway.gateway import APIGateway
from repro.gateway.services import (
    Machine,
    MicroService,
    Request,
    ServiceTimeModel,
)
from repro.gateway.simulation import Simulator
from repro.tracing import STATUS_ERROR, TraceCollector, Tracer


@pytest.fixture
def rig():
    sim = Simulator()
    collector = TraceCollector()
    tracer = Tracer(clock=lambda: sim.now, collector=collector, seed=0)
    gateway = APIGateway(sim, overhead_seconds=0.002, tracer=tracer)
    service = MicroService(
        name="svc",
        machine=Machine("host", vcpus=4, ram_gb=4),
        service_time=ServiceTimeModel({"tabular": 0.1}, jitter=0.0, seed=0),
        concurrency=1,
        queue_capacity=1,
        stages={"pipeline.preprocess": 1.0, "pipeline.predict": 3.0},
    )
    gateway.register(service)
    return sim, gateway, tracer, collector, service


def dispatch(sim, gateway, route="svc", n=1, payload="tabular"):
    records = []
    for i in range(n):
        request = Request(request_id=i, route=route, payload=payload)
        sim.schedule(
            0.0,
            (lambda r: lambda: gateway.dispatch(r, records.append))(request),
        )
    sim.run()
    return records


class TestHappyPathTracing:
    def test_one_rooted_trace_with_all_legs(self, rig):
        sim, gateway, tracer, collector, _ = rig
        [record] = dispatch(sim, gateway)
        assert record.success
        assert record.trace is not None
        tree = collector.get(record.trace.trace_id)
        assert tree.root.name == "gateway.request"
        assert tree.span_names() == [
            "gateway.request",
            "gateway.respond",
            "gateway.route",
            "pipeline.predict",
            "pipeline.preprocess",
            "service.process",
        ]
        assert tree.ok
        assert tree.duration == pytest.approx(record.response_time)
        assert tracer.active_spans == 0

    def test_stage_spans_partition_the_processing_span(self, rig):
        sim, gateway, _, collector, _ = rig
        [record] = dispatch(sim, gateway)
        tree = collector.get(record.trace.trace_id)
        process = next(s for s in tree if s.name == "service.process")
        stages = tree.children(process)
        assert [s.name for s in stages] == [
            "pipeline.preprocess",
            "pipeline.predict",
        ]
        assert stages[0].start_time == process.start_time
        assert stages[0].end_time == stages[1].start_time
        assert stages[1].end_time == process.end_time
        # 1:3 weights over a deterministic 0.1s service time
        assert stages[0].duration == pytest.approx(0.025)
        assert stages[1].duration == pytest.approx(0.075)

    def test_queued_request_gets_a_queue_span(self, rig):
        sim, gateway, tracer, collector, _ = rig
        records = dispatch(sim, gateway, n=2)  # concurrency 1: second queues
        assert all(r.success for r in records)
        queued = collector.get(records[1].trace.trace_id)
        queue_span = next(s for s in queued if s.name == "service.queue")
        process = next(s for s in queued if s.name == "service.process")
        assert queue_span.end_time == process.start_time
        assert queue_span.duration == pytest.approx(0.1)  # first request's run
        assert tracer.active_spans == 0

    def test_separate_requests_get_separate_traces(self, rig):
        sim, gateway, _, collector, _ = rig
        records = dispatch(sim, gateway, n=2)
        assert records[0].trace.trace_id != records[1].trace.trace_id
        assert len(collector) == 2


class TestErrorPathTracing:
    def test_unknown_route_closes_both_spans_with_error(self, rig):
        sim, gateway, tracer, collector, _ = rig
        [record] = dispatch(sim, gateway, route="nope")
        assert not record.success
        assert "404" in record.error
        assert record.trace is not None
        tree = collector.get(record.trace.trace_id)
        assert tree.span_names() == ["gateway.request", "gateway.route"]
        assert not tree.ok
        assert tree.root.status == STATUS_ERROR
        assert "404" in tree.root.status_message
        route_span = tree.children(tree.root)[0]
        assert route_span.status == STATUS_ERROR
        assert tracer.active_spans == 0

    def test_queue_full_yields_reject_span_and_error_root(self, rig):
        sim, gateway, tracer, collector, _ = rig
        # concurrency 1 + queue 1: the third simultaneous arrival bounces.
        records = dispatch(sim, gateway, n=3)
        failed = [r for r in records if not r.success]
        assert len(failed) == 1
        assert "503" in failed[0].error
        tree = collector.get(failed[0].trace.trace_id)
        assert "service.reject" in tree.span_names()
        reject = next(s for s in tree if s.name == "service.reject")
        assert reject.status == STATUS_ERROR
        assert reject.duration == 0.0  # fail-fast: rejected on arrival
        assert tree.root.status == STATUS_ERROR
        assert tracer.active_spans == 0
        # the two accepted requests still traced cleanly
        for record in records:
            if record.success:
                assert collector.get(record.trace.trace_id).ok

    def test_unsupported_payload_rejects_with_error_span(self, rig):
        sim, gateway, tracer, collector, _ = rig
        [record] = dispatch(sim, gateway, payload="image")
        assert not record.success
        tree = collector.get(record.trace.trace_id)
        reject = next(s for s in tree if s.name == "service.reject")
        assert reject.status == STATUS_ERROR
        assert "unsupported payload" in reject.status_message
        assert tree.root.status == STATUS_ERROR
        assert tracer.active_spans == 0

    def test_no_collector_growth_beyond_requests(self, rig):
        sim, gateway, tracer, collector, _ = rig
        dispatch(sim, gateway, n=3)
        dispatch(sim, gateway, route="nope")
        assert len(collector) == 4  # one trace per dispatch, nothing extra
        assert collector.dropped_spans == 0
        assert tracer.active_spans == 0


class TestNullTracerDefault:
    def test_untraced_gateway_records_no_trace(self):
        sim = Simulator()
        gateway = APIGateway(sim)
        service = MicroService(
            name="svc",
            machine=Machine("host", vcpus=2, ram_gb=4),
            service_time=ServiceTimeModel({"tabular": 0.1}, jitter=0.0),
        )
        gateway.register(service)
        records = []
        sim.schedule(
            0.0,
            lambda: gateway.dispatch(
                Request(request_id=0, route="svc"), records.append
            ),
        )
        sim.run()
        assert records[0].success
        assert records[0].trace is None
