"""Tests for the API gateway routing and overhead accounting."""

import pytest

from repro.gateway.gateway import APIGateway
from repro.gateway.services import (
    Machine,
    MicroService,
    Request,
    ServiceTimeModel,
)
from repro.gateway.simulation import Simulator


@pytest.fixture()
def setup():
    sim = Simulator()
    gateway = APIGateway(sim, overhead_seconds=0.01)
    service = MicroService(
        name="shap",
        machine=Machine("host", vcpus=2, ram_gb=4),
        service_time=ServiceTimeModel({"tabular": 0.5}, jitter=0.0),
    )
    gateway.register(service)
    return sim, gateway, service


class TestRouting:
    def test_successful_dispatch(self, setup):
        sim, gateway, __ = setup
        results = []
        gateway.dispatch(Request(1, "shap"), results.append)
        sim.run()
        assert len(results) == 1
        record = results[0]
        assert record.success
        # 0.01 in + 0.5 service + 0.01 out
        assert record.response_time == pytest.approx(0.52)

    def test_unknown_route_404(self, setup):
        sim, gateway, __ = setup
        results = []
        gateway.dispatch(Request(1, "nope"), results.append)
        sim.run()
        assert not results[0].success
        assert "404" in results[0].error

    def test_records_collected(self, setup):
        sim, gateway, __ = setup
        for i in range(3):
            gateway.dispatch(Request(i, "shap"), lambda r: None)
        sim.run()
        assert len(gateway.records) == 3

    def test_register_duplicate_raises(self, setup):
        __, gateway, service = setup
        with pytest.raises(ValueError):
            gateway.register(service)

    def test_unregister_then_404(self, setup):
        sim, gateway, __ = setup
        gateway.unregister("shap")
        results = []
        gateway.dispatch(Request(1, "shap"), results.append)
        sim.run()
        assert not results[0].success

    def test_unregister_unknown_raises(self, setup):
        __, gateway, __ = setup
        with pytest.raises(KeyError):
            gateway.unregister("ghost")

    def test_routes_listed(self, setup):
        __, gateway, __ = setup
        assert gateway.routes == ["shap"]

    def test_negative_overhead_raises(self):
        with pytest.raises(ValueError):
            APIGateway(Simulator(), overhead_seconds=-0.1)

    def test_zero_overhead_supported(self):
        sim = Simulator()
        gateway = APIGateway(sim, overhead_seconds=0.0)
        service = MicroService(
            name="svc",
            machine=Machine("host", vcpus=1, ram_gb=1),
            service_time=ServiceTimeModel({"tabular": 1.0}, jitter=0.0),
        )
        gateway.register(service)
        results = []
        gateway.dispatch(Request(1, "svc"), results.append)
        sim.run()
        assert results[0].response_time == pytest.approx(1.0)
