"""Tests for machines, service-time models and micro-service queueing."""

import numpy as np
import pytest

from repro.gateway.services import (
    Machine,
    MicroService,
    Request,
    ServiceTimeModel,
)
from repro.gateway.simulation import Simulator


def make_service(concurrency=2, base=1.0, queue_capacity=10, jitter=0.0):
    return MicroService(
        name="svc",
        machine=Machine("host", vcpus=4, ram_gb=4),
        service_time=ServiceTimeModel({"tabular": base}, jitter=jitter, seed=0),
        concurrency=concurrency,
        queue_capacity=queue_capacity,
    )


class TestMachine:
    def test_valid(self):
        m = Machine("host", vcpus=4, ram_gb=8)
        assert not m.gpu

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            Machine("host", vcpus=0, ram_gb=8)


class TestServiceTimeModel:
    def test_deterministic_without_jitter(self):
        model = ServiceTimeModel({"tabular": 0.5}, jitter=0.0)
        assert model.sample("tabular") == 0.5

    def test_jitter_spreads_samples(self):
        model = ServiceTimeModel({"tabular": 1.0}, jitter=0.3, seed=0)
        samples = [model.sample("tabular") for __ in range(50)]
        assert np.std(samples) > 0.0
        assert all(s > 0 for s in samples)

    def test_unknown_payload_raises(self):
        model = ServiceTimeModel({"tabular": 0.5})
        with pytest.raises(KeyError):
            model.sample("image")

    def test_supports(self):
        model = ServiceTimeModel({"image": 0.5})
        assert model.supports("image")
        assert not model.supports("tabular")

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            ServiceTimeModel({})
        with pytest.raises(ValueError):
            ServiceTimeModel({"tabular": -1.0})
        with pytest.raises(ValueError):
            ServiceTimeModel({"tabular": 1.0}, jitter=-0.5)


class TestMicroServiceQueueing:
    def run_requests(self, service, n, spacing=0.0):
        sim = Simulator()
        done = []
        for i in range(n):
            req = Request(request_id=i, route="svc")
            sim.schedule(
                i * spacing,
                (lambda r: lambda: service.submit(r, sim, done.append))(req),
            )
        sim.run()
        return done

    def test_parallel_within_concurrency(self):
        service = make_service(concurrency=2, base=1.0)
        done = self.run_requests(service, 2)
        assert all(r.response_time == pytest.approx(1.0) for r in done)

    def test_third_request_waits(self):
        service = make_service(concurrency=2, base=1.0)
        done = self.run_requests(service, 3)
        waits = sorted(r.wait_time for r in done)
        assert waits[:2] == [0.0, 0.0]
        assert waits[2] == pytest.approx(1.0)

    def test_fifo_order(self):
        service = make_service(concurrency=1, base=1.0)
        done = self.run_requests(service, 3, spacing=0.1)
        ids = [r.request.request_id for r in done]
        assert ids == [0, 1, 2]

    def test_queue_overflow_rejects(self):
        service = make_service(concurrency=1, base=1.0, queue_capacity=1)
        done = self.run_requests(service, 5)
        failures = [r for r in done if not r.success]
        assert len(failures) == 3
        assert service.rejected == 3
        assert all("503" in r.error for r in failures)

    def test_rejected_requests_have_zero_response_time(self):
        service = make_service(concurrency=1, base=1.0, queue_capacity=0)
        done = self.run_requests(service, 2)
        failed = [r for r in done if not r.success][0]
        assert failed.response_time == 0.0

    def test_unsupported_payload_fails_fast(self):
        service = make_service()
        sim = Simulator()
        done = []
        req = Request(request_id=1, route="svc", payload="image")
        sim.schedule(0.0, lambda: service.submit(req, sim, done.append))
        sim.run()
        assert not done[0].success
        assert "unsupported payload" in done[0].error

    def test_queue_drains_after_busy_period(self):
        service = make_service(concurrency=1, base=0.5, queue_capacity=100)
        done = self.run_requests(service, 10)
        assert len(done) == 10
        assert service.queue_length == 0
        assert service.busy_workers == 0

    def test_peak_queue_tracked(self):
        service = make_service(concurrency=1, base=1.0, queue_capacity=100)
        self.run_requests(service, 5)
        assert service.peak_queue_length == 4

    def test_closed_loop_steady_state_response(self):
        """N closed-loop users on c workers: avg response ≈ N * s / c —
        the law the Fig. 8(c) calibration relies on."""
        service = make_service(concurrency=4, base=0.01, queue_capacity=1000)
        sim = Simulator()
        responses = []

        def make_user(remaining):
            def send():
                req = Request(request_id=remaining, route="svc")

                def on_done(record):
                    responses.append(record.response_time)
                    if remaining > 1:
                        make_user(remaining - 1)()

                service.submit(req, sim, on_done)

            return send

        n_users, iters = 40, 50
        for u in range(n_users):
            sim.schedule(u * 0.001, make_user(iters))
        sim.run()
        expected = n_users * 0.01 / 4
        # sample the middle of the run: full ramp-up done, no wind-down yet
        mid = responses[len(responses) // 4 : len(responses) // 2]
        assert np.mean(mid) == pytest.approx(expected, rel=0.15)

    def test_invalid_concurrency(self):
        with pytest.raises(ValueError):
            make_service(concurrency=0)

    def test_invalid_queue_capacity(self):
        with pytest.raises(ValueError):
            make_service(queue_capacity=-1)

    def test_busy_seconds_accumulate(self):
        service = make_service(concurrency=2, base=1.0)
        self.run_requests(service, 4)
        assert service.busy_seconds == pytest.approx(4.0)

    def test_utilization_full_when_saturated(self):
        service = make_service(concurrency=2, base=1.0)
        self.run_requests(service, 4)  # 4 × 1 s on 2 workers → 2 s elapsed
        assert service.utilization(elapsed_seconds=2.0) == pytest.approx(1.0)

    def test_utilization_partial(self):
        service = make_service(concurrency=4, base=1.0)
        self.run_requests(service, 2)  # 2 busy workers of 4 for 1 s
        assert service.utilization(elapsed_seconds=1.0) == pytest.approx(0.5)

    def test_utilization_invalid_window_raises(self):
        with pytest.raises(ValueError):
            make_service().utilization(0.0)

    def test_concurrency_defaults_to_vcpus(self):
        service = MicroService(
            name="svc",
            machine=Machine("host", vcpus=6, ram_gb=4),
            service_time=ServiceTimeModel({"tabular": 0.1}),
        )
        assert service.concurrency == 6


class TestUtilizationTelemetry:
    def test_utilization_event_snapshot(self):
        service = make_service(concurrency=2, base=1.0)
        TestMicroServiceQueueing().run_requests(service, 4)
        event = service.utilization_event(elapsed_seconds=2.0)
        assert event.source == "svc"
        assert event.kind == "utilization"
        assert event.value == pytest.approx(1.0)
        assert event.attrs["concurrency"] == 2.0
        assert event.attrs["completed"] == 4.0
        assert event.attrs["rejected"] == 0.0
        assert event.attrs["queue_length"] == 0.0

    def test_event_tracks_rejections(self):
        service = make_service(concurrency=1, base=1.0, queue_capacity=1)
        TestMicroServiceQueueing().run_requests(service, 5)
        event = service.utilization_event(elapsed_seconds=2.0)
        assert event.attrs["rejected"] == 3.0
        assert event.attrs["peak_queue_length"] == 1.0

    def test_emit_utilization_publishes_to_bus(self):
        from repro.telemetry import TelemetryBus

        service = make_service(concurrency=2, base=1.0)
        TestMicroServiceQueueing().run_requests(service, 2)
        bus = TelemetryBus()
        spy = bus.subscribe("spy", topics="services")
        service.emit_utilization(bus, elapsed_seconds=1.0)
        events = spy.poll()
        assert len(events) == 1
        assert events[0].source == "svc"
        assert events[0].value == pytest.approx(1.0)

    def test_invalid_window_raises_before_building_event(self):
        with pytest.raises(ValueError):
            make_service().utilization_event(0.0)


class TestDequeDrainOrder:
    """set_concurrency and worker handoff must preserve FIFO arrival order
    now that the waiting room is a deque (and mixes record tuples with
    columnar row ints)."""

    def test_set_concurrency_drains_fifo(self):
        service = make_service(concurrency=1, base=1.0, queue_capacity=100)
        sim = Simulator()
        started = []

        def submit(i):
            req = Request(request_id=i, route="svc")
            service.submit(req, sim, lambda record: None)

        for i in range(6):
            submit(i)
        # one running, five queued; record the order processing starts
        original_start = service._start

        def tracking_start(record, *args, **kwargs):
            started.append(record.request.request_id)
            return original_start(record, *args, **kwargs)

        service._start = tracking_start
        service.set_concurrency(4, sim)
        assert started == [1, 2, 3]  # strictly from the queue head
        sim.run()
        ends = [r.request.request_id for r in service.completed]
        assert sorted(ends) == list(range(6))

    def test_shrink_lowers_cap_without_eviction(self):
        service = make_service(concurrency=4, base=1.0, queue_capacity=100)
        sim = Simulator()
        for i in range(8):
            service.submit(Request(request_id=i, route="svc"), sim, lambda r: None)
        assert service.busy_workers == 4
        service.set_concurrency(1, sim)
        assert service.busy_workers == 4  # in-flight finish; pool drains down
        sim.run()
        assert len(service.completed) == 8
        assert service.busy_workers == 0

    def test_mixed_record_and_row_entries_drain_in_arrival_order(self):
        from repro.gateway.records import RecordLog

        service = make_service(concurrency=1, base=1.0, queue_capacity=100)
        sim = Simulator()
        log = RecordLog(initial_capacity=8, retain=True)
        completions = []
        service.use_columnar(log, sim, lambda row, ok: completions.append(("row", row)))
        route_id = log.intern_route("svc")
        payload_id = log.intern_payload("tabular")

        # interleave: record, row, record, row — all while worker is busy
        service.submit(
            Request(request_id=100, route="svc"),
            sim,
            lambda record: completions.append(("rec", record.request.request_id)),
        )
        row_a = log.append(route_id, payload_id, sim.now)
        service.submit_row(row_a)
        service.submit(
            Request(request_id=101, route="svc"),
            sim,
            lambda record: completions.append(("rec", record.request.request_id)),
        )
        row_b = log.append(route_id, payload_id, sim.now)
        service.submit_row(row_b)
        sim.run()
        assert completions == [
            ("rec", 100),
            ("row", row_a),
            ("rec", 101),
            ("row", row_b),
        ]

    def test_set_concurrency_growth_starts_queued_rows(self):
        from repro.gateway.records import RecordLog

        service = make_service(concurrency=1, base=1.0, queue_capacity=100)
        sim = Simulator()
        log = RecordLog(initial_capacity=8, retain=True)
        done = []
        service.use_columnar(log, sim, lambda row, ok: done.append(row))
        route_id = log.intern_route("svc")
        payload_id = log.intern_payload("tabular")
        rows = [log.append(route_id, payload_id, 0.0) for _ in range(5)]
        for row in rows:
            service.submit_row(row)
        assert service.queue_length == 4
        service.set_concurrency(5, sim)
        assert service.queue_length == 0
        assert service.busy_workers == 5
        sim.run()
        assert done == rows
