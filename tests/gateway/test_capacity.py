"""Tests for the columnar capacity runner and its streaming summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway.arrivals import PoissonArrivalGroup
from repro.gateway.capacity import CapacityRunner, summary_from_log
from repro.gateway.cluster import build_paper_deployment
from repro.gateway.gateway import APIGateway
from repro.gateway.loadgen import LoadGenerator, ThreadGroup
from repro.gateway.services import Machine, MicroService, ServiceTimeModel
from repro.gateway.simulation import Simulator
from repro.telemetry import KIND_LOAD_SUMMARY, KIND_RESPONSE, TelemetryBus
from repro.tracing import TraceCollector, Tracer

#: Sketch tolerance with slack for the 0.5% default relative accuracy.
SKETCH_REL = 0.011


def simple_deployment(
    base=0.05, concurrency=2, queue_capacity=50, jitter=0.0, seed=0,
    overhead=0.002,
):
    sim = Simulator()
    gateway = APIGateway(sim, overhead_seconds=overhead)
    gateway.register(
        MicroService(
            name="svc",
            machine=Machine("host", vcpus=4, ram_gb=4),
            service_time=ServiceTimeModel(
                {"tabular": base}, jitter=jitter, seed=seed
            ),
            concurrency=concurrency,
            queue_capacity=queue_capacity,
        )
    )
    return sim, gateway


class TestClosedLoopEquivalence:
    """With jitter=0 the columnar path must reproduce the record path
    exactly: identical queueing dynamics, counts and response times."""

    GROUPS = [
        ThreadGroup("shap", n_threads=40, rampup_seconds=1.0, iterations=25),
        ThreadGroup("impact", n_threads=10, rampup_seconds=1.0, iterations=3),
        ThreadGroup(
            "lime",
            n_threads=20,
            rampup_seconds=0.5,
            iterations=15,
            payload="image",
            think_time=0.01,
        ),
    ]

    @pytest.fixture(scope="class")
    def reports(self):
        sim, gateway = build_paper_deployment(seed=3, jitter=0.0)
        generator = LoadGenerator(sim, gateway)
        for group in self.GROUPS:
            generator.add_thread_group(group)
        record_report = generator.run()

        sim, gateway = build_paper_deployment(seed=3, jitter=0.0)
        runner = CapacityRunner(
            sim, gateway, retain_records=True, seed=3, series_slots=100_000
        )
        for group in self.GROUPS:
            runner.add_thread_group(group)
        columnar_report = runner.run()
        return record_report, columnar_report, runner

    def test_counts_match_exactly(self, reports):
        record, columnar, __ = reports
        assert columnar.n_requests == record.n_requests
        assert columnar.n_errors == record.n_errors
        assert columnar.error_rate == record.error_rate

    def test_latency_statistics_match(self, reports):
        record, columnar, __ = reports
        assert columnar.avg_response_ms == pytest.approx(
            record.avg_response_ms, rel=1e-9
        )
        for field in (
            "median_response_ms",
            "p95_response_ms",
            "p99_response_ms",
        ):
            assert getattr(columnar, field) == pytest.approx(
                getattr(record, field), rel=SKETCH_REL
            )
        assert columnar.max_response_ms == pytest.approx(
            record.max_response_ms, rel=1e-9
        )

    def test_per_route_breakdown_matches(self, reports):
        record, columnar, __ = reports
        assert set(columnar.per_route) == set(record.per_route)
        for route, expected in record.per_route.items():
            got = columnar.per_route[route]
            assert got.n_requests == expected.n_requests
            assert got.n_errors == expected.n_errors
            assert got.avg_response_ms == pytest.approx(
                expected.avg_response_ms, rel=1e-9
            )

    def test_timeline_matches_with_uncapped_reservoir(self, reports):
        record, columnar, __ = reports
        assert len(columnar.timeline) == len(record.timeline)
        for (end_a, ms_a), (end_b, ms_b) in zip(
            columnar.timeline, record.timeline
        ):
            assert end_a == pytest.approx(end_b, abs=1e-12)
            assert ms_a == pytest.approx(ms_b, abs=1e-9)

    def test_retained_log_oracle_agrees(self, reports):
        __, columnar, runner = reports
        oracle = summary_from_log(runner.log, columnar.duration_seconds)
        assert oracle.n_requests == columnar.n_requests
        assert oracle.n_errors == columnar.n_errors
        assert columnar.p95_response_ms == pytest.approx(
            oracle.p95_response_ms, rel=SKETCH_REL
        )

    def test_records_view_equals_loadgen_semantics(self, reports):
        __, __, runner = reports
        records = runner.records()
        assert len(records) == runner.log.size
        ok = [r for r in records if r.success]
        assert all(r.end >= r.start >= r.arrival for r in ok)


class TestOpenLoop:
    def test_all_requests_complete(self):
        sim, gateway = simple_deployment(base=0.01, concurrency=4)
        runner = CapacityRunner(sim, gateway, retain_records=True, seed=0)
        runner.add_open_loop(
            PoissonArrivalGroup("svc", rate_rps=200.0, n_requests=5000)
        )
        report = runner.run()
        assert report.n_requests == 5000
        assert runner.log.appended == 5000

    def test_under_capacity_throughput_tracks_rate(self):
        sim, gateway = simple_deployment(base=0.01, concurrency=8)
        runner = CapacityRunner(sim, gateway, retain_records=True, seed=1)
        runner.add_open_loop(
            PoissonArrivalGroup("svc", rate_rps=100.0, n_requests=20_000)
        )
        report = runner.run()
        assert report.n_errors == 0
        assert report.throughput_rps == pytest.approx(100.0, rel=0.05)

    def test_over_capacity_rejects_with_503(self):
        sim, gateway = simple_deployment(
            base=0.1, concurrency=1, queue_capacity=5
        )
        runner = CapacityRunner(sim, gateway, retain_records=True, seed=2)
        runner.add_open_loop(
            PoissonArrivalGroup("svc", rate_rps=500.0, n_requests=2000)
        )
        report = runner.run()
        assert report.n_errors > 0
        errors = [r for r in runner.records() if not r.success]
        assert all(r.error == "queue full (503)" for r in errors)
        # rejects cost exactly the two gateway legs
        assert all(
            r.response_time == pytest.approx(0.004) for r in errors
        )

    def test_ring_mode_memory_stays_flat(self):
        sim, gateway = simple_deployment(base=0.005, concurrency=4)
        runner = CapacityRunner(
            sim, gateway, retain_records=False, seed=3, initial_capacity=1024
        )
        runner.add_open_loop(
            PoissonArrivalGroup("svc", rate_rps=300.0, n_requests=100_000)
        )
        report = runner.run()
        assert report.n_requests == 100_000
        # memory is bounded by in-flight count, not run length
        assert runner.log.capacity == 1024
        assert runner.log.recycled > 90_000

    def test_ring_mode_refuses_records(self):
        sim, gateway = simple_deployment()
        runner = CapacityRunner(sim, gateway, retain_records=False, seed=0)
        runner.add_open_loop(
            PoissonArrivalGroup("svc", rate_rps=100.0, n_requests=10)
        )
        runner.run()
        with pytest.raises(ValueError):
            runner.records()

    def test_unknown_route_raises_at_bind(self):
        sim, gateway = simple_deployment()
        runner = CapacityRunner(sim, gateway, seed=0)
        with pytest.raises(KeyError):
            runner.add_open_loop(
                PoissonArrivalGroup("nope", rate_rps=1.0, n_requests=1)
            )


class TestDeterminism:
    def _run(self, seed, n_requests):
        sim, gateway = build_paper_deployment(seed=7)
        runner = CapacityRunner(sim, gateway, retain_records=False, seed=seed)
        runner.add_open_loop(
            PoissonArrivalGroup("shap", rate_rps=4000.0, n_requests=n_requests)
        )
        runner.add_open_loop(
            PoissonArrivalGroup(
                "lime", rate_rps=500.0, n_requests=n_requests // 8,
                payload="image",
            )
        )
        return runner.run()

    def test_same_seed_million_request_runs_identical(self):
        # the full SummaryReport dataclass compares per-route breakdowns,
        # timelines and every statistic — bit-identical reproduction
        first = self._run(seed=11, n_requests=1_000_000)
        second = self._run(seed=11, n_requests=1_000_000)
        assert first == second
        assert first.n_requests == 1_000_000 + 125_000

    def test_different_seed_differs(self):
        first = self._run(seed=1, n_requests=5000)
        second = self._run(seed=2, n_requests=5000)
        assert first != second


class TestTracingAndTelemetry:
    def test_trace_sampled_requests_produce_exemplars(self):
        collector = TraceCollector()
        sim = Simulator()
        tracer = Tracer(lambda: sim.now, collector=collector, seed=0)
        gateway = APIGateway(sim, overhead_seconds=0.002, tracer=tracer)
        gateway.register(
            MicroService(
                name="svc",
                machine=Machine("host", vcpus=4, ram_gb=4),
                service_time=ServiceTimeModel({"tabular": 0.05}, jitter=0.0),
                concurrency=2,
            )
        )
        runner = CapacityRunner(
            sim, gateway, retain_records=True, seed=0, trace_every=10
        )
        runner.add_thread_group(
            ThreadGroup("svc", n_threads=5, rampup_seconds=0.1, iterations=20)
        )
        report = runner.run()
        assert report.n_requests == 100
        traced = [
            stats for stats in runner.route_stats.values()
            if stats.exemplars.offered
        ]
        assert traced, "trace-sampled requests must offer exemplars"
        assert sum(s.exemplars.offered for s in traced) == 10
        events = runner.exemplar_events()
        assert events
        assert all(e.kind == KIND_RESPONSE for e in events)
        assert all(e.trace_id is not None for e in events)
        recorded = {tree.root.context.trace_id for tree in collector.traces()}
        assert {e.trace_id for e in events} <= recorded

    def test_summary_events_published_to_telemetry(self):
        bus = TelemetryBus()
        received = []
        bus.subscribe("probe", "gateway", callback=received.append)
        sim, gateway = simple_deployment(base=0.01)
        runner = CapacityRunner(
            sim, gateway, retain_records=False, seed=0, telemetry=bus
        )
        runner.add_open_loop(
            PoissonArrivalGroup("svc", rate_rps=50.0, n_requests=500)
        )
        report = runner.run()
        summaries = [e for e in received if e.kind == KIND_LOAD_SUMMARY]
        assert summaries
        assert summaries[0].value == pytest.approx(report.avg_response_ms)
        # the columnar path never publishes per-request events
        responses = [e for e in received if e.kind == KIND_RESPONSE]
        assert len(responses) <= runner.exemplar_slots * len(runner.route_stats)

    def test_invalid_trace_every(self):
        sim, gateway = simple_deployment()
        with pytest.raises(ValueError):
            CapacityRunner(sim, gateway, trace_every=-1)


class TestSketchOracleProperty:
    """Property: across random thread-group mixes the streaming summary
    matches the record-based oracle — counts exactly, percentiles within
    the sketch tolerance."""

    @settings(max_examples=12, deadline=None)
    @given(
        groups=st.lists(
            st.tuples(
                st.sampled_from(["shap", "lime"]),
                st.integers(min_value=1, max_value=15),  # threads
                st.integers(min_value=1, max_value=8),  # iterations
                st.floats(min_value=0.0, max_value=1.0),  # rampup
            ),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_summary_matches_oracle(self, groups, seed):
        sim = Simulator()
        gateway = APIGateway(sim, overhead_seconds=0.001)
        for name in ("shap", "lime"):
            gateway.register(
                MicroService(
                    name=name,
                    machine=Machine("host", vcpus=2, ram_gb=4),
                    service_time=ServiceTimeModel(
                        {"tabular": 0.02}, jitter=0.2, seed=seed
                    ),
                    concurrency=2,
                    queue_capacity=3,  # small: force queue-full errors
                )
            )
        runner = CapacityRunner(
            sim, gateway, retain_records=True, seed=seed,
            series_slots=10_000,
        )
        for route, threads, iterations, rampup in groups:
            runner.add_thread_group(
                ThreadGroup(
                    route,
                    n_threads=threads,
                    rampup_seconds=rampup,
                    iterations=iterations,
                )
            )
        report = runner.run()
        oracle = summary_from_log(runner.log, report.duration_seconds)
        assert report.n_requests == oracle.n_requests
        assert report.n_errors == oracle.n_errors
        assert report.error_rate == oracle.error_rate
        if report.n_requests > report.n_errors:
            assert report.avg_response_ms == pytest.approx(
                oracle.avg_response_ms, rel=1e-6
            )
            assert report.max_response_ms == pytest.approx(
                oracle.max_response_ms, rel=1e-9
            )
            # the sketch guarantee is rank-based while np.percentile
            # interpolates, so check against the bracketing order stats
            n = runner.log.size
            done = runner.log.end[:n] > 0.0
            okay = done & runner.log.ok[:n]
            times = (
                runner.log.end[:n][okay] - runner.log.arrival[:n][okay]
            ) * 1000.0
            for q, field in (
                (0.5, "median_response_ms"),
                (0.95, "p95_response_ms"),
                (0.99, "p99_response_ms"),
            ):
                lo = float(np.quantile(times, q, method="lower"))
                hi = float(np.quantile(times, q, method="higher"))
                got = getattr(report, field)
                assert lo * (1 - SKETCH_REL) - 1e-9 <= got
                assert got <= hi * (1 + SKETCH_REL) + 1e-9
        assert set(report.per_route) == set(oracle.per_route)
        for route, expected in oracle.per_route.items():
            assert report.per_route[route].n_requests == expected.n_requests
            assert report.per_route[route].n_errors == expected.n_errors
