"""Serving path through the gateway tier: batching, cache gate, shedding.

Covers the columnar integration (``CapacityRunner`` with a
``ServingPolicy``: micro-batched stations, the simulated Zipf cache
gate, typed shed errors) and the record-path ``AdmittingGateway``
wrapper (priority-aware load shedding ahead of the rate limiter).
"""

import pytest

from repro.gateway import (
    APIGateway,
    AdmittingGateway,
    CapacityRunner,
    Machine,
    MicroService,
    PoissonArrivalGroup,
    RateLimitRule,
    RateLimitedGateway,
    Request,
    ServiceTimeModel,
    build_paper_deployment,
)
from repro.gateway.simulation import Simulator
from repro.serving import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    ServingPolicy,
    is_shed_error,
)


def _capacity_run(policy, rate_rps=300.0, n_requests=600, seed=3):
    sim, gateway = build_paper_deployment(seed=seed)
    runner = CapacityRunner(sim, gateway, serving=policy, seed=seed)
    runner.add_open_loop(
        PoissonArrivalGroup(
            route="shap", rate_rps=rate_rps, n_requests=n_requests
        )
    )
    report = runner.run()
    return runner, report


class TestCapacityBatching:
    def test_high_rate_flushes_by_size(self):
        runner, report = _capacity_run(
            ServingPolicy(max_batch=4, batch_window=0.050), rate_rps=800.0
        )
        stats = runner.serving_summary()["shap"]
        assert report.n_errors == 0
        assert stats["by_size"] > 0
        assert stats["rows_batched"] == 600
        assert stats["mean_batch"] > 1.0
        assert stats["peak_batch"] <= 4

    def test_low_rate_flushes_by_deadline(self):
        runner, report = _capacity_run(
            ServingPolicy(max_batch=64, batch_window=0.002), rate_rps=50.0
        )
        stats = runner.serving_summary()["shap"]
        assert report.n_errors == 0
        assert stats["by_deadline"] > 0
        # nothing is lost between the triggers: every row served
        assert stats["rows_batched"] == 600
        assert report.n_requests == 600

    def test_batched_run_completes_same_workload_as_classic(self):
        __, batched = _capacity_run(
            ServingPolicy(max_batch=8, batch_window=0.004)
        )
        __, classic = _capacity_run(None)
        assert batched.n_requests == classic.n_requests == 600
        assert batched.n_errors == classic.n_errors == 0

    def test_serving_events_published(self):
        runner, report = _capacity_run(
            ServingPolicy(max_batch=8, batch_window=0.004, cache_size=32)
        )
        events = runner.serving_events(report.duration_seconds)
        sources = {event.source for event in events}
        assert "serving:shap" in sources
        assert "cache:shap" in sources


class TestCapacityCacheGate:
    def test_zipf_replay_hits_the_gate(self):
        runner, report = _capacity_run(
            ServingPolicy(max_batch=8, batch_window=0.004, cache_size=64)
        )
        stats = runner.serving_summary()["shap"]
        assert report.n_errors == 0
        assert stats["cache"]["hits"] > 0
        assert 0.0 < stats["cache_hit_rate"] < 1.0
        # cache hits complete at the gateway: fewer rows reach batches
        assert stats["rows_batched"] + stats["cache"]["hits"] == 600

    def test_gate_is_seeded_per_route(self):
        first, __ = _capacity_run(
            ServingPolicy(max_batch=8, batch_window=0.004, cache_size=64)
        )
        second, __ = _capacity_run(
            ServingPolicy(max_batch=8, batch_window=0.004, cache_size=64)
        )
        assert (
            first.serving_summary()["shap"]["cache"]
            == second.serving_summary()["shap"]["cache"]
        )


class TestCapacityShedding:
    def test_overload_sheds_typed_503s(self):
        runner, report = _capacity_run(
            ServingPolicy(max_batch=4, batch_window=0.002, shed_depth=4),
            rate_rps=2000.0,
            n_requests=1000,
        )
        stats = runner.serving_summary()["shap"]
        assert stats["shed_rows"] > 0
        assert report.n_errors == stats["shed_rows"]
        log = runner.log
        shed_codes = {
            int(log.v_error_codes[row])
            for row in range(report.n_requests)
            if log.v_error_codes[row]
        }
        assert shed_codes  # at least one shed error interned
        for code in shed_codes:
            assert is_shed_error(log.error_message(code))
        events = runner.serving_events(report.duration_seconds)
        assert any(e.source == "shed:shap" for e in events)


def _record_setup(shed_depth, priority_of=None, service_ms=50.0):
    sim = Simulator()
    gateway = APIGateway(sim, overhead_seconds=0.0)
    gateway.register(
        MicroService(
            name="svc",
            machine=Machine("host", vcpus=1, ram_gb=4),
            service_time=ServiceTimeModel(
                {"tabular": service_ms / 1000.0}, jitter=0.0
            ),
            concurrency=1,
        )
    )
    admitting = AdmittingGateway(
        gateway, shed_depth=shed_depth, priority_of=priority_of
    )
    return sim, admitting


class TestAdmittingGateway:
    def test_under_depth_everything_admitted(self):
        sim, gateway = _record_setup(shed_depth=8)
        results = []
        for i in range(4):
            gateway.dispatch(Request(i, "svc"), results.append)
        sim.run()
        assert all(r.success for r in results)
        assert gateway.shed == 0
        assert gateway.in_flight("svc") == 0

    def test_burst_over_depth_sheds_typed(self):
        sim, gateway = _record_setup(shed_depth=3)
        results = []
        for i in range(10):
            gateway.dispatch(Request(i, "svc"), results.append)
        sim.run()
        failures = [r for r in results if not r.success]
        assert len(failures) == 7
        assert gateway.shed == 7
        assert gateway.shed_by_route == {"svc": 7}
        for record in failures:
            assert is_shed_error(record.error)
        assert gateway.in_flight("svc") == 0

    def test_batch_priority_sheds_at_half_depth(self):
        def priority_of(request):
            # tag priority by id range: >= 100 is interactive traffic
            return (
                PRIORITY_INTERACTIVE
                if request.request_id >= 100
                else PRIORITY_BATCH
            )

        sim, gateway = _record_setup(shed_depth=4, priority_of=priority_of)
        batch_results, vip_results = [], []
        for i in range(4):
            gateway.dispatch(Request(i, "svc"), batch_results.append)
        for i in range(2):
            gateway.dispatch(Request(100 + i, "svc"), vip_results.append)
        sim.run()
        # batch traffic saturates at depth 2 (= shed_depth // 2)...
        shed_batch = [r for r in batch_results if not r.success]
        assert len(shed_batch) == 2
        # ...while interactive still fits under the full depth of 4
        assert all(r.success for r in vip_results)

    def test_composes_with_rate_limiter(self):
        sim = Simulator()
        gateway = APIGateway(sim, overhead_seconds=0.0)
        gateway.register(
            MicroService(
                name="svc",
                machine=Machine("host", vcpus=8, ram_gb=4),
                service_time=ServiceTimeModel({"tabular": 0.01}, jitter=0.0),
            )
        )
        limited = RateLimitedGateway(
            gateway, rules={"svc": RateLimitRule(100, 1.0)}
        )
        admitting = AdmittingGateway(limited, shed_depth=2)
        results = []
        for i in range(5):
            admitting.dispatch(Request(i, "svc"), results.append)
        sim.run()
        # base-gateway resolution worked through the limiter wrapper
        assert admitting.shed == 3
        assert len(gateway.records) == 5

    def test_shed_depth_validated(self):
        sim, gateway = _record_setup(shed_depth=1)
        with pytest.raises(ValueError):
            AdmittingGateway(gateway, shed_depth=0)
