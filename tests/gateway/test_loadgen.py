"""Tests for the JMeter-equivalent load generator and summary report."""

import numpy as np
import pytest

from repro.gateway.cluster import build_paper_deployment
from repro.gateway.gateway import APIGateway
from repro.gateway.loadgen import (
    LoadGenerator,
    SummaryReport,
    ThreadGroup,
    run_load_test,
)
from repro.gateway.services import (
    Machine,
    MicroService,
    RequestRecord,
    Request,
    ServiceTimeModel,
)
from repro.gateway.simulation import Simulator
from repro.telemetry import (
    KIND_LOAD_SUMMARY,
    KIND_RESPONSE,
    TelemetryBus,
)


def simple_deployment(base=0.1, concurrency=2, seed=0):
    sim = Simulator()
    gateway = APIGateway(sim, overhead_seconds=0.0)
    gateway.register(
        MicroService(
            name="svc",
            machine=Machine("host", vcpus=4, ram_gb=4),
            service_time=ServiceTimeModel({"tabular": base}, jitter=0.0, seed=seed),
            concurrency=concurrency,
        )
    )
    return sim, gateway


class TestThreadGroup:
    def test_valid(self):
        tg = ThreadGroup(route="svc", n_threads=5)
        assert tg.iterations == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ThreadGroup(route="svc", n_threads=0)
        with pytest.raises(ValueError):
            ThreadGroup(route="svc", n_threads=1, iterations=0)
        with pytest.raises(ValueError):
            ThreadGroup(route="svc", n_threads=1, rampup_seconds=-1)


class TestLoadGenerator:
    def test_every_request_gets_a_response(self):
        sim, gateway = simple_deployment()
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="svc", n_threads=5, iterations=3))
        report = gen.run()
        assert report.n_requests == 15
        assert report.n_errors == 0

    def test_closed_loop_waits_for_response(self):
        """One thread, two iterations, 1s service → second request starts
        after the first response."""
        sim, gateway = simple_deployment(base=1.0, concurrency=1)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="svc", n_threads=1, iterations=2))
        report = gen.run()
        assert report.duration_seconds == pytest.approx(2.0)

    def test_think_time_spaces_requests(self):
        sim, gateway = simple_deployment(base=1.0, concurrency=1)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(
            ThreadGroup(route="svc", n_threads=1, iterations=2, think_time=3.0)
        )
        report = gen.run()
        assert report.duration_seconds == pytest.approx(5.0)

    def test_rampup_staggers_starts(self):
        sim, gateway = simple_deployment(base=0.001, concurrency=10)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(
            ThreadGroup(route="svc", n_threads=10, rampup_seconds=10.0)
        )
        report = gen.run()
        # last thread starts at 9s
        assert report.duration_seconds == pytest.approx(9.001, abs=0.01)

    def test_multiple_groups(self):
        sim, gateway = simple_deployment()
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="svc", n_threads=2))
        gen.add_thread_group(ThreadGroup(route="svc", n_threads=3))
        report = gen.run()
        assert report.n_requests == 5


class TestActiveThreadsListener:
    def test_one_entry_per_response(self):
        sim, gateway = simple_deployment()
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="svc", n_threads=6, iterations=2))
        gen.run()
        assert len(gen.active_threads) == 12

    def test_single_user_always_one_active(self):
        sim, gateway = simple_deployment()
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="svc", n_threads=1, iterations=4))
        gen.run()
        assert all(active == 1 for active, __ in gen.active_threads)

    def test_burst_reaches_full_concurrency(self):
        sim, gateway = simple_deployment(base=1.0, concurrency=1)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(
            ThreadGroup(route="svc", n_threads=8, rampup_seconds=0.0)
        )
        gen.run()
        assert max(active for active, __ in gen.active_threads) == 8

    def test_response_time_grows_with_active_threads(self):
        """The Fig. 8(b) listener premise: more active threads on a
        saturated service → longer responses."""
        sim, gateway = simple_deployment(base=0.5, concurrency=1)
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(
            ThreadGroup(route="svc", n_threads=6, rampup_seconds=0.0)
        )
        gen.run()
        # responses come back FIFO; each waited one service slot longer
        times = [ms for __, ms in gen.active_threads]
        assert times == sorted(times)


class TestSummaryReport:
    def test_empty_records(self):
        report = SummaryReport.from_records([], duration=1.0)
        assert report.n_requests == 0
        assert report.error_rate == 0.0

    def test_statistics(self):
        records = []
        for i, rt in enumerate((0.1, 0.2, 0.3)):
            rec = RequestRecord(
                request=Request(i, "svc"), arrival=0.0, start=0.0, end=rt
            )
            records.append(rec)
        report = SummaryReport.from_records(records, duration=1.0)
        assert report.avg_response_ms == pytest.approx(200.0)
        assert report.median_response_ms == pytest.approx(200.0)
        assert report.max_response_ms == pytest.approx(300.0)
        assert report.throughput_rps == 3.0

    def test_error_rate(self):
        ok = RequestRecord(request=Request(1, "svc"), arrival=0.0, end=0.1)
        bad = RequestRecord(
            request=Request(2, "svc"), arrival=0.0, end=0.0, success=False
        )
        report = SummaryReport.from_records([ok, bad], duration=1.0)
        assert report.error_rate == 0.5

    def test_all_errors_reports_zero_stats_not_fabricated_sample(self):
        # regression: the seed path fabricated times_ms = [0.0] when every
        # record failed, reporting avg/median/p95 "latencies" of a sample
        # that never existed
        records = [
            RequestRecord(
                request=Request(i, "svc"),
                arrival=0.0,
                end=0.0,
                success=False,
                error="queue full (503)",
            )
            for i in range(4)
        ]
        report = SummaryReport.from_records(records, duration=2.0)
        assert report.n_requests == 4
        assert report.n_errors == 4
        assert report.error_rate == 1.0
        assert report.avg_response_ms == 0.0
        assert report.median_response_ms == 0.0
        assert report.p95_response_ms == 0.0
        assert report.p99_response_ms == 0.0
        assert report.max_response_ms == 0.0
        assert report.throughput_rps == 0.0  # no *successful* samples
        assert report.timeline == []
        assert np.isfinite(report.avg_response_ms)

    def test_all_errors_single_route_within_mixed_report(self):
        records = [
            RequestRecord(request=Request(1, "good"), arrival=0.0, end=0.1),
            RequestRecord(
                request=Request(2, "bad"), arrival=0.0, end=0.0, success=False
            ),
        ]
        report = SummaryReport.from_records(records, duration=1.0)
        bad = report.per_route["bad"]
        assert bad.n_errors == bad.n_requests == 1
        assert bad.avg_response_ms == 0.0
        assert report.per_route["good"].error_rate == 0.0

    def test_grouped_pass_matches_per_route_refiltering(self):
        # the single grouped pass must agree with the seed's
        # filter-per-route behaviour on every per-route statistic
        rng = np.random.default_rng(7)
        records = []
        for i in range(300):
            route = ("a", "b", "c")[i % 3]
            rt = float(rng.uniform(0.01, 0.5))
            records.append(
                RequestRecord(
                    request=Request(i, route),
                    arrival=0.0,
                    end=rt,
                    success=bool(rng.random() > 0.1),
                )
            )
        report = SummaryReport.from_records(records, duration=5.0)
        for route in ("a", "b", "c"):
            subset = [r for r in records if r.request.route == route]
            expected = SummaryReport.from_records(subset, duration=5.0)
            got = report.per_route[route]
            assert got.n_requests == expected.n_requests
            assert got.n_errors == expected.n_errors
            assert got.avg_response_ms == pytest.approx(
                expected.avg_response_ms
            )
            assert got.p95_response_ms == pytest.approx(
                expected.p95_response_ms
            )
            assert got.timeline == expected.timeline

    def test_per_route_breakdown(self):
        records = [
            RequestRecord(request=Request(1, "a"), arrival=0.0, end=0.1),
            RequestRecord(request=Request(2, "b"), arrival=0.0, end=0.3),
        ]
        report = SummaryReport.from_records(records, duration=1.0)
        assert set(report.per_route) == {"a", "b"}
        assert report.per_route["b"].avg_response_ms == pytest.approx(300.0)

    def test_timeline_sorted(self):
        records = [
            RequestRecord(request=Request(1, "a"), arrival=0.0, end=0.5),
            RequestRecord(request=Request(2, "a"), arrival=0.0, end=0.2),
        ]
        report = SummaryReport.from_records(records, duration=1.0)
        times = [t for t, __ in report.timeline]
        assert times == sorted(times)

    def test_render_text(self):
        report = SummaryReport.from_records(
            [RequestRecord(request=Request(1, "a"), arrival=0.0, end=0.25)],
            duration=1.0,
        )
        text = report.render_text()
        assert "avg=250.0ms" in text
        assert "err=0.0%" in text


class TestRunLoadTest:
    def test_against_paper_deployment(self):
        report = run_load_test(
            build_paper_deployment,
            [ThreadGroup(route="ai_pipeline", n_threads=4, iterations=2)],
            seed=0,
        )
        assert report.n_requests == 8
        assert report.error_rate == 0.0
        assert report.avg_response_ms > 0


class TestLoadTelemetry:
    def run_with_bus(self, iterations=2, n_threads=3):
        sim, gateway = simple_deployment()
        bus = TelemetryBus()
        spy = bus.subscribe("spy", topics="gateway")
        gen = LoadGenerator(sim, gateway, telemetry=bus)
        gen.add_thread_group(
            ThreadGroup(route="svc", n_threads=n_threads, iterations=iterations)
        )
        report = gen.run()
        return report, spy.poll()

    def test_one_response_event_per_request(self):
        report, events = self.run_with_bus(iterations=2, n_threads=3)
        responses = [e for e in events if e.kind == KIND_RESPONSE]
        assert len(responses) == report.n_requests == 6
        assert all(e.source == "svc" for e in responses)
        assert all(e.attrs["success"] == 1.0 for e in responses)

    def test_response_events_carry_listener_series(self):
        """The Fig. 8(b) listener data rides on the bus: per-response
        active-thread counts and wait times."""
        __, events = self.run_with_bus(iterations=1, n_threads=4)
        responses = [e for e in events if e.kind == KIND_RESPONSE]
        assert all("active_threads" in e.attrs for e in responses)
        assert all("wait_ms" in e.attrs for e in responses)

    def test_summary_event_appended_after_run(self):
        report, events = self.run_with_bus()
        summaries = [e for e in events if e.kind == KIND_LOAD_SUMMARY]
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.source == "loadtest"
        assert summary.value == pytest.approx(report.avg_response_ms)
        assert summary.attrs["throughput_rps"] == pytest.approx(
            report.throughput_rps
        )
        assert summary.timestamp == pytest.approx(report.duration_seconds)

    def test_no_telemetry_means_no_publication(self):
        sim, gateway = simple_deployment()
        gen = LoadGenerator(sim, gateway)
        gen.add_thread_group(ThreadGroup(route="svc", n_threads=2))
        gen.run()  # must not raise without a telemetry target


class TestSummaryReportToEvents:
    def make_multiroute_report(self):
        records = [
            RequestRecord(request=Request(1, "a"), arrival=0.0, end=0.1),
            RequestRecord(request=Request(2, "b"), arrival=0.0, end=0.3),
        ]
        return SummaryReport.from_records(records, duration=1.0)

    def test_per_route_sub_events(self):
        events = self.make_multiroute_report().to_events()
        assert [e.source for e in events] == [
            "loadtest",
            "loadtest.a",
            "loadtest.b",
        ]
        assert all(e.kind == KIND_LOAD_SUMMARY for e in events)
        by_source = {e.source: e for e in events}
        assert by_source["loadtest.b"].value == pytest.approx(300.0)

    def test_explicit_timestamp_propagates(self):
        events = self.make_multiroute_report().to_events(timestamp=42.0)
        assert all(e.timestamp == 42.0 for e in events)

    def test_attrs_cover_the_report(self):
        event = self.make_multiroute_report().to_events()[0]
        for key in (
            "n_requests",
            "p95_response_ms",
            "throughput_rps",
            "error_rate",
        ):
            assert key in event.attrs
