"""Public-API smoke tests: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.ml",
    "repro.datasets",
    "repro.attacks",
    "repro.xai",
    "repro.trust",
    "repro.core",
    "repro.gateway",
    "repro.federated",
    "repro.privacy",
    "repro.telemetry",
    "repro.tracing",
    "repro.cluster",
    "repro.serving",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPublicApi:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_all_sorted(self, package_name):
        package = importlib.import_module(package_name)
        names = list(getattr(package, "__all__", []))
        assert names == sorted(names), f"{package_name}.__all__ not sorted"

    def test_module_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a docstring"

    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports undocumented callables: {undocumented}"
        )


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
