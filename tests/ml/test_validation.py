"""Tests for k-fold CV and stratified splitting."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier
from repro.ml.validation import KFold, cross_val_score, stratified_split


class TestKFold:
    def test_folds_partition_everything(self):
        kf = KFold(n_splits=4, seed=0)
        seen = []
        for train_idx, test_idx in kf.split(22):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(22))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for __, test in KFold(n_splits=4, seed=0).split(22)]
        assert max(sizes) - min(sizes) <= 1

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_no_shuffle_is_contiguous(self):
        folds = list(KFold(n_splits=2, shuffle=False).split(4))
        assert folds[0][1].tolist() == [0, 1]
        assert folds[1][1].tolist() == [2, 3]

    def test_deterministic_given_seed(self):
        a = [t.tolist() for __, t in KFold(3, seed=7).split(10)]
        b = [t.tolist() for __, t in KFold(3, seed=7).split(10)]
        assert a == b


class TestCrossValScore:
    def test_returns_one_score_per_fold(self, blobs):
        X, y = blobs
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3), X, y, n_splits=4
        )
        assert len(scores) == 4
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_separable_data_scores_high(self, blobs):
        X, y = blobs
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=4), X, y, n_splits=3
        )
        assert min(scores) > 0.9

    def test_custom_scorer(self, blobs):
        X, y = blobs
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3),
            X,
            y,
            n_splits=3,
            scorer=lambda yt, yp: 0.5,
        )
        assert scores == [0.5, 0.5, 0.5]

    def test_original_model_untouched(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=2)
        cross_val_score(model, X, y, n_splits=3)
        assert not model.is_fitted


class TestStratifiedSplit:
    def test_proportions_per_class(self):
        y = np.array([0] * 80 + [1] * 20)
        train_idx, test_idx = stratified_split(y, test_size=0.25, seed=0)
        y_test = y[test_idx]
        assert np.sum(y_test == 0) == 20
        assert np.sum(y_test == 1) == 5

    def test_small_class_in_both_sides(self):
        y = np.array([0] * 50 + [1] * 2)
        train_idx, test_idx = stratified_split(y, test_size=0.2, seed=0)
        assert 1 in y[train_idx] and 1 in y[test_idx]

    def test_indices_partition(self):
        y = np.arange(30) % 3
        train_idx, test_idx = stratified_split(y, seed=1)
        assert sorted(np.concatenate([train_idx, test_idx]).tolist()) == list(
            range(30)
        )

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            stratified_split(np.zeros(10), test_size=1.0)
