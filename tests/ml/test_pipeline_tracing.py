"""Duck-typed tracing through pipeline stages (ml imports no tracing)."""

import pytest

from repro.ml import DecisionTreeClassifier
from repro.ml.pipeline import AIPipeline, STAGE_ORDER, StageKind
from repro.tracing import STATUS_ERROR, TraceCollector, Tracer


def make_pipeline(blobs, **kwargs):
    X, y = blobs
    return AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: DecisionTreeClassifier(max_depth=4),
        seed=0,
        **kwargs,
    )


def make_tracer():
    collector = TraceCollector()
    ticks = iter(range(10_000))

    # monotonically ticking clock: stage spans get distinct start times,
    # so child ordering in the tree mirrors execution order
    tracer = Tracer(
        clock=lambda: float(next(ticks)), collector=collector, seed=0
    )
    return tracer, collector


class TestStageSpans:
    def test_every_stage_becomes_a_child_span(self, blobs):
        tracer, collector = make_tracer()
        root = tracer.start_span("run")
        make_pipeline(blobs).run(tracer=tracer, parent=root)
        root.end()
        tree = collector.get(root.trace_id)
        stages = tree.children(tree.root)
        assert [s.name for s in stages] == [
            f"pipeline.{kind.value}" for kind in STAGE_ORDER
        ]
        for span in stages:
            assert span.attributes["duration_ms"] >= 0.0
        assert stages[-1].attributes["model_version"] == 1.0
        assert tracer.active_spans == 0

    def test_partial_rerun_spans_only_later_stages(self, blobs):
        tracer, collector = make_tracer()
        pipeline = make_pipeline(blobs)
        pipeline.run()  # untraced first pass builds the state
        root = tracer.start_span("rerun")
        pipeline.run(from_stage=StageKind.TRAINING, tracer=tracer, parent=root)
        root.end()
        tree = collector.get(root.trace_id)
        assert [s.name for s in tree.children(tree.root)] == [
            "pipeline.training",
            "pipeline.evaluation",
            "pipeline.deployment",
        ]

    def test_raising_stage_marks_its_span_and_propagates(self):
        tracer, collector = make_tracer()

        def broken_provider():
            raise IOError("feed offline")

        pipeline = AIPipeline(
            data_provider=broken_provider,
            model_factory=lambda: DecisionTreeClassifier(max_depth=2),
            seed=0,
        )
        root = tracer.start_span("run")
        with pytest.raises(IOError):
            pipeline.run(tracer=tracer, parent=root)
        root.end()
        tree = collector.get(root.trace_id)
        [stage_span] = tree.children(tree.root)
        assert stage_span.name == "pipeline.data_collection"
        assert stage_span.status == STATUS_ERROR
        assert "OSError" in stage_span.status_message
        assert tracer.active_spans == 0

    def test_untraced_run_unchanged(self, blobs):
        ctx = make_pipeline(blobs).run()
        assert ctx.deployed
