"""The flat evaluation kernel's contract: *bitwise* equality with `_route`.

The recursive walk and the flat iterative traversal evaluate the same
``X[i, feature] <= threshold`` comparisons on the same float64 values and
copy the same leaf-value vectors, so their outputs must agree to the last
ulp — ``np.array_equal``, not ``allclose``.  Hypothesis drives random
datasets and tree shapes through single trees, the forest and the GBDT;
serialization must round-trip the flat form with the same guarantee.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.flattree import FlatTree
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostedTreesClassifier
from repro.ml.serialization import load_model, save_model
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class TestFlatTreeStructure:
    def test_compiled_on_fit(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        flat = model.flat_
        assert flat.n_nodes == len(model.nodes_)
        assert flat.value_width == len(model.classes_)
        # leaves are exactly the feature == -1 rows
        leaves = [i for i, node in enumerate(model.nodes_) if node.is_leaf]
        assert np.array_equal(np.flatnonzero(flat.feature < 0), leaves)

    def test_round_trips_through_nodes(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        rebuilt = FlatTree.from_nodes(model.flat_.to_nodes())
        for name in ("feature", "threshold", "left", "right", "value", "n_samples"):
            assert np.array_equal(getattr(rebuilt, name), getattr(model.flat_, name))

    def test_single_leaf_tree(self):
        X = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.flat_.n_nodes == 1
        assert np.array_equal(model.flat_.apply(np.ones((3, 2))), np.zeros(3))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            FlatTree(
                feature=np.array([-1], dtype=np.int64),
                threshold=np.zeros(2),
                left=np.array([-1], dtype=np.int64),
                right=np.array([-1], dtype=np.int64),
                value=np.zeros((1, 1)),
                n_samples=np.array([1], dtype=np.int64),
            )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_classes=st.integers(2, 4),
    depth=st.integers(1, 8),
    min_leaf=st.integers(1, 5),
)
def test_flat_tree_bitwise_equals_recursive(seed, n_classes, depth, min_leaf):
    gen = np.random.default_rng(seed)
    X = gen.normal(size=(80, 4))
    y = gen.integers(0, n_classes, size=80)
    model = DecisionTreeClassifier(
        max_depth=depth, min_samples_leaf=min_leaf
    ).fit(X, y)
    X_test = gen.normal(size=(40, 4))
    assert np.array_equal(
        model.predict_proba(X_test), model.predict_proba_recursive(X_test)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), growth=st.sampled_from(["level", "leaf"]))
def test_flat_regressor_bitwise_equals_recursive(seed, growth):
    gen = np.random.default_rng(seed)
    X = gen.normal(size=(60, 3))
    g = gen.normal(size=60)
    h = np.abs(gen.normal(size=60)) + 0.1
    model = DecisionTreeRegressor(
        max_depth=4, growth=growth, max_leaves=7 if growth == "leaf" else None
    ).fit(X, g, h)
    X_test = gen.normal(size=(30, 3))
    assert np.array_equal(model.predict(X_test), model.predict_recursive(X_test))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_flat_forest_bitwise_equals_recursive(seed):
    gen = np.random.default_rng(seed)
    X = gen.normal(size=(70, 4))
    y = gen.integers(0, 3, size=70)
    model = RandomForestClassifier(n_estimators=7, max_depth=5, seed=seed).fit(X, y)
    X_test = gen.normal(size=(25, 4))
    assert np.array_equal(
        model.predict_proba(X_test), model.predict_proba_recursive(X_test)
    )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500))
def test_flat_gbdt_bitwise_equals_recursive(seed):
    gen = np.random.default_rng(seed)
    X = gen.normal(size=(60, 3))
    y = gen.integers(0, 3, size=60)
    model = GradientBoostedTreesClassifier(n_estimators=3, seed=seed).fit(X, y)
    X_test = gen.normal(size=(20, 3))
    assert np.array_equal(
        model.decision_function(X_test), model.decision_function_recursive(X_test)
    )


class TestSerializationKeepsFlatForm:
    def test_tree_round_trip_is_bitwise(self, tmp_path, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=6).fit(X, y)
        path = tmp_path / "tree.npz"
        save_model(model, path)
        loaded = load_model(path)
        for name in ("feature", "threshold", "left", "right", "value", "n_samples"):
            assert np.array_equal(
                getattr(loaded.flat_, name), getattr(model.flat_, name)
            )
        assert np.array_equal(loaded.predict_proba(X), model.predict_proba(X))

    def test_forest_round_trip_is_bitwise(self, tmp_path, blobs):
        X, y = blobs
        model = RandomForestClassifier(n_estimators=5, max_depth=4).fit(X, y)
        path = tmp_path / "forest.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert np.array_equal(loaded.predict_proba(X), model.predict_proba(X))

    def test_gbdt_round_trip_is_bitwise(self, tmp_path, three_blobs):
        X, y = three_blobs
        model = GradientBoostedTreesClassifier(n_estimators=3).fit(X, y)
        path = tmp_path / "gbdt.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert np.array_equal(
            loaded.decision_function(X), model.decision_function(X)
        )
