"""Tests for gradient-boosted trees and the LightGBM/XGBoost presets."""

import numpy as np
import pytest

from repro.ml.gbdt import (
    GradientBoostedTreesClassifier,
    lightgbm_like,
    xgboost_like,
)


class TestGradientBoostedTrees:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        m = GradientBoostedTreesClassifier(n_estimators=10, seed=0).fit(X, y)
        assert m.score(X, y) > 0.97

    def test_solves_xor(self, xor_data):
        X, y = xor_data
        m = GradientBoostedTreesClassifier(
            n_estimators=20, max_depth=3, seed=0
        ).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_multiclass_trees_per_round(self, three_blobs):
        X, y = three_blobs
        m = GradientBoostedTreesClassifier(n_estimators=4, seed=0).fit(X, y)
        assert len(m.trees_) == 4
        assert all(len(r) == 3 for r in m.trees_)
        assert m.n_trees == 12

    def test_more_rounds_reduce_training_error(self, xor_data):
        X, y = xor_data
        few = GradientBoostedTreesClassifier(n_estimators=2, seed=0).fit(X, y)
        many = GradientBoostedTreesClassifier(n_estimators=25, seed=0).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_decision_function_shape(self, blobs):
        X, y = blobs
        m = GradientBoostedTreesClassifier(n_estimators=3).fit(X, y)
        assert m.decision_function(X[:6]).shape == (6, 2)

    def test_skewed_priors_respected(self):
        """Log-prior base scores keep an untrained (0-round-signal) model
        predicting the majority class on ambiguous input."""
        gen = np.random.default_rng(0)
        X = gen.normal(size=(100, 2))
        y = np.array([0] * 90 + [1] * 10)
        m = GradientBoostedTreesClassifier(n_estimators=1, max_depth=1).fit(X, y)
        # prior for class 0 dominates the base score
        assert m.base_score_[0] > m.base_score_[1]

    def test_subsample_row_sampling(self, blobs):
        X, y = blobs
        m = GradientBoostedTreesClassifier(
            n_estimators=5, subsample=0.5, seed=0
        ).fit(X, y)
        assert m.score(X, y) > 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostedTreesClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTreesClassifier(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTreesClassifier(growth="sideways")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTreesClassifier().predict_proba(np.ones((1, 2)))

    def test_deterministic(self, blobs):
        X, y = blobs
        a = GradientBoostedTreesClassifier(n_estimators=4, seed=2).fit(X, y)
        b = GradientBoostedTreesClassifier(n_estimators=4, seed=2).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))


class TestPresets:
    def test_lightgbm_like_uses_leafwise(self):
        m = lightgbm_like()
        assert m.growth == "leaf"
        assert m.max_leaves == 15

    def test_xgboost_like_uses_levelwise(self):
        m = xgboost_like()
        assert m.growth == "level"
        assert m.max_depth == 4

    def test_both_presets_learn(self, three_blobs):
        X, y = three_blobs
        for preset in (lightgbm_like(n_estimators=8), xgboost_like(n_estimators=8)):
            assert preset.fit(X, y).score(X, y) > 0.9

    def test_presets_accept_overrides(self):
        m = lightgbm_like(n_estimators=3, subsample=0.7)
        assert m.n_estimators == 3
        assert m.subsample == 0.7

    def test_presets_differ_in_structure(self, xor_data):
        """The two presets must actually grow different trees."""
        X, y = xor_data
        lgbm = lightgbm_like(n_estimators=3, seed=0).fit(X, y)
        xgb = xgboost_like(n_estimators=3, seed=0).fit(X, y)
        lgbm_leaves = [
            sum(1 for n in t.nodes_ if n.is_leaf) for r in lgbm.trees_ for t in r
        ]
        xgb_leaves = [
            sum(1 for n in t.nodes_ if n.is_leaf) for r in xgb.trees_ for t in r
        ]
        assert lgbm_leaves != xgb_leaves
