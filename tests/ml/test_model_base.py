"""Tests for the Classifier base interface, clone and input validation."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    DNNClassifier,
    GradientBoostedTreesClassifier,
    LogisticRegressionClassifier,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.ml.model import check_Xy, clone, encode_labels, one_hot

ALL_MODELS = [
    LogisticRegressionClassifier(n_epochs=5),
    DecisionTreeClassifier(max_depth=3),
    RandomForestClassifier(n_estimators=3, max_depth=3),
    GradientBoostedTreesClassifier(n_estimators=3),
    MLPClassifier(hidden_layers=(8,), n_epochs=30, learning_rate=0.01),
    DNNClassifier(hidden_layers=(8, 4), n_epochs=30, learning_rate=0.01),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestClassifierContract:
    def test_fit_returns_self(self, model, blobs):
        X, y = blobs
        fitted = clone(model).fit(X, y)
        assert fitted.is_fitted

    def test_predict_proba_rows_sum_to_one(self, model, blobs):
        X, y = blobs
        m = clone(model).fit(X, y)
        proba = m.predict_proba(X[:20])
        assert proba.shape == (20, 2)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-8)
        assert (proba >= 0).all()

    def test_predict_labels_from_training_set(self, model, blobs):
        X, y = blobs
        m = clone(model).fit(X, y)
        preds = m.predict(X[:20])
        assert set(np.unique(preds)).issubset(set(np.unique(y)))

    def test_score_reasonable_on_blobs(self, model, blobs):
        X, y = blobs
        m = clone(model).fit(X, y)
        assert m.score(X, y) > 0.85  # blobs are trivially separable

    def test_clone_is_unfitted_and_same_type(self, model):
        c = clone(model)
        assert type(c) is type(model)
        assert not c.is_fitted

    def test_string_labels_supported(self, model, blobs):
        X, y = blobs
        labels = np.array(["neg", "pos"])[y]
        m = clone(model).fit(X, labels)
        preds = m.predict(X[:10])
        assert set(preds).issubset({"neg", "pos"})

    def test_multiclass(self, model, three_blobs):
        X, y = three_blobs
        m = clone(model).fit(X, y)
        proba = m.predict_proba(X[:5])
        assert proba.shape == (5, 3)
        assert m.score(X, y) > 0.8


class TestCheckXy:
    def test_accepts_lists(self):
        X, y = check_Xy([[1.0, 2.0]], [0])
        assert X.dtype == np.float64

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError, match="2-D"):
            check_Xy(np.ones(3), np.ones(3))

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-D"):
            check_Xy(np.ones((3, 2)), np.ones((3, 1)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            check_Xy(np.ones((3, 2)), np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_Xy(np.empty((0, 2)), np.empty(0))

    def test_rejects_nan(self):
        X = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError, match="impute"):
            check_Xy(X, np.array([0]))

    def test_rejects_inf(self):
        X = np.array([[1.0, np.inf]])
        with pytest.raises(ValueError):
            check_Xy(X, np.array([0]))


class TestEncodingHelpers:
    def test_encode_labels_sorted(self):
        classes, idx = encode_labels(np.array(["b", "a", "b"]))
        assert classes.tolist() == ["a", "b"]
        assert idx.tolist() == [1, 0, 1]

    def test_one_hot(self):
        oh = one_hot(np.array([0, 2, 1]), 3)
        assert oh.shape == (3, 3)
        assert oh.sum() == 3.0
        assert oh[1, 2] == 1.0

    def test_one_hot_rows_sum_one(self):
        oh = one_hot(np.array([1, 1, 0]), 2)
        assert np.allclose(oh.sum(axis=1), 1.0)


class TestCloneParams:
    def test_clone_preserves_hyperparameters(self):
        m = RandomForestClassifier(n_estimators=7, max_depth=2, seed=99)
        c = clone(m)
        assert c.n_estimators == 7
        assert c.max_depth == 2
        assert c.seed == 99

    def test_clone_of_fitted_is_fresh(self, blobs):
        X, y = blobs
        m = DecisionTreeClassifier(max_depth=2).fit(X, y)
        c = clone(m)
        assert not c.is_fitted
        with pytest.raises(RuntimeError):
            c.predict(X[:1])

    def test_dnn_clone_keeps_topology(self):
        m = DNNClassifier(hidden_layers=(32, 16, 8))
        assert clone(m).hidden_layers == (32, 16, 8)
