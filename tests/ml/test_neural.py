"""Tests for the MLP/DNN classifiers, including input gradients for FGSM."""

import numpy as np
import pytest

from repro.ml.neural import DNNClassifier, MLPClassifier, relu


class TestRelu:
    def test_clips_negatives(self):
        assert relu(np.array([-1.0, 0.0, 2.0])).tolist() == [0.0, 0.0, 2.0]


class TestMLP:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        m = MLPClassifier(hidden_layers=(16,), n_epochs=30, seed=0).fit(X, y)
        assert m.score(X, y) > 0.97

    def test_solves_xor(self, xor_data):
        X, y = xor_data
        m = MLPClassifier(hidden_layers=(16, 8), n_epochs=80, seed=0).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_multiclass(self, three_blobs):
        X, y = three_blobs
        m = MLPClassifier(
            hidden_layers=(16,), n_epochs=40, learning_rate=0.01, seed=0
        ).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_invalid_hidden_layer_raises(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=(0,))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict_proba(np.ones((1, 2)))

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = MLPClassifier(hidden_layers=(8,), n_epochs=5, seed=3).fit(X, y)
        b = MLPClassifier(hidden_layers=(8,), n_epochs=5, seed=3).fit(X, y)
        assert np.allclose(a.predict_proba(X[:10]), b.predict_proba(X[:10]))

    def test_weight_shapes(self, blobs):
        X, y = blobs
        m = MLPClassifier(hidden_layers=(12, 6), n_epochs=2).fit(X, y)
        shapes = [w.shape for w in m.weights_]
        assert shapes == [(X.shape[1], 12), (12, 6), (6, 2)]


class TestInputGradient:
    def test_matches_finite_differences(self, blobs):
        """Analytic input gradient ≈ numerical gradient of CE loss."""
        X, y = blobs
        m = MLPClassifier(hidden_layers=(8,), n_epochs=20, seed=0).fit(X, y)
        x = X[0].astype(np.float64)
        target = 1

        def loss(v):
            p = m.predict_proba(v.reshape(1, -1))[0]
            return -np.log(max(p[target], 1e-12))

        analytic = m.input_gradient(x, target)
        numeric = np.empty_like(x)
        eps = 1e-5
        for j in range(len(x)):
            up, down = x.copy(), x.copy()
            up[j] += eps
            down[j] -= eps
            numeric[j] = (loss(up) - loss(down)) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_batch_matches_single(self, trained_mlp, blobs):
        X, __ = blobs
        batch = trained_mlp.input_gradient(X[:4], 0)
        singles = np.array([trained_mlp.input_gradient(x, 0) for x in X[:4]])
        assert np.allclose(batch, singles)

    def test_default_target_is_prediction(self, trained_mlp, blobs):
        X, __ = blobs
        grad = trained_mlp.input_gradient(X[0])
        assert grad.shape == (X.shape[1],)

    def test_gradient_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().input_gradient(np.ones(3), 0)


class TestDNN:
    def test_default_is_deeper_than_mlp(self):
        assert len(DNNClassifier().hidden_layers) > len(MLPClassifier().hidden_layers)

    def test_learns(self, blobs):
        X, y = blobs
        m = DNNClassifier(hidden_layers=(16, 8), n_epochs=30, seed=0).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_inherits_input_gradient(self, blobs):
        X, y = blobs
        m = DNNClassifier(hidden_layers=(8, 4), n_epochs=5, seed=0).fit(X, y)
        assert m.input_gradient(X[0], 0).shape == (X.shape[1],)
