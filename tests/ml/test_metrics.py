"""Unit and property tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    performance_drift,
    precision_score,
    recall_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_all_wrong(self):
        assert accuracy_score([1, 1, 1], [0, 0, 0]) == 0.0

    def test_half(self):
        assert accuracy_score([1, 0, 1, 0], [1, 0, 0, 1]) == 0.5

    def test_string_labels(self):
        assert accuracy_score(["a", "b"], ["a", "a"]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])


class TestConfusionMatrix:
    def test_binary(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_rows_sum_to_class_counts(self):
        y_true = np.array([0, 0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 2, 1, 1, 0])
        cm = confusion_matrix(y_true, y_pred)
        assert cm.sum(axis=1).tolist() == [3, 2, 1]

    def test_total_equals_n(self):
        gen = np.random.default_rng(0)
        y_true = gen.integers(0, 4, 50)
        y_pred = gen.integers(0, 4, 50)
        assert confusion_matrix(y_true, y_pred).sum() == 50

    def test_explicit_labels_order(self):
        cm = confusion_matrix([1, 0], [1, 0], labels=[1, 0])
        assert cm.tolist() == [[1, 0], [0, 1]]

    def test_label_missing_in_pred_gets_zero_column(self):
        cm = confusion_matrix([0, 1], [0, 0])
        assert cm[:, 1].sum() == 0


class TestPrecisionRecallF1:
    def test_perfect_scores(self):
        y = [0, 1, 0, 1]
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    def test_known_binary_case(self):
        # tp=2 fp=1 fn=1 for class 1; class 0: tp=1, fp=1, fn=1
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 0, 1]
        # class1: p=2/3, r=2/3; class0: p=1/2, r=1/2
        assert precision_score(y_true, y_pred, average="macro") == pytest.approx(
            (2 / 3 + 1 / 2) / 2
        )
        assert recall_score(y_true, y_pred, average="macro") == pytest.approx(
            (2 / 3 + 1 / 2) / 2
        )

    def test_weighted_average_weights_by_support(self):
        y_true = [1] * 9 + [0]
        y_pred = [1] * 9 + [1]
        weighted = recall_score(y_true, y_pred, average="weighted")
        macro = recall_score(y_true, y_pred, average="macro")
        assert weighted == pytest.approx(0.9)
        assert macro == pytest.approx(0.5)

    def test_zero_division_silent(self):
        # class 1 never predicted: precision contribution 0, no crash
        assert precision_score([1, 1], [0, 0]) >= 0.0

    def test_unknown_average_raises(self):
        with pytest.raises(ValueError):
            precision_score([0, 1], [0, 1], average="micro")

    def test_f1_between_precision_and_recall_bounds(self):
        gen = np.random.default_rng(1)
        y_true = gen.integers(0, 3, 100)
        y_pred = gen.integers(0, 3, 100)
        f1 = f1_score(y_true, y_pred)
        assert 0.0 <= f1 <= 1.0


class TestClassificationReport:
    def test_contains_all_classes_and_averages(self):
        report = classification_report([0, 1, 2], [0, 1, 1])
        for key in ("0", "1", "2", "macro", "weighted", "accuracy"):
            assert key in report

    def test_report_accuracy_matches(self):
        y_true = [0, 1, 1, 0]
        y_pred = [0, 1, 0, 0]
        report = classification_report(y_true, y_pred)
        assert report["accuracy"]["f1"] == accuracy_score(y_true, y_pred)

    def test_support_sums(self):
        report = classification_report([0, 0, 1], [0, 1, 1])
        assert report["macro"]["support"] == 3.0


class TestPerformanceDrift:
    def test_positive_drift_on_degradation(self):
        drift = performance_drift({"accuracy": 0.95}, {"accuracy": 0.80})
        assert drift["accuracy"] == pytest.approx(0.15)

    def test_ignores_missing_keys(self):
        drift = performance_drift({"accuracy": 0.9, "f1": 0.8}, {"accuracy": 0.9})
        assert "f1" not in drift

    def test_negative_drift_on_improvement(self):
        drift = performance_drift({"accuracy": 0.7}, {"accuracy": 0.9})
        assert drift["accuracy"] == pytest.approx(-0.2)


@settings(max_examples=50, deadline=None)
@given(
    labels=st.lists(st.integers(0, 3), min_size=2, max_size=60),
)
def test_accuracy_bounds_property(labels):
    gen = np.random.default_rng(0)
    y_true = np.array(labels)
    y_pred = gen.integers(0, 4, len(labels))
    acc = accuracy_score(y_true, y_pred)
    assert 0.0 <= acc <= 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=2, max_size=60))
def test_self_prediction_is_perfect_property(labels):
    y = np.array(labels)
    assert accuracy_score(y, y) == 1.0
    assert recall_score(y, y) == 1.0
    assert precision_score(y, y) == 1.0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 2), min_size=4, max_size=50),
    st.lists(st.integers(0, 2), min_size=4, max_size=50),
)
def test_confusion_matrix_total_property(a, b):
    n = min(len(a), len(b))
    y_true, y_pred = np.array(a[:n]), np.array(b[:n])
    cm = confusion_matrix(y_true, y_pred)
    assert cm.sum() == n
    assert (cm >= 0).all()
