"""Tests for pickle-free model persistence."""

import numpy as np
import pytest

from repro.ml import (
    DNNClassifier,
    DecisionTreeClassifier,
    GradientBoostedTreesClassifier,
    LogisticRegressionClassifier,
    MLPClassifier,
    RandomForestClassifier,
    load_model,
    save_model,
)

ALL_MODELS = [
    LogisticRegressionClassifier(n_epochs=5, seed=3),
    DecisionTreeClassifier(max_depth=4, seed=3),
    RandomForestClassifier(n_estimators=4, max_depth=3, seed=3),
    GradientBoostedTreesClassifier(n_estimators=3, seed=3),
    MLPClassifier(hidden_layers=(8,), n_epochs=5, seed=3),
    DNNClassifier(hidden_layers=(8, 4), n_epochs=5, seed=3),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestRoundtrip:
    def test_probabilities_identical(self, model, blobs, tmp_path):
        X, y = blobs
        fitted = type(model)(**model.get_params()).fit(X[:150], y[:150])
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        assert type(loaded) is type(fitted)
        assert np.allclose(
            fitted.predict_proba(X[150:200]), loaded.predict_proba(X[150:200])
        )

    def test_classes_preserved(self, model, blobs, tmp_path):
        X, y = blobs
        labels = np.array(["neg", "pos"])[y]
        fitted = type(model)(**model.get_params()).fit(X[:150], labels[:150])
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        assert set(loaded.classes_.tolist()) == {"neg", "pos"}
        assert set(loaded.predict(X[150:160])) <= {"neg", "pos"}

    def test_hyperparameters_preserved(self, model, blobs, tmp_path):
        X, y = blobs
        fitted = type(model)(**model.get_params()).fit(X[:100], y[:100])
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        assert loaded.get_params().get("seed") == 3


class TestErrors:
    def test_unfitted_model_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(DecisionTreeClassifier(), tmp_path / "m.npz")

    def test_unsupported_type_raises(self, blobs, tmp_path):
        from repro.attacks import BaggingDefense

        X, y = blobs
        model = BaggingDefense(
            lambda: DecisionTreeClassifier(max_depth=2), n_members=2
        ).fit(X, y)
        with pytest.raises(TypeError):
            save_model(model, tmp_path / "m.npz")

    def test_multiclass_roundtrip(self, three_blobs, tmp_path):
        X, y = three_blobs
        model = GradientBoostedTreesClassifier(n_estimators=3, seed=0).fit(X, y)
        path = tmp_path / "gbdt.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert np.allclose(model.predict_proba(X[:20]), loaded.predict_proba(X[:20]))

    def test_no_pickle_in_file(self, blobs, tmp_path):
        """The artifact must load with allow_pickle=False (security)."""
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        path = tmp_path / "m.npz"
        save_model(model, path)
        with np.load(path, allow_pickle=False) as data:
            assert "__header__" in data
