"""Tests for the softmax logistic regression."""

import numpy as np
import pytest

from repro.ml.linear import LogisticRegressionClassifier, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(10, 4))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stability_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(5, 3))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))


class TestLogisticRegression:
    def test_learns_linear_boundary(self, blobs):
        X, y = blobs
        m = LogisticRegressionClassifier(n_epochs=30, seed=0).fit(X, y)
        assert m.score(X, y) > 0.97

    def test_fails_on_xor(self, xor_data):
        """A linear model cannot solve XOR — the property that puts LR at
        the bottom of the use-case-1 ranking."""
        X, y = xor_data
        m = LogisticRegressionClassifier(n_epochs=40, seed=0).fit(X, y)
        assert m.score(X, y) < 0.7

    def test_decision_function_shape(self, blobs):
        X, y = blobs
        m = LogisticRegressionClassifier(n_epochs=5).fit(X, y)
        assert m.decision_function(X[:7]).shape == (7, 2)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict_proba(np.ones((1, 2)))

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(n_epochs=0)

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        m1 = LogisticRegressionClassifier(n_epochs=5, seed=4).fit(X, y)
        m2 = LogisticRegressionClassifier(n_epochs=5, seed=4).fit(X, y)
        assert np.array_equal(m1.weights_, m2.weights_)

    def test_l2_shrinks_weights(self, blobs):
        X, y = blobs
        loose = LogisticRegressionClassifier(n_epochs=20, l2=0.0, seed=0).fit(X, y)
        tight = LogisticRegressionClassifier(n_epochs=20, l2=1.0, seed=0).fit(X, y)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(loose.weights_)

    def test_input_gradient_direction_increases_loss(self, blobs):
        """Moving along the gradient of the true class loss should reduce
        the probability of that class (gradient ascent on loss)."""
        X, y = blobs
        m = LogisticRegressionClassifier(n_epochs=30, seed=0).fit(X, y)
        x = X[0]
        true_class = int(np.flatnonzero(m.classes_ == y[0])[0])
        grad = m.input_gradient(x, true_class)
        p_before = m.predict_proba(x.reshape(1, -1))[0, true_class]
        p_after = m.predict_proba((x + 0.5 * np.sign(grad)).reshape(1, -1))[
            0, true_class
        ]
        assert p_after < p_before

    def test_input_gradient_shape(self, blobs):
        X, y = blobs
        m = LogisticRegressionClassifier(n_epochs=5).fit(X, y)
        assert m.input_gradient(X[0], 0).shape == (X.shape[1],)
