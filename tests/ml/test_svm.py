"""Tests for the linear SVM."""

import numpy as np
import pytest

from repro.attacks import FgsmAttack
from repro.ml.svm import SVMClassifier


class TestSVM:
    def test_fits_blobs(self, blobs):
        X, y = blobs
        m = SVMClassifier(n_epochs=30, seed=0).fit(X, y)
        assert m.score(X, y) > 0.97

    def test_fails_on_xor(self, xor_data):
        """A linear SVM shares LR's limitation — XOR is out of reach."""
        X, y = xor_data
        m = SVMClassifier(n_epochs=40, seed=0).fit(X, y)
        assert m.score(X, y) < 0.7

    def test_multiclass_one_vs_rest(self, three_blobs):
        X, y = three_blobs
        m = SVMClassifier(n_epochs=40, seed=0).fit(X, y)
        assert m.score(X, y) > 0.9
        proba = m.predict_proba(X[:5])
        assert proba.shape == (5, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_margins_shape(self, blobs):
        X, y = blobs
        m = SVMClassifier(n_epochs=5).fit(X, y)
        assert m.decision_function(X[:7]).shape == (7, 2)

    def test_regularisation_shrinks_weights(self, blobs):
        X, y = blobs
        soft = SVMClassifier(n_epochs=20, c=0.01, seed=0).fit(X, y)
        hard = SVMClassifier(n_epochs=20, c=100.0, seed=0).fit(X, y)
        assert np.linalg.norm(soft.weights_) < np.linalg.norm(hard.weights_)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            SVMClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            SVMClassifier(c=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SVMClassifier().predict_proba(np.ones((1, 2)))

    def test_deterministic(self, blobs):
        X, y = blobs
        a = SVMClassifier(n_epochs=5, seed=4).fit(X, y)
        b = SVMClassifier(n_epochs=5, seed=4).fit(X, y)
        assert np.allclose(a.weights_, b.weights_)

    def test_string_labels(self, blobs):
        X, y = blobs
        labels = np.array(["no", "yes"])[y]
        m = SVMClassifier(n_epochs=10, seed=0).fit(X, labels)
        assert set(m.predict(X[:10])) <= {"no", "yes"}

    def test_white_box_evadable_via_fgsm(self, blobs):
        """Fig. 1's SVM row: gradient evasion applies to (linear) SVMs."""
        X, y = blobs
        m = SVMClassifier(n_epochs=30, seed=0).fit(X, y)
        clean = m.score(X[:100], y[:100])
        result = FgsmAttack(m, epsilon=2.5).apply(X[:100], y[:100])
        assert m.score(result.X, y[:100]) < clean

    def test_input_gradient_shape(self, blobs):
        X, y = blobs
        m = SVMClassifier(n_epochs=5).fit(X, y)
        assert m.input_gradient(X[0], 0).shape == (X.shape[1],)

    def test_clonable(self, blobs):
        from repro.ml.model import clone

        m = SVMClassifier(n_epochs=7, c=2.0, seed=9)
        c = clone(m)
        assert c.n_epochs == 7 and c.c == 2.0 and not c.is_fitted
