"""Tests for the staged AI pipeline and its instrumentation hooks."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, LogisticRegressionClassifier
from repro.ml.pipeline import AIPipeline, STAGE_ORDER, StageKind


def make_pipeline(blobs, **kwargs):
    X, y = blobs
    return AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: DecisionTreeClassifier(max_depth=4),
        seed=0,
        **kwargs,
    )


class TestPipelineRun:
    def test_full_run_deploys_a_model(self, blobs):
        ctx = make_pipeline(blobs).run()
        assert ctx.deployed
        assert ctx.model is not None
        assert ctx.model_version == 1
        assert 0.9 < ctx.evaluation["accuracy"] <= 1.0

    def test_all_stages_recorded_in_order(self, blobs):
        pipe = make_pipeline(blobs)
        pipe.run()
        kinds = [r.kind for r in pipe.history]
        assert kinds == list(STAGE_ORDER)

    def test_evaluation_has_all_metrics(self, blobs):
        ctx = make_pipeline(blobs).run()
        assert set(ctx.evaluation) == {"accuracy", "precision", "recall", "f1"}

    def test_test_split_held_out(self, blobs):
        pipe = make_pipeline(blobs)
        ctx = pipe.run()
        assert len(ctx.y_test) + len(ctx.y_train) == len(ctx.y_clean)

    def test_cleaning_imputes_and_dedups(self):
        X = np.array([[1.0, np.nan], [1.0, 2.0], [1.0, 2.0], [5.0, 6.0]] * 5)
        y = np.array([0, 0, 0, 1] * 5)
        pipe = AIPipeline(
            data_provider=lambda: (X, y),
            model_factory=lambda: DecisionTreeClassifier(max_depth=2),
            test_size=0.3,
        )
        ctx = pipe.run()
        assert not np.isnan(ctx.X_clean).any()
        assert ctx.X_clean.shape[0] < X.shape[0]  # duplicates removed

    def test_retrain_bumps_model_version(self, blobs):
        pipe = make_pipeline(blobs)
        pipe.run()
        pipe.retrain()
        assert pipe.context.model_version == 2

    def test_rerun_from_labeling_skips_collection(self, blobs):
        pipe = make_pipeline(blobs)
        pipe.run()
        n_records = len(pipe.history)
        pipe.run(from_stage=StageKind.LABELING)
        new_kinds = [r.kind for r in pipe.history[n_records:]]
        assert StageKind.DATA_COLLECTION not in new_kinds
        assert new_kinds[0] == StageKind.LABELING

    def test_run_from_training_without_data_raises(self, blobs):
        pipe = make_pipeline(blobs)
        with pytest.raises(RuntimeError):
            pipe.run(from_stage=StageKind.TRAINING)


class TestLabeler:
    def test_labeler_applied(self, blobs):
        X, y = blobs
        pipe = AIPipeline(
            data_provider=lambda: (X, y),
            model_factory=lambda: DecisionTreeClassifier(max_depth=3),
            labeler=lambda X_, y_: 1 - y_,  # invert every label
            deduplicate=False,
        )
        ctx = pipe.run()
        # inverted labels still separable, but the mapping flipped:
        orig_mean = y.mean()
        assert ctx.y_clean.mean() == pytest.approx(1 - orig_mean, abs=1e-9)

    def test_update_labeler_then_rerun(self, blobs):
        pipe = make_pipeline(blobs)
        pipe.run()
        calls = []

        def spy_labeler(X_, y_):
            calls.append(len(y_))
            return y_

        pipe.update_labeler(spy_labeler)
        pipe.run(from_stage=StageKind.LABELING)
        assert calls, "new labeler must run on re-entry at LABELING"


class TestHooks:
    def test_hook_fires_after_its_stage(self, blobs):
        pipe = make_pipeline(blobs)
        fired = []
        pipe.attach_hook(
            StageKind.TRAINING, lambda kind, ctx: fired.append(ctx.model is not None)
        )
        pipe.run()
        assert fired == [True]

    def test_hook_all_stages(self, blobs):
        pipe = make_pipeline(blobs)
        kinds = []
        pipe.attach_hook_all_stages(lambda kind, ctx: kinds.append(kind))
        pipe.run()
        assert kinds == list(STAGE_ORDER)

    def test_hook_sees_live_context(self, blobs):
        pipe = make_pipeline(blobs)
        snapshots = {}
        pipe.attach_hook(
            StageKind.EVALUATION,
            lambda kind, ctx: snapshots.update(ctx.evaluation),
        )
        pipe.run()
        assert snapshots["accuracy"] == pipe.context.evaluation["accuracy"]


class TestOperatorControls:
    def test_swap_model_factory(self, blobs):
        pipe = make_pipeline(blobs)
        pipe.run()
        pipe.swap_model_factory(lambda: LogisticRegressionClassifier(n_epochs=5))
        ctx = pipe.retrain()
        assert isinstance(ctx.model, LogisticRegressionClassifier)

    def test_snapshot_model_is_unfitted_clone(self, blobs):
        pipe = make_pipeline(blobs)
        pipe.run()
        snap = pipe.snapshot_model()
        assert type(snap) is DecisionTreeClassifier
        assert not snap.is_fitted

    def test_snapshot_before_training_is_none(self, blobs):
        assert make_pipeline(blobs).snapshot_model() is None
